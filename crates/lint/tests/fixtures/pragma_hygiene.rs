//! Fixture: the pragma engine's own diagnostics — unknown rule, missing
//! reason, unused pragma, malformed pragma.

// textmr-lint: allow(not-a-real-rule, reason = "should report unknown-rule")
fn unknown() {}

// textmr-lint: allow(wall-clock-in-virtual-path)
use std::time::Instant;

// textmr-lint: allow(unordered-iteration, reason = "nothing here to suppress")
fn unused() {}

// textmr-lint: warn(everything)
fn malformed() {}

fn uses_instant() -> Instant {
    // No pragma here: wall-clock-in-virtual-path must still fire.
    Instant::now()
}
