//! Fixture: `unchecked-virtual-accumulator` must flag bare wrapping
//! arithmetic on `*_ns` accumulators.

struct Stats {
    total_ns: u64,
}

fn tally(stats: &mut Stats, delta_ns: u64) {
    stats.total_ns += delta_ns;
}

fn scale(base_ns: u64, factor: u64) -> u64 {
    base_ns * factor
}

fn blessed(stats: &mut Stats, delta_ns: u64) {
    // Saturating forms must NOT fire.
    stats.total_ns = stats.total_ns.saturating_add(delta_ns);
}

fn widened(base_ns: u64, factor: u64) -> u128 {
    // 128-bit-widened arithmetic must NOT fire.
    base_ns as u128 * factor as u128
}
