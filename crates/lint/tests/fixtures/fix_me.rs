//! Fixture: `--fix` must stub every finding site in this file so a
//! rescan of the fixed source is clean.

use std::time::Instant;
use std::collections::HashMap;

fn mixed(xs: &[u64]) -> u64 {
    let t0 = Instant::now();
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_default() += 1;
    }
    let mut total_ns = 0u64;
    total_ns += t0.elapsed().as_millis() as u64;
    total_ns
}
