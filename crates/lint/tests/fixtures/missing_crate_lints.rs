//! Fixture: a library crate root with no `#![forbid(unsafe_code)]` and no
//! `#![deny(missing_docs)]` — `missing-crate-lints` must flag both. A
//! `deny(unsafe_code)` is weaker than the required forbid and must not
//! count.

#![deny(unsafe_code)]

pub fn noop() {}
