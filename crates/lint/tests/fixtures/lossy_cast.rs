//! Fixture: `lossy-virtual-time-cast` must flag `as u64` narrowing of
//! 128-bit virtual-time arithmetic.

const SCALE: u128 = 720_720;

fn nic_share(bytes: u64, rate: u64) -> u64 {
    // The classic NIC-model bug: widen, multiply, then silently truncate.
    (bytes as u128 * SCALE / rate as u128) as u64
}

fn stopwatch_ns(d: std::time::Duration) -> u64 {
    d.as_nanos() as u64
}

fn fine_narrowing(x: u32) -> u64 {
    // No 128-bit signal on this line: must NOT fire.
    x as u64
}
