//! Fixture: `unordered-iteration` must flag hash containers in non-test
//! code.

use std::collections::HashMap;

fn hash_order_leaks(words: &[String]) -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for w in words {
        *counts.entry(w.clone()).or_default() += 1;
    }
    // Iteration order leaks straight into the output — the bug the rule
    // exists to catch.
    counts.into_iter().collect()
}

fn set_too(xs: &[u32]) -> usize {
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect();
    s.len()
}
