//! Fixture: `wall-clock-in-virtual-path` must flag host-time reads.

use std::time::Instant;

fn leak_host_time() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_millis() as u64
}

fn leak_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// Mentions in comments must NOT fire: Instant, SystemTime, HashMap.
const DOC_ONLY: &str = "Instant::now() in a string must not fire either";

#[cfg(test)]
mod tests {
    // Test code is exempt: this must NOT fire.
    use std::time::Instant;

    fn timed() -> std::time::Duration {
        Instant::now().elapsed()
    }
}
