//! Fixture: every violation carries a well-formed pragma — the scan must
//! come back clean (and no pragma may be unused).

// textmr-lint: allow(wall-clock-in-virtual-path, reason = "fixture: demonstrates a justified wall-clock site")
use std::time::Instant;

// textmr-lint: allow(unordered-iteration, reason = "fixture: lookup-only table")
use std::collections::HashMap;

// textmr-lint: allow(unordered-iteration, reason = "fixture: get() only, never iterated")
fn lookup(table: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    table.get(&key).copied()
}

fn measured() -> u64 {
    // textmr-lint: allow(wall-clock-in-virtual-path, reason = "fixture: measured-op site")
    let t0 = Instant::now();
    t0.elapsed().subsec_nanos() as u64
}
