//! Seeded violation through a recursive call cycle: the fixpoint must
//! terminate and still surface the flow into the scheduler sink.

fn ping(depth: u32) -> u64 {
    if depth == 0 {
        Instant::now().elapsed().as_nanos() as u64
    } else {
        pong(depth - 1)
    }
}

fn pong(depth: u32) -> u64 {
    ping(depth)
}

fn schedule(sched: &mut Sched) {
    sched.place_map(0, ping(3));
}
