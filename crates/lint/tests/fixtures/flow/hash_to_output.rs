//! Seeded violation: hash-iteration order reaches output bytes with no
//! sort in between — `hash-order-flows-to-output` must fire with the
//! chain `collect_counts → dump`.

fn collect_counts(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    m.iter().map(|(k, c)| (*k, *c)).collect()
}

fn dump(w: &mut Writer, m: &HashMap<u64, u64>) {
    for e in collect_counts(m) {
        w.write_all(&e.0.to_le_bytes());
    }
}
