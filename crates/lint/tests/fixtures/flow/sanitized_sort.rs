//! Clean fixture: hash iteration exists, but the collecting function
//! sorts before anything is emitted — the sort sanitizes the HashOrder
//! taint, so no flow survives to the writer.

fn collect_counts(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = m.iter().map(|(k, c)| (*k, *c)).collect();
    v.sort_by_key(|e| e.0);
    v
}

fn dump(w: &mut Writer, m: &HashMap<u64, u64>) {
    for e in collect_counts(m) {
        w.write_all(&e.0.to_le_bytes());
    }
}
