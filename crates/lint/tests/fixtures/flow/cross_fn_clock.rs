//! Seeded violation: a wall-clock read crosses two calls before landing
//! in a virtual-time accumulator. The flow pass must report the exact
//! chain `read_clock → relay → consume`.

fn read_clock() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

fn relay() -> u64 {
    read_clock() + 1
}

fn consume(profile: &mut Profile) {
    profile.total_ns = relay();
}
