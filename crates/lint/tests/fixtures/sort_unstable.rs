//! Fixture: unstable sorts with key extraction / comparators must fire;
//! the keyless form and annotated sites stay silent.

pub fn order_spans(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_unstable_by_key(|s| s.0);
    spans
}

pub fn order_names(mut names: Vec<String>) -> Vec<String> {
    names.sort_unstable_by(|a, b| a.len().cmp(&b.len()));
    names
}

pub fn order_ids(mut ids: Vec<u64>) -> Vec<u64> {
    // Keyless: equal elements are interchangeable, reordering is invisible.
    ids.sort_unstable();
    ids
}

pub fn order_totals(mut totals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    // textmr-lint: allow(sort-unstable-key-runs, reason = "full tuple compared, no equal keys")
    totals.sort_unstable_by(|a, b| a.cmp(b));
    totals
}

pub fn order_stable(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_by_key(|s| s.0);
    spans
}
