//! Fixture-driven tests for the lint scanner: every rule fires on a file
//! seeded with its violation, well-formed pragmas silence cleanly, and the
//! shipped workspace itself audits with zero diagnostics.

use std::path::Path;

use textmr_lint::scanner::{scan_file, FileClass};
use textmr_lint::workspace;
use textmr_lint::Diagnostic;

fn scan_fixture(name: &str, class: FileClass) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    scan_file(name, &src, class)
}

fn lines_for<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<(u32, &'d str)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.message.as_str()))
        .collect()
}

#[test]
fn wall_clock_fixture_flags_instant_and_system_time() {
    let diags = scan_fixture("wall_clock.rs", FileClass::Code);
    let hits = lines_for(&diags, "wall-clock-in-virtual-path");
    let lines: Vec<u32> = hits.iter().map(|&(l, _)| l).collect();
    // `use` line, Instant::now(), SystemTime return type, SystemTime::now().
    assert!(lines.contains(&3), "use std::time::Instant: {diags:?}");
    assert!(lines.contains(&6), "Instant::now(): {diags:?}");
    assert!(lines.contains(&11), "SystemTime::now(): {diags:?}");
    // The string literal and the #[cfg(test)] module must stay silent.
    assert!(
        !lines.iter().any(|&l| l >= 15),
        "masked regions fired: {diags:?}"
    );
    assert_eq!(diags.len(), hits.len(), "only wall-clock findings expected");
}

#[test]
fn unordered_iteration_fixture_flags_hash_containers() {
    let diags = scan_fixture("unordered_iteration.rs", FileClass::Code);
    let hits = lines_for(&diags, "unordered-iteration");
    let lines: Vec<u32> = hits.iter().map(|&(l, _)| l).collect();
    assert!(lines.contains(&4), "use HashMap: {diags:?}");
    assert!(lines.contains(&7), "HashMap::new binding: {diags:?}");
    assert!(lines.contains(&17), "HashSet collect: {diags:?}");
    assert_eq!(diags.len(), hits.len(), "only unordered findings expected");
}

#[test]
fn lossy_cast_fixture_flags_only_widened_lines() {
    let diags = scan_fixture("lossy_cast.rs", FileClass::Code);
    let hits = lines_for(&diags, "lossy-virtual-time-cast");
    let lines: Vec<u32> = hits.iter().map(|&(l, _)| l).collect();
    assert!(lines.contains(&8), "u128 product as u64: {diags:?}");
    assert!(lines.contains(&12), "as_nanos() as u64: {diags:?}");
    assert!(
        !lines.contains(&17),
        "u32 -> u64 widening is not lossy: {diags:?}"
    );
    assert_eq!(diags.len(), hits.len(), "only lossy-cast findings expected");
}

#[test]
fn accumulator_fixture_flags_bare_arithmetic_only() {
    let diags = scan_fixture("unchecked_accumulator.rs", FileClass::Code);
    let hits = lines_for(&diags, "unchecked-virtual-accumulator");
    let lines: Vec<u32> = hits.iter().map(|&(l, _)| l).collect();
    assert!(lines.contains(&9), "+= on total_ns: {diags:?}");
    assert!(lines.contains(&13), "bare * on base_ns: {diags:?}");
    assert!(!lines.contains(&18), "saturating_add is blessed: {diags:?}");
    assert!(
        !lines.contains(&23),
        "u128-widened line is exempt: {diags:?}"
    );
    assert_eq!(
        diags.len(),
        hits.len(),
        "only accumulator findings expected"
    );
}

#[test]
fn missing_crate_lints_fixture_flags_lib_roots_only() {
    let diags = scan_fixture("missing_crate_lints.rs", FileClass::LibRoot);
    let hits = lines_for(&diags, "missing-crate-lints");
    assert_eq!(
        hits.len(),
        2,
        "forbid(unsafe_code) + deny(missing_docs): {diags:?}"
    );
    assert!(
        hits.iter().any(|(_, m)| m.contains("unsafe_code")),
        "{diags:?}"
    );
    assert!(
        hits.iter().any(|(_, m)| m.contains("missing_docs")),
        "{diags:?}"
    );

    // A bin root only needs forbid(unsafe_code).
    let bin = scan_fixture("missing_crate_lints.rs", FileClass::BinRoot);
    let bin_hits = lines_for(&bin, "missing-crate-lints");
    assert_eq!(bin_hits.len(), 1, "{bin:?}");
    assert!(bin_hits[0].1.contains("unsafe_code"), "{bin:?}");

    // Plain module code is never held to crate-root lint requirements.
    let code = scan_fixture("missing_crate_lints.rs", FileClass::Code);
    assert!(
        lines_for(&code, "missing-crate-lints").is_empty(),
        "{code:?}"
    );
}

#[test]
fn sort_unstable_fixture_flags_keyed_forms_only() {
    let diags = scan_fixture("sort_unstable.rs", FileClass::Code);
    let hits = lines_for(&diags, "sort-unstable-key-runs");
    let lines: Vec<u32> = hits.iter().map(|&(l, _)| l).collect();
    assert!(lines.contains(&5), "sort_unstable_by_key: {diags:?}");
    assert!(lines.contains(&10), "sort_unstable_by: {diags:?}");
    assert!(
        !lines.contains(&16),
        "keyless sort_unstable is exempt: {diags:?}"
    );
    assert!(
        !lines.contains(&22),
        "pragma-annotated site is exempt: {diags:?}"
    );
    assert!(
        !lines.contains(&27),
        "stable sort_by_key is exempt: {diags:?}"
    );
    assert_eq!(diags.len(), hits.len(), "only sort findings expected");
}

#[test]
fn well_formed_pragmas_silence_everything() {
    let diags = scan_fixture("suppressed_clean.rs", FileClass::Code);
    assert!(diags.is_empty(), "expected a clean scan, got: {diags:?}");
}

#[test]
fn pragma_hygiene_fixture_reports_meta_diagnostics() {
    let diags = scan_fixture("pragma_hygiene.rs", FileClass::Code);
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"unknown-rule"), "{diags:?}");
    assert!(rules.contains(&"missing-reason"), "{diags:?}");
    assert!(rules.contains(&"unused-pragma"), "{diags:?}");
    assert!(rules.contains(&"malformed-pragma"), "{diags:?}");
    // The reason-less pragma still suppresses its `use Instant` line...
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "wall-clock-in-virtual-path" && d.line == 8),
        "{diags:?}"
    );
    // ...but the unannotated uses later in the file must still fire.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "wall-clock-in-virtual-path" && d.line >= 16),
        "{diags:?}"
    );
}

#[test]
fn test_code_is_fully_exempt() {
    for fixture in [
        "wall_clock.rs",
        "unordered_iteration.rs",
        "lossy_cast.rs",
        "unchecked_accumulator.rs",
        "missing_crate_lints.rs",
        "sort_unstable.rs",
    ] {
        let diags = scan_fixture(fixture, FileClass::TestCode);
        assert!(diags.is_empty(), "{fixture}: {diags:?}");
    }
}

/// The shipped tree must audit clean: every remaining wall-clock or hash
/// site carries a reasoned pragma, every crate root forbids unsafe code.
#[test]
fn self_audit_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = workspace::scan_workspace(&root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; found:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The walker must see every crate the workspace builds — guard against a
/// future crate being silently skipped from the audit.
#[test]
fn workspace_walk_covers_all_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace::collect(&root).expect("walk workspace");
    for krate in ["apps", "bench", "core", "data", "engine", "lint", "nlp"] {
        let lib = format!("crates/{krate}/src/lib.rs");
        assert!(
            files.iter().any(|f| f.rel.replace('\\', "/") == lib),
            "missing {lib} in walk"
        );
    }
}
