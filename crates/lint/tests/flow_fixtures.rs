//! Integration tests for the interprocedural flow layer, over seeded
//! fixture crates in `tests/fixtures/flow/` (a directory the workspace
//! walker never descends into), plus a mutation property: the item-model
//! parser is total — truncated or byte-perturbed sources yield a partial
//! model, never a panic.

use proptest::prelude::*;
use textmr_lint::flow::{analyze, FlowFinding};
use textmr_lint::model::{model_file, FileModel};
use textmr_lint::rules::Rule;
use textmr_lint::sarif;

fn fixture_flows(name: &str) -> Vec<FlowFinding> {
    let path = format!("{}/tests/fixtures/flow/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let models = vec![model_file(name, &src)];
    analyze(&models)
}

#[test]
fn cross_function_clock_flow_is_detected_with_exact_chain() {
    let flows = fixture_flows("cross_fn_clock.rs");
    assert_eq!(flows.len(), 1, "{flows:?}");
    let f = &flows[0];
    assert_eq!(f.rule, Rule::WallClockFlow);
    assert_eq!(f.chain, ["read_clock", "relay", "consume"]);
    assert_eq!(f.source.what, "Instant");
    assert_eq!(f.source.line, 6);
    assert!(f.sink.what.starts_with("total_ns"));
    assert_eq!(f.sink.line, 14);
    // The rendered diagnostic carries the full witness chain.
    let msg = f.diagnostic().message;
    assert!(
        msg.contains("fn read_clock → fn relay → fn consume"),
        "{msg}"
    );
}

#[test]
fn sorted_collection_sanitizes_the_hash_flow() {
    let flows = fixture_flows("sanitized_sort.rs");
    assert!(flows.is_empty(), "{flows:?}");
}

#[test]
fn unsorted_hash_flow_reaches_output() {
    let flows = fixture_flows("hash_to_output.rs");
    assert_eq!(flows.len(), 1, "{flows:?}");
    let f = &flows[0];
    assert_eq!(f.rule, Rule::HashOrderFlow);
    assert_eq!(f.chain, ["collect_counts", "dump"]);
    assert!(f.source.what.contains("iteration"));
    assert!(f.sink.what.contains("write_all"));
}

#[test]
fn recursive_cycle_terminates_and_reports() {
    let flows = fixture_flows("recursive_cycle.rs");
    assert_eq!(flows.len(), 1, "{flows:?}");
    let f = &flows[0];
    assert_eq!(f.rule, Rule::WallClockFlow);
    assert_eq!(f.chain.first().map(String::as_str), Some("ping"));
    assert_eq!(f.chain.last().map(String::as_str), Some("schedule"));
    assert!(f.sink.what.contains("place_map"));
}

#[test]
fn flow_findings_export_as_valid_sarif_with_code_flows() {
    let flows = fixture_flows("cross_fn_clock.rs");
    let log = sarif::to_sarif(&[], &flows);
    let summary = sarif::validate_sarif(&log).expect("fixture SARIF must validate");
    assert_eq!(summary.results, 1);
    assert!(log.contains("codeFlows"));
    assert!(log.contains("through fn relay"));
}

/// Mutation corpus: the lint's own sources plus every flow fixture —
/// realistic Rust with generics, strings, macros, and pragmas.
const CORPUS: &[&str] = &[
    include_str!("../src/model.rs"),
    include_str!("../src/callgraph.rs"),
    include_str!("fixtures/flow/cross_fn_clock.rs"),
    include_str!("fixtures/flow/sanitized_sort.rs"),
    include_str!("fixtures/flow/recursive_cycle.rs"),
    include_str!("fixtures/flow/hash_to_output.rs"),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn model_parser_never_panics_on_perturbed_sources(
        pick in 0usize..6,
        cut in 0usize..65536,
        flips in proptest::collection::vec((0usize..65536, 0u8..255u8), 0..8),
    ) {
        let src = CORPUS[pick % CORPUS.len()];
        let mut bytes = src.as_bytes().to_vec();
        for &(pos, val) in &flips {
            if !bytes.is_empty() {
                let at = pos % bytes.len();
                bytes[at] = val;
            }
        }
        bytes.truncate(cut % (src.len() + 1));
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        // Total: any input yields a (possibly partial) model, no panic —
        // and the downstream passes must swallow that model too.
        let model = model_file("mutated.rs", &mutated);
        let models: Vec<FileModel> = vec![model];
        let _ = analyze(&models);
    }
}
