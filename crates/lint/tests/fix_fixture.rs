//! Fixture-driven tests for `--fix`: stubs land at the seeded finding
//! sites, the fixed source scans clean, and the fix is idempotent.

use std::path::Path;

use textmr_lint::fix::{fix_source, fix_source_with_reason, stub_for, stub_with_reason};
use textmr_lint::rules::Rule;
use textmr_lint::scanner::{scan_file, FileClass};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

#[test]
fn fix_me_fixture_stubs_every_site_and_scans_clean() {
    let src = fixture("fix_me.rs");
    let before = scan_file("fix_me.rs", &src, FileClass::Code);
    assert!(!before.is_empty(), "fixture must seed findings");

    let (fixed, stubs) = fix_source("fix_me.rs", &src, FileClass::Code);
    // One stub per (line, rule) pair the scan reported.
    let mut sites: Vec<(u32, &str)> = before.iter().map(|d| (d.line, d.rule)).collect();
    sites.sort();
    sites.dedup();
    assert_eq!(stubs, sites.len(), "{before:?}");

    // Every stub line is a well-formed pragma directly above its site,
    // so the fixed source scans completely clean (no unused-pragma, no
    // missing-reason — "TODO" is a non-empty reason by design).
    assert!(
        scan_file("fix_me.rs", &fixed, FileClass::Code).is_empty(),
        "fixed source must scan clean:\n{fixed}"
    );

    // The seeded rules each got their stub, indented like the site.
    let wall = stub_for(Rule::by_name("wall-clock-in-virtual-path").unwrap());
    let hash = stub_for(Rule::by_name("unordered-iteration").unwrap());
    let acc = stub_for(Rule::by_name("unchecked-virtual-accumulator").unwrap());
    assert!(fixed.contains(&format!("{wall}\nuse std::time::Instant;")));
    assert!(fixed.contains(&format!("{hash}\nuse std::collections::HashMap;")));
    assert!(fixed.contains(&format!("    {wall}\n    let t0 = Instant::now();")));
    assert!(fixed.contains(&format!(
        "    {hash}\n    let mut seen: HashMap<u64, u64> = HashMap::new();"
    )));
    assert!(fixed.contains(&format!("    {acc}\n    total_ns += ")));

    // Idempotent: nothing left to fix.
    let (again, n) = fix_source("fix_me.rs", &fixed, FileClass::Code);
    assert_eq!(n, 0);
    assert_eq!(again, fixed);
}

#[test]
fn fix_me_fixture_with_cli_reason_carries_it_into_every_stub() {
    let src = fixture("fix_me.rs");
    let before = scan_file("fix_me.rs", &src, FileClass::Code);
    assert!(!before.is_empty(), "fixture must seed findings");

    let reason = "fixture exercises the lint, not production code";
    let (fixed, stubs) = fix_source_with_reason("fix_me.rs", &src, FileClass::Code, reason);
    assert!(stubs > 0);
    assert_eq!(
        fixed.matches(&format!("reason = \"{reason}\"")).count(),
        stubs,
        "every stub must carry the CLI reason:\n{fixed}"
    );
    assert!(!fixed.contains("reason = \"TODO\""));
    assert!(
        scan_file("fix_me.rs", &fixed, FileClass::Code).is_empty(),
        "fixed source must scan clean:\n{fixed}"
    );

    // Placement matches the default-reason fixer exactly; only the
    // rationale text differs.
    let wall = stub_with_reason(Rule::by_name("wall-clock-in-virtual-path").unwrap(), reason);
    assert!(fixed.contains(&format!("{wall}\nuse std::time::Instant;")));
    assert!(fixed.contains(&format!("    {wall}\n    let t0 = Instant::now();")));

    // Idempotent regardless of the reason used on the second pass.
    let (again, n) = fix_source("fix_me.rs", &fixed, FileClass::Code);
    assert_eq!(n, 0);
    assert_eq!(again, fixed);
}

#[test]
fn already_clean_fixture_is_untouched() {
    let src = fixture("suppressed_clean.rs");
    let (fixed, n) = fix_source("suppressed_clean.rs", &src, FileClass::Code);
    assert_eq!(n, 0);
    assert_eq!(fixed, src);
}
