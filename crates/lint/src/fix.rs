//! `--fix` mode: insert suppression-pragma stubs at finding sites.
//!
//! The fixer re-runs the scanner and, for every *rule* finding (the
//! pragma engine's meta-diagnostics — `malformed-pragma`, `unused-pragma`
//! and friends — describe pragmas themselves and are never stubbed),
//! inserts a standalone comment line directly above the finding:
//!
//! ```text
//! // textmr-lint: allow(<rule>, reason = "TODO")
//! ```
//!
//! The stub matches the finding line's indentation and carries the
//! literal reason `TODO` by default: it silences the finding so the tree
//! scans clean, but leaves a grep-able marker that the human rationale is
//! still owed. `--fix --reason "<text>"` supplies the rationale up front
//! instead of the stub. Fixing is idempotent — a second pass over fixed
//! source inserts nothing.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::Rule;
use crate::scanner::{scan_file, FileClass, PRAGMA_MARK};
use crate::workspace::collect;

/// Placeholder reason used when `--fix` runs without `--reason`.
pub const DEFAULT_REASON: &str = "TODO";

/// Render the stub pragma comment for `rule` with the placeholder reason
/// (no indentation, no newline).
pub fn stub_for(rule: Rule) -> String {
    stub_with_reason(rule, DEFAULT_REASON)
}

/// Render the stub pragma comment for `rule` carrying `reason` (no
/// indentation, no newline). The reason must not contain `"` or a
/// newline, or the pragma would not parse back; callers validate.
pub fn stub_with_reason(rule: Rule, reason: &str) -> String {
    format!(
        "// {PRAGMA_MARK} allow({}, reason = \"{reason}\")",
        rule.name()
    )
}

/// Insert pragma stubs for every rule finding in `src`, using the
/// placeholder reason. Returns the fixed source and the number of stubs
/// inserted (0 means `src` is returned unchanged).
pub fn fix_source(file: &str, src: &str, class: FileClass) -> (String, usize) {
    fix_source_with_reason(file, src, class, DEFAULT_REASON)
}

/// Insert pragma stubs carrying `reason` for every rule finding in `src`.
pub fn fix_source_with_reason(
    file: &str,
    src: &str,
    class: FileClass,
    reason: &str,
) -> (String, usize) {
    fix_source_at(file, src, class, reason, &BTreeSet::new())
}

/// The worker behind both entry points: stubs every token-rule finding in
/// `src` plus the `extra` (line, rule) sites — the workspace fixer passes
/// interprocedural flow sinks through here, since those findings are
/// computed globally rather than per file.
fn fix_source_at(
    file: &str,
    src: &str,
    class: FileClass,
    reason: &str,
    extra: &BTreeSet<(u32, Rule)>,
) -> (String, usize) {
    // One stub per (line, rule): the scanner reports at most one finding
    // per rule per line, and a single pragma suppresses all of them.
    let mut sites: BTreeSet<(u32, Rule)> = scan_file(file, src, class)
        .into_iter()
        .filter_map(|d| Some((d.line, Rule::by_name(d.rule)?)))
        .collect();
    sites.extend(extra.iter().copied());
    if sites.is_empty() {
        return (src.to_string(), 0);
    }
    let lines: Vec<&str> = src.split_inclusive('\n').collect();
    let mut out = String::with_capacity(src.len() + sites.len() * 64);
    let mut inserted = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let lineno = (i + 1) as u32;
        for &(_, rule) in sites.iter().filter(|&&(at, _)| at == lineno) {
            let indent: String = line
                .chars()
                .take_while(|c| *c == ' ' || *c == '\t')
                .collect();
            out.push_str(&indent);
            out.push_str(&stub_with_reason(rule, reason));
            out.push('\n');
            inserted += 1;
        }
        out.push_str(line);
    }
    // A finding can anchor past the last line only if the file lacks a
    // trailing newline; the split above still covers it, so every site
    // was visited.
    (out, inserted)
}

/// One file's `--fix` outcome.
#[derive(Debug, Clone)]
pub struct FixedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Pragma stubs inserted.
    pub stubs: usize,
}

/// Fix every lintable file in the workspace rooted at `root`, rewriting
/// files in place with stubs carrying `reason`. Returns the per-file
/// outcomes for files that changed.
///
/// Interprocedural flow findings are stubbed at their *sink* lines: the
/// inserted pragma lands inside the sink's enclosing function, which the
/// taint pass treats as a sanitizer for every flow through it.
pub fn fix_workspace(root: &Path, reason: &str) -> io::Result<Vec<FixedFile>> {
    // Flow findings come from the whole-workspace pass, so compute them
    // once on the unmodified tree before any file is rewritten.
    let flows = crate::workspace::audit_workspace(root)?.flows;
    let mut flow_sites: std::collections::BTreeMap<String, BTreeSet<(u32, Rule)>> =
        std::collections::BTreeMap::new();
    for f in &flows {
        flow_sites
            .entry(f.sink.file.clone())
            .or_default()
            .insert((f.sink.line, f.rule));
    }
    let mut out = Vec::new();
    for file in collect(root)? {
        let src = fs::read_to_string(&file.path)?;
        let extra = flow_sites.remove(&file.rel).unwrap_or_default();
        let (fixed, stubs) = fix_source_at(&file.rel, &src, file.class, reason, &extra);
        if stubs > 0 {
            fs::write(&file.path, fixed)?;
            out.push(FixedFile {
                rel: file.rel,
                stubs,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_silence_and_are_idempotent() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let (fixed, n) = fix_source("t.rs", src, FileClass::Code);
        assert_eq!(n, 2);
        assert!(scan_file("t.rs", &fixed, FileClass::Code).is_empty());
        let (again, n2) = fix_source("t.rs", &fixed, FileClass::Code);
        assert_eq!(n2, 0);
        assert_eq!(again, fixed);
    }

    #[test]
    fn stub_matches_indentation() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let (fixed, n) = fix_source("t.rs", src, FileClass::Code);
        assert_eq!(n, 1);
        assert!(fixed.contains(
            "    // textmr-lint: allow(wall-clock-in-virtual-path, reason = \"TODO\")\n    let t"
        ));
    }

    #[test]
    fn custom_reason_replaces_the_todo_stub() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let (fixed, n) =
            fix_source_with_reason("t.rs", src, FileClass::Code, "bench-only wall clock");
        assert_eq!(n, 2);
        assert!(fixed.contains("reason = \"bench-only wall clock\""));
        assert!(!fixed.contains("reason = \"TODO\""));
        assert!(scan_file("t.rs", &fixed, FileClass::Code).is_empty());
    }

    #[test]
    fn meta_diagnostics_are_not_stubbed() {
        let src = "// textmr-lint: allow(no-such-rule, reason = \"x\")\nfn f() {}\n";
        let (fixed, n) = fix_source("t.rs", src, FileClass::Code);
        assert_eq!(n, 0);
        assert_eq!(fixed, src);
    }

    #[test]
    fn flow_sinks_are_stubbed_inside_the_sink_function() {
        let src = "\
fn source() -> u64 { 1 }
fn consume(p: &mut P) {
    p.total_ns = source();
}
";
        let extra: BTreeSet<(u32, Rule)> = [(3, Rule::WallClockFlow)].into_iter().collect();
        let (fixed, n) = fix_source_at("t.rs", src, FileClass::Code, "measured op", &extra);
        assert_eq!(n, 1);
        assert!(fixed.contains(
            "    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = \"measured op\")"
        ));
        // The stub lands inside `consume`, where the taint pass treats it
        // as a sanitizer for every flow through that function.
        let m = crate::model::model_file("t.rs", &fixed);
        let consume = m.fns.iter().find(|f| f.name == "consume").unwrap();
        assert!(m
            .pragmas
            .iter()
            .any(|(r, l)| r == "wall-clock-flows-to-schedule" && consume.contains_line(*l)));
    }

    #[test]
    fn file_scoped_rules_stub_at_the_top() {
        let src = "//! Docs.\nfn f() {}\n";
        let (fixed, n) = fix_source("lib.rs", src, FileClass::LibRoot);
        assert_eq!(n, 1);
        assert!(fixed.starts_with(
            "// textmr-lint: allow(missing-crate-lints, reason = \"TODO\")\n//! Docs.\n"
        ));
        assert!(scan_file("lib.rs", &fixed, FileClass::LibRoot).is_empty());
    }
}
