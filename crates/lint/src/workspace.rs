//! Workspace walking and file classification.
//!
//! The walker is deliberately convention-based rather than manifest-driven:
//! it visits `crates/*/src` (rule-checked, with `lib.rs` / `main.rs` /
//! `src/bin/*.rs` classified as crate roots), treats `crates/*/{tests,
//! benches,examples}` and the workspace-level `tests/` as exempt harness
//! code, and skips `target/`, `vendor/` (offline dependency shims are not
//! ours to lint), and any directory named `fixtures` (seeded-violation
//! inputs for the lint's own tests).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::flow::{self, FlowFinding};
use crate::model::{model_file, FileModel};
use crate::scanner::{scan_file, FileClass};
use crate::Diagnostic;

/// A source file discovered in the workspace.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, `/`-separated — used as the
    /// diagnostic's file label.
    pub rel: String,
    /// How the file participates in the lint pass.
    pub class: FileClass,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Recursively collect `.rs` files under `dir` (sorted for determinism),
/// classifying each via `classify`.
fn walk(
    root: &Path,
    dir: &Path,
    classify: &dyn Fn(&Path) -> FileClass,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(root, &path, classify, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                class: classify(&path),
                path,
                rel,
            });
        }
    }
    Ok(())
}

/// Collect every lintable `.rs` file in the workspace rooted at `root`.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let src = crate_dir.join("src");
            if src.is_dir() {
                let src_root = src.clone();
                walk(
                    root,
                    &src,
                    &move |p: &Path| classify_src(&src_root, p),
                    &mut out,
                )?;
            }
            for harness in ["tests", "benches", "examples"] {
                let dir = crate_dir.join(harness);
                if dir.is_dir() {
                    walk(root, &dir, &|_| FileClass::TestCode, &mut out)?;
                }
            }
        }
    }
    let root_tests = root.join("tests");
    if root_tests.is_dir() {
        walk(root, &root_tests, &|_| FileClass::TestCode, &mut out)?;
    }
    Ok(out)
}

/// Classify a file under a crate's `src/` directory.
fn classify_src(src_root: &Path, path: &Path) -> FileClass {
    let rel = path.strip_prefix(src_root).unwrap_or(path);
    let name = rel.file_name().and_then(|n| n.to_str()).unwrap_or_default();
    let depth = rel.components().count();
    if depth == 1 && name == "lib.rs" {
        return FileClass::LibRoot;
    }
    if (depth == 1 && name == "main.rs") || (depth == 2 && rel.starts_with("bin")) {
        return FileClass::BinRoot;
    }
    FileClass::Code
}

/// Scan the whole workspace: collect, read, and lint every file. I/O
/// errors surface as `Err`; lint findings are the `Ok` payload.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(audit_workspace(root)?.into_diagnostics())
}

/// The full result of a workspace audit: the token/meta diagnostics plus
/// the interprocedural flow findings, kept separate so the SARIF exporter
/// can attach witness `codeFlows` to the latter.
#[derive(Debug, Default)]
pub struct WorkspaceAudit {
    /// Token-rule and pragma-engine diagnostics, in scan order.
    pub diagnostics: Vec<Diagnostic>,
    /// Interprocedural source→sink flow findings, in (sink, rule) order.
    pub flows: Vec<FlowFinding>,
}

impl WorkspaceAudit {
    /// Flatten into one diagnostic list (flow findings rendered with
    /// their chains), sorted by (file, line, rule).
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        let mut out = self.diagnostics;
        out.extend(self.flows.iter().map(FlowFinding::diagnostic));
        out.sort();
        out
    }

    /// Baseline keys (`file:line:rule`) of every finding.
    pub fn baseline_keys(&self) -> std::collections::BTreeSet<String> {
        let mut keys: std::collections::BTreeSet<String> = self
            .diagnostics
            .iter()
            .map(crate::sarif::baseline_key)
            .collect();
        keys.extend(self.flows.iter().map(FlowFinding::baseline_key));
        keys
    }
}

/// Run the complete audit: the per-file token scan over every collected
/// file, then the interprocedural flow pass over the *production* files
/// only (harness code may use wall clocks and hash maps freely — the
/// same exemption the token rules grant).
pub fn audit_workspace(root: &Path) -> io::Result<WorkspaceAudit> {
    let mut audit = WorkspaceAudit::default();
    let mut models: Vec<FileModel> = Vec::new();
    for file in collect(root)? {
        let src = fs::read_to_string(&file.path)?;
        audit
            .diagnostics
            .extend(scan_file(&file.rel, &src, file.class));
        if file.class != FileClass::TestCode {
            models.push(model_file(&file.rel, &src));
        }
    }
    audit.flows = flow::analyze(&models);
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_convention() {
        let src_root = Path::new("/w/crates/x/src");
        let case = |p: &str| classify_src(src_root, Path::new(p));
        assert_eq!(case("/w/crates/x/src/lib.rs"), FileClass::LibRoot);
        assert_eq!(case("/w/crates/x/src/main.rs"), FileClass::BinRoot);
        assert_eq!(case("/w/crates/x/src/bin/tool.rs"), FileClass::BinRoot);
        assert_eq!(case("/w/crates/x/src/shuffle.rs"), FileClass::Code);
        assert_eq!(case("/w/crates/x/src/trace/mod.rs"), FileClass::Code);
        // A module merely *named* main.rs below the root is ordinary code.
        assert_eq!(case("/w/crates/x/src/deep/main.rs"), FileClass::Code);
    }
}
