//! SARIF 2.1.0 export, validation, and the findings baseline ratchet.
//!
//! The writer is hand-rolled (the workspace build is offline; no serde):
//! it emits a minimal but conformant SARIF log — `runs[].tool.driver`
//! with the full rule catalogue, one `result` per diagnostic, and a
//! `codeFlows` thread for every interprocedural flow finding so SARIF
//! viewers can step source → chain → sink. The validator is an equally
//! hand-rolled recursive-descent JSON parser plus structural checks over
//! the parsed value, so CI can prove the artifact it uploads is
//! well-formed without trusting the writer that produced it.
//!
//! The baseline is a committed `file:line:rule` list. CI regenerates the
//! current finding set and diffs: a finding not in the baseline **fails**
//! the gate (a regression); a baseline entry with no current finding is a
//! **warning** (stale — the debt was paid, shrink the file). The baseline
//! can therefore only ratchet toward zero.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::flow::FlowFinding;
use crate::rules::Rule;
use crate::Diagnostic;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn location(file: &str, line: u32) -> String {
    format!(
        "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{}}}}}}}",
        esc(file),
        line.max(1)
    )
}

/// One `threadFlowLocation` for a chain hop.
fn thread_loc(file: &str, line: u32, message: &str) -> String {
    format!(
        "{{\"location\":{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}},\
         \"message\":{{\"text\":\"{}\"}}}}}}",
        esc(file),
        line.max(1),
        esc(message)
    )
}

fn result_obj(d: &Diagnostic, code_flow: Option<String>) -> String {
    let flow = code_flow
        .map(|f| format!(",\"codeFlows\":[{{\"threadFlows\":[{{\"locations\":[{f}]}}]}}]"))
        .unwrap_or_default();
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{}]{}}}",
        esc(d.rule),
        esc(&d.message),
        location(&d.file, d.line),
        flow
    )
}

/// Render a SARIF 2.1.0 log for the given findings.
///
/// `diags` are the token/meta diagnostics (plain results); `flows` are
/// the interprocedural findings, each emitted as a result *with* a
/// `codeFlows` witness thread. Meta-rules raised by the pragma engine
/// (not in [`Rule::ALL`]) are appended to the driver rule table so every
/// `ruleId` in the log resolves.
pub fn to_sarif(diags: &[Diagnostic], flows: &[FlowFinding]) -> String {
    // Driver rule table: the catalogue plus any meta-rules that fired.
    let mut rules: Vec<(String, String)> = Rule::ALL
        .iter()
        .map(|r| (r.name().to_string(), r.summary().to_string()))
        .collect();
    let known: BTreeSet<String> = rules.iter().map(|(n, _)| n.clone()).collect();
    let mut meta: BTreeSet<&str> = BTreeSet::new();
    for d in diags {
        if !known.contains(d.rule) {
            meta.insert(d.rule);
        }
    }
    for m in meta {
        rules.push((m.to_string(), "pragma-engine meta diagnostic".to_string()));
    }
    let rules_json: Vec<String> = rules
        .iter()
        .map(|(name, summary)| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                esc(name),
                esc(summary)
            )
        })
        .collect();

    let mut results: Vec<String> = diags.iter().map(|d| result_obj(d, None)).collect();
    for f in flows {
        let mut hops = vec![thread_loc(
            &f.source.file,
            f.source.line,
            &format!("source: {}", f.source.what),
        )];
        for (name, (file, line)) in f.chain.iter().zip(&f.chain_sites) {
            hops.push(thread_loc(file, *line, &format!("through fn {name}")));
        }
        hops.push(thread_loc(
            &f.sink.file,
            f.sink.line,
            &format!("sink: {}", f.sink.what),
        ));
        results.push(result_obj(&f.diagnostic(), Some(hops.join(","))));
    }

    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"textmr-lint\",\"informationUri\":\
         \"https://github.com/textmr/textmr\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}\n",
        rules_json.join(","),
        results.join(",")
    )
}

// ---------------------------------------------------------------------------
// JSON parser (recursive descent, self-contained)
// ---------------------------------------------------------------------------

/// A parsed JSON value. The engine crate keeps its JSON machinery
/// private, and the validator must not trust the writer above, so the
/// parser here is independent and complete for the JSON grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as f64 (SARIF only uses small integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    /// Numeric payload.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("json: {} at byte {}", what, self.i))
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            self.err("bad literal")
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("json: bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                // Surrogate halves and bad hex: keep a
                                // replacement char; validation only needs
                                // structure, not lossless text.
                                None => out.push('\u{fffd}'),
                            }
                            self.i += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| format!("json: invalid utf-8 at byte {}", self.i))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            m.insert(key, self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

/// Summary of a validated SARIF log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SarifSummary {
    /// Total results across all runs.
    pub results: usize,
    /// Rules declared by the driver of the first run.
    pub rules: usize,
}

/// Structurally validate a SARIF 2.1.0 log: version, runs, driver name
/// and rule table, and for every result a resolvable `ruleId`, a
/// `message.text`, and at least one physical location with a positive
/// `startLine`. Code flows, when present, must be location lists of the
/// same shape.
pub fn validate_sarif(text: &str) -> Result<SarifSummary, String> {
    let doc = parse_json(text)?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("sarif: version must be \"2.1.0\"".into());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .filter(|r| !r.is_empty())
        .ok_or("sarif: runs must be a non-empty array")?;
    let mut total = 0usize;
    let mut rule_count = 0usize;
    for (ri, run) in runs.iter().enumerate() {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or_else(|| format!("sarif: run {ri} missing tool.driver"))?;
        driver
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("sarif: run {ri} driver missing name"))?;
        let ids: BTreeSet<&str> = driver
            .get("rules")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        if ri == 0 {
            rule_count = ids.len();
        }
        for (i, res) in run
            .get("results")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let tag = format!("sarif: run {ri} result {i}");
            let rule = res
                .get("ruleId")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{tag}: missing ruleId"))?;
            if !ids.is_empty() && !ids.contains(rule) {
                return Err(format!("{tag}: ruleId {rule:?} not in driver rules"));
            }
            res.get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{tag}: missing message.text"))?;
            let locs = res
                .get("locations")
                .and_then(Json::as_arr)
                .filter(|l| !l.is_empty())
                .ok_or_else(|| format!("{tag}: missing locations"))?;
            for loc in locs {
                check_physical(loc, &tag)?;
            }
            if let Some(flows) = res.get("codeFlows").and_then(Json::as_arr) {
                for cf in flows {
                    for tf in cf.get("threadFlows").and_then(Json::as_arr).unwrap_or(&[]) {
                        let hops = tf
                            .get("locations")
                            .and_then(Json::as_arr)
                            .filter(|l| !l.is_empty())
                            .ok_or_else(|| format!("{tag}: empty threadFlow"))?;
                        for hop in hops {
                            let inner = hop
                                .get("location")
                                .ok_or_else(|| format!("{tag}: hop missing location"))?;
                            check_physical(inner, &tag)?;
                        }
                    }
                }
            }
            total += 1;
        }
    }
    Ok(SarifSummary {
        results: total,
        rules: rule_count,
    })
}

fn check_physical(loc: &Json, tag: &str) -> Result<(), String> {
    let phys = loc
        .get("physicalLocation")
        .ok_or_else(|| format!("{tag}: missing physicalLocation"))?;
    phys.get("artifactLocation")
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str)
        .filter(|u| !u.is_empty())
        .ok_or_else(|| format!("{tag}: missing artifactLocation.uri"))?;
    let line = phys
        .get("region")
        .and_then(|r| r.get("startLine"))
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{tag}: missing region.startLine"))?;
    if line < 1.0 {
        return Err(format!("{tag}: startLine must be >= 1"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

/// Result of diffing current findings against the committed baseline.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Current findings absent from the baseline — these FAIL the gate.
    pub regressions: Vec<String>,
    /// Baseline entries with no current finding — stale debt, a warning.
    pub stale: Vec<String>,
}

/// Parse a baseline file: one `file:line:rule` key per line; blank lines
/// and `#` comments ignored.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// The baseline key of a diagnostic.
pub fn baseline_key(d: &Diagnostic) -> String {
    format!("{}:{}:{}", d.file, d.line, d.rule)
}

/// Diff the current finding keys against a baseline.
pub fn diff_baseline(current: &BTreeSet<String>, baseline: &BTreeSet<String>) -> BaselineDiff {
    BaselineDiff {
        regressions: current.difference(baseline).cloned().collect(),
        stale: baseline.difference(current).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Site;

    fn diag(file: &str, line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: "msg with \"quotes\" and\nnewline".into(),
        }
    }

    fn flow() -> FlowFinding {
        FlowFinding {
            rule: Rule::WallClockFlow,
            source: Site {
                file: "a.rs".into(),
                line: 3,
                what: "Instant".into(),
            },
            sink: Site {
                file: "b.rs".into(),
                line: 9,
                what: "total_ns +=".into(),
            },
            chain: vec!["read".into(), "consume".into()],
            chain_sites: vec![("a.rs".into(), 2), ("b.rs".into(), 8)],
        }
    }

    #[test]
    fn writer_output_validates() {
        let log = to_sarif(&[diag("x.rs", 4, "wall-clock-in-virtual-path")], &[flow()]);
        let summary = validate_sarif(&log).expect("writer output must validate");
        assert_eq!(summary.results, 2);
        assert_eq!(summary.rules, Rule::ALL.len());
    }

    #[test]
    fn meta_rules_are_added_to_the_driver_table() {
        let log = to_sarif(&[diag("x.rs", 1, "unused-pragma")], &[]);
        let summary = validate_sarif(&log).unwrap();
        assert_eq!(summary.rules, Rule::ALL.len() + 1);
    }

    #[test]
    fn empty_log_validates() {
        let log = to_sarif(&[], &[]);
        let summary = validate_sarif(&log).unwrap();
        assert_eq!(summary.results, 0);
    }

    #[test]
    fn code_flow_carries_every_hop() {
        let log = to_sarif(&[], &[flow()]);
        let doc = parse_json(&log).unwrap();
        let hops = doc.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("results")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .get("codeFlows")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .get("threadFlows")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .get("locations")
            .and_then(Json::as_arr)
            .unwrap()
            .len();
        // source + 2 chain fns + sink
        assert_eq!(hops, 4);
    }

    #[test]
    fn validator_rejects_structural_damage() {
        assert!(validate_sarif("{}").is_err());
        assert!(validate_sarif("{\"version\":\"2.1.0\",\"runs\":[]}").is_err());
        assert!(validate_sarif("not json").is_err());
        let log = to_sarif(&[diag("x.rs", 4, "wall-clock-in-virtual-path")], &[]);
        let broken = log.replace("\"startLine\":4", "\"startLine\":0");
        assert!(validate_sarif(&broken).is_err());
        let unknown = log.replace("wall-clock-in-virtual-path\",\"level", "no-such\",\"level");
        assert!(validate_sarif(&unknown).is_err());
    }

    #[test]
    fn json_parser_round_trips_escapes_and_nesting() {
        let doc = parse_json(
            "{\"a\":[1,2.5,-3e2,true,false,null],\"s\":\"q\\\"\\\\\\n\\u0041\",\"o\":{}}",
        )
        .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
        assert_eq!(doc.get("a").and_then(Json::as_arr).unwrap().len(), 6);
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{\"a\":1} x").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn baseline_diff_ratchets() {
        let baseline = parse_baseline(
            "# comment\n\na.rs:3:wall-clock-in-virtual-path\nb.rs:9:unordered-iteration\n",
        );
        let current: BTreeSet<String> =
            ["a.rs:3:wall-clock-in-virtual-path", "c.rs:1:unused-pragma"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let d = diff_baseline(&current, &baseline);
        assert_eq!(d.regressions, vec!["c.rs:1:unused-pragma".to_string()]);
        assert_eq!(d.stale, vec!["b.rs:9:unordered-iteration".to_string()]);
    }
}
