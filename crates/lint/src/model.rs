//! Item-level syntactic model: the brace-tree pass.
//!
//! The flow rules need more structure than lines — they need *functions*:
//! which `fn` items a file defines, what names they import, which calls
//! each body makes, and the statement-level token runs inside each body.
//! This module recovers exactly that from the hand-rolled lexer's token
//! stream (still no `syn`; the build stays offline) with one linear pass
//! that tracks brace depth:
//!
//! * a `fn` keyword followed by an identifier opens a pending item; its
//!   body is the token run between the next `{` at the signature's depth
//!   and the matching `}`;
//! * items nest (closures, inner `fn`s, `impl`/`mod` blocks) — a stack of
//!   open items attributes each token to the innermost enclosing `fn`,
//!   and inner `fn`s become items of their own;
//! * `use` declarations are folded into a per-file import table mapping
//!   the bound name to its full path (including `as` renames and nested
//!   `{...}` groups), which the call graph uses to resolve bare calls;
//! * statements split on `;` and on block boundaries, keeping the 1-based
//!   line of each run.
//!
//! The pass is total: truncated or perturbed input produces a partial
//! model, never a panic (a mutation proptest holds it to that), because
//! the workspace compiles under `cargo check` anyway and malformed input
//! only occurs in fixtures.

use std::collections::BTreeMap;

use crate::lexer::{lex, TokKind, Token};
use crate::scanner::test_mask;

/// One token of a statement run, owned (the model outlives the source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MTok {
    /// Verbatim token text.
    pub text: String,
    /// Token class.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// One statement-level token run inside a function body.
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// 1-based line the statement starts on.
    pub line: u32,
    /// The statement's code tokens (comments excluded).
    pub toks: Vec<MTok>,
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`run_round`, not a path).
    pub name: String,
    /// Workspace-relative file the item lives in.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (closing brace), for attributing pragmas.
    pub end_line: u32,
    /// Parameter names (pattern identifiers at paren depth 1).
    pub params: Vec<String>,
    /// The signature's token run (`fn` through the token before the body
    /// `{`): generics, parameter types, return type. The flow pass reads
    /// parameter types from here.
    pub sig: Stmt,
    /// Statement-level token runs of the body, in order.
    pub body: Vec<Stmt>,
}

impl FnItem {
    /// True when `line` falls within the item (signature through body).
    pub fn contains_line(&self, line: u32) -> bool {
        line >= self.line && line <= self.end_line
    }
}

/// The model of one source file: its functions and import table.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub file: String,
    /// Every `fn` item, in source order (test-gated items excluded).
    pub fns: Vec<FnItem>,
    /// `use` bindings: bound name → full `::`-joined path.
    pub imports: BTreeMap<String, String>,
    /// Suppression pragmas found in the file: `(rule name, line)`. The
    /// flow pass matches these against item line ranges, so a reasoned
    /// pragma sanitizes every flow through its enclosing function.
    pub pragmas: Vec<(String, u32)>,
}

/// Pending item state while its body is being consumed.
struct OpenFn {
    item: FnItem,
    /// Brace depth at which the body opened; the matching close pops it.
    open_depth: i32,
    /// Current statement accumulator.
    stmt: Stmt,
}

impl OpenFn {
    fn flush_stmt(&mut self) {
        if !self.stmt.toks.is_empty() {
            self.item.body.push(std::mem::take(&mut self.stmt));
        }
        self.stmt = Stmt::default();
    }
}

/// Build the item model of one file. `file` is the workspace-relative
/// label carried onto every item.
pub fn model_file(file: &str, src: &str) -> FileModel {
    let toks = lex(src);
    let mask = test_mask(&toks);
    let mut model = FileModel {
        file: file.to_string(),
        ..FileModel::default()
    };

    // Pragmas: collected from comments before masking-out, since the flow
    // pass needs them; test-gated pragmas stay inert (masked).
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment || mask[i] {
            continue;
        }
        let lead = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if let Some(rest) = lead.strip_prefix(crate::scanner::PRAGMA_MARK) {
            if let Some(body) = rest.trim_start().strip_prefix("allow(") {
                let name: String = body
                    .chars()
                    .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-')
                    .collect();
                if !name.is_empty() {
                    model.pragmas.push((name, t.line));
                }
            }
        }
    }

    // Code tokens only, in order.
    let code: Vec<Token<'_>> = toks
        .iter()
        .enumerate()
        .filter(|&(i, t)| t.kind != TokKind::Comment && !mask[i])
        .map(|(_, t)| *t)
        .collect();

    let mut depth = 0i32;
    let mut stack: Vec<OpenFn> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        // `use` declarations at any depth feed the import table.
        if t.text == "use" && t.kind == TokKind::Ident {
            i = read_use(&code, i + 1, &mut model.imports);
            continue;
        }
        // A new `fn` item: `fn name` (the `fn` in `fn(&T)` types has no
        // trailing identifier and is skipped naturally).
        if t.text == "fn" && t.kind == TokKind::Ident {
            if let Some(name_tok) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                if let Some(open) = read_fn_signature(&code, i, file, name_tok) {
                    // Trait-method declarations end in `;` — no body, no
                    // item. `read_fn_signature` returns the index of the
                    // body-opening `{` (or None for declarations).
                    let (sig_end, item) = open;
                    // Consume tokens up to and including the `{`.
                    // Attribute the signature tokens to the *enclosing*
                    // fn (types in signatures are not statements).
                    i = sig_end + 1;
                    depth += 1;
                    stack.push(OpenFn {
                        item,
                        open_depth: depth,
                        stmt: Stmt::default(),
                    });
                    continue;
                }
            }
        }
        match t.text {
            "{" => {
                depth += 1;
                if let Some(f) = stack.last_mut() {
                    f.flush_stmt();
                }
            }
            "}" => {
                if let Some(f) = stack.last_mut() {
                    f.flush_stmt();
                }
                if stack.last().map(|f| f.open_depth) == Some(depth) {
                    let mut done = stack.pop().expect("just checked non-empty");
                    done.item.end_line = t.line;
                    model.fns.push(done.item);
                }
                depth -= 1;
            }
            ";" => {
                if let Some(f) = stack.last_mut() {
                    f.flush_stmt();
                }
            }
            _ => {
                if let Some(f) = stack.last_mut() {
                    if f.stmt.toks.is_empty() {
                        f.stmt.line = t.line;
                    }
                    f.stmt.toks.push(MTok {
                        text: t.text.to_string(),
                        kind: t.kind,
                        line: t.line,
                    });
                }
            }
        }
        i += 1;
    }
    // Unterminated bodies (truncated input): close whatever is open.
    while let Some(mut f) = stack.pop() {
        f.flush_stmt();
        f.item.end_line = f
            .item
            .body
            .last()
            .map(|s| s.line)
            .unwrap_or(f.item.line)
            .max(f.item.line);
        model.fns.push(f.item);
    }
    // Source order regardless of nesting-induced pop order.
    model.fns.sort_by_key(|f| (f.line, f.name.clone()));
    model
}

/// Parse a `fn` signature starting at `fn_idx` (pointing at `fn`).
/// Returns `(index of the body-opening brace, the item)` — or `None` for
/// bodyless declarations (trait methods, `extern` decls) and for any
/// truncated signature.
fn read_fn_signature(
    code: &[Token<'_>],
    fn_idx: usize,
    file: &str,
    name_tok: &Token<'_>,
) -> Option<(usize, FnItem)> {
    let mut j = fn_idx + 2;
    // Skip generics `<...>` if present. `<` nesting is tracked; `->` et
    // al. never appear before the parameter list.
    if code.get(j).map(|t| t.text) == Some("<") {
        let mut angle = 0i32;
        while j < code.len() {
            match code[j].text {
                "<" => angle += 1,
                // `>` closes generics unless it is the tail of a `->`
                // (closure bounds like `F: Fn() -> u8` live in here).
                ">" if code.get(j.wrapping_sub(1)).map(|p| p.text) != Some("-") => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                // A `(`/`{` before the generics closed means we misread
                // (e.g. `a < b` in a truncated stream); bail out.
                "(" | "{" | ";" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if code.get(j).map(|t| t.text) != Some("(") {
        return None;
    }
    // Parameter list: identifiers at paren depth 1 immediately followed
    // by `:` are parameter names; `self` counts as a parameter.
    let mut params = Vec::new();
    let mut paren = 0i32;
    while j < code.len() {
        let t = code[j];
        match t.text {
            "(" | "[" => paren += 1,
            ")" | "]" => {
                paren -= 1;
                if paren == 0 {
                    j += 1;
                    break;
                }
            }
            "self" if paren == 1 => params.push("self".to_string()),
            _ => {
                if paren == 1
                    && t.kind == TokKind::Ident
                    && code.get(j + 1).map(|n| n.text) == Some(":")
                    // `path::seg` — a `::` ahead means this is a type path,
                    // not a binding.
                    && code.get(j + 2).map(|n| n.text) != Some(":")
                    && code.get(j.wrapping_sub(1)).map(|p| p.text) != Some(":")
                {
                    params.push(t.text.to_string());
                }
            }
        }
        j += 1;
    }
    // Return type / where clause: scan to the body `{` or a `;`.
    let mut angle = 0i32;
    while j < code.len() {
        match code[j].text {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "{" if angle == 0 => {
                let sig = Stmt {
                    line: code[fn_idx].line,
                    toks: code[fn_idx..j]
                        .iter()
                        .map(|t| MTok {
                            text: t.text.to_string(),
                            kind: t.kind,
                            line: t.line,
                        })
                        .collect(),
                };
                return Some((
                    j,
                    FnItem {
                        name: name_tok.text.to_string(),
                        file: file.to_string(),
                        line: code[fn_idx].line,
                        end_line: code[fn_idx].line,
                        params,
                        sig,
                        body: Vec::new(),
                    },
                ));
            }
            ";" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse a `use` declaration starting just past the `use` keyword; fold
/// its bindings into `imports`. Returns the index one past the
/// terminating `;` (or end of input). Handles `as` renames and nested
/// `{...}` groups (`use a::{b, c as d, e::f};`).
fn read_use(code: &[Token<'_>], start: usize, imports: &mut BTreeMap<String, String>) -> usize {
    // Collect the declaration's tokens up to `;`.
    let mut j = start;
    let mut decl: Vec<&Token<'_>> = Vec::new();
    while j < code.len() && code[j].text != ";" {
        decl.push(&code[j]);
        j += 1;
    }
    parse_use_tree(&decl, 0, &mut Vec::new(), imports);
    (j + 1).min(code.len())
}

/// Recursive descent over a use-tree token slice. `prefix` is the path so
/// far. Returns the index one past what it consumed.
fn parse_use_tree(
    decl: &[&Token<'_>],
    mut i: usize,
    prefix: &mut Vec<String>,
    imports: &mut BTreeMap<String, String>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while i < decl.len() {
        let t = decl[i];
        match t.text {
            "::" | ":" => {} // path separator (lexer splits `::` into two `:`)
            "{" => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                // Group: parse comma-separated subtrees until `}`.
                i += 1;
                loop {
                    i = parse_use_tree(decl, i, prefix, imports);
                    match decl.get(i).map(|t| t.text) {
                        Some(",") => i += 1,
                        Some("}") => {
                            i += 1;
                            break;
                        }
                        _ => break, // truncated
                    }
                }
                prefix.truncate(depth_at_entry);
                last = None;
            }
            "}" | "," => break,
            "as" => {
                // `path as alias`: bind the alias to the full path.
                if let (Some(seg), Some(alias)) = (last.take(), decl.get(i + 1)) {
                    if alias.kind == TokKind::Ident {
                        let mut full = prefix.clone();
                        full.push(seg);
                        imports.insert(alias.text.to_string(), full.join("::"));
                        i += 1;
                    }
                }
            }
            "*" => last = None, // glob: no single binding
            _ if t.kind == TokKind::Ident => {
                // A new segment; if one was pending and we're at a
                // separator-less boundary this is still linear — bind on
                // exit below.
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                last = Some(t.text.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(seg) = last {
        if seg != "self" {
            let mut full = prefix.clone();
            full.push(seg.clone());
            imports.insert(seg, full.join("::"));
        } else if let Some(tail) = prefix.last().cloned() {
            // `use a::b::{self, c}`: `self` binds the parent segment.
            imports.insert(tail, prefix.join("::"));
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_fns_params_and_statements() {
        let src = "\
fn alpha(a: u64, b: &str) -> u64 {
    let x = a + 1;
    helper(x);
    x
}
fn helper(v: u64) {}
";
        let m = model_file("t.rs", src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!(m.fns[0].params, ["a", "b"]);
        assert_eq!(m.fns[0].line, 1);
        assert_eq!(m.fns[0].end_line, 5);
        assert!(m.fns[0].body.len() >= 2);
        assert_eq!(m.fns[1].name, "helper");
        assert_eq!(m.fns[1].params, ["v"]);
    }

    #[test]
    fn nested_fns_and_impl_methods_are_items() {
        let src = "\
impl Widget {
    fn outer(&self) {
        fn inner(q: u8) -> u8 { q }
        let _ = inner(1);
    }
}
";
        let m = model_file("t.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(m.fns[0].params, ["self"]);
        // `inner`'s body belongs to inner, not outer.
        let outer = &m.fns[0];
        assert!(outer
            .body
            .iter()
            .any(|s| s.toks.iter().any(|t| t.text == "inner")));
    }

    #[test]
    fn trait_method_declarations_are_not_items() {
        let src = "trait T { fn decl(&self) -> u8; fn with_body(&self) -> u8 { 1 } }";
        let m = model_file("t.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_body"]);
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let src = "\
fn generic<T: Ord, F>(items: Vec<T>, pick: F) -> Option<T>
where
    F: Fn(&T) -> bool,
{
    items.into_iter().find(|x| pick(x))
}
";
        let m = model_file("t.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "generic");
        assert_eq!(m.fns[0].params, ["items", "pick"]);
    }

    #[test]
    fn use_tree_bindings() {
        let src = "\
use std::collections::BTreeMap;
use std::time::{Instant, SystemTime as St};
use crate::event::{self, Scheduler};
";
        let m = model_file("t.rs", src);
        assert_eq!(
            m.imports.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(
            m.imports.get("Instant").map(String::as_str),
            Some("std::time::Instant")
        );
        assert_eq!(
            m.imports.get("St").map(String::as_str),
            Some("std::time::SystemTime")
        );
        assert_eq!(
            m.imports.get("Scheduler").map(String::as_str),
            Some("crate::event::Scheduler")
        );
        assert_eq!(
            m.imports.get("event").map(String::as_str),
            Some("crate::event")
        );
    }

    #[test]
    fn pragmas_are_recorded_with_lines() {
        let src = "\
fn f() {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = \"x\")
    g();
}
";
        let m = model_file("t.rs", src);
        assert_eq!(
            m.pragmas,
            vec![("wall-clock-flows-to-schedule".to_string(), 2)]
        );
        assert!(m.fns[0].contains_line(2));
    }

    #[test]
    fn test_gated_fns_are_excluded() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper_in_tests() {}
    #[test]
    fn a_test() {}
}
";
        let m = model_file("t.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn truncated_input_yields_partial_model() {
        for src in [
            "fn broken(a: u64",
            "fn open_body() { let x = 1;",
            "fn a() { fn b() { ",
            "use std::collections::{BTreeMap, ",
            "fn g<T",
            "impl X { fn m(&self",
        ] {
            let m = model_file("t.rs", src); // must not panic
            assert!(m.fns.len() <= 2, "{src:?}");
        }
    }
}
