//! `--trace` mode: audit an exported Chrome-format job trace.
//!
//! Three stages, each of which must pass:
//!
//! 1. **Import** — `JobTrace::from_chrome_json` reconstructs the full
//!    schedule from the exported JSON (the `textmr` metadata object makes
//!    this lossless), rejecting traces this harness did not produce.
//! 2. **Tiling** — `JobTrace::check()` re-validates the per-lane
//!    invariants: lanes tile their entry exactly, slots never overlap.
//! 3. **Happens-before** — `trace::race::check_races` reconstructs the
//!    cross-lane ordering (hand-offs, spill→merge→fetch edges, barriers,
//!    speculation) with vector clocks and reports any pair of spans that
//!    touch the same logical resource without a happens-before path.

use std::path::Path;

use textmr_engine::trace::race::check_races;
use textmr_engine::trace::JobTrace;

/// Audit one exported trace JSON file.
///
/// Returns a one-line human-readable summary on success; `Err` carries the
/// diagnostics when any stage fails.
pub fn audit_trace_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    audit_trace_str(&path.display().to_string(), &text)
}

/// Audit trace JSON already in memory; `label` names it in messages.
pub fn audit_trace_str(label: &str, text: &str) -> Result<String, String> {
    let trace =
        JobTrace::from_chrome_json(text).map_err(|e| format!("{label}: import failed: {e}"))?;
    trace
        .check()
        .map_err(|e| format!("{label}: schedule invariant violated: {e}"))?;
    let report = check_races(&trace);
    if report.is_clean() {
        Ok(format!(
            "{label}: OK — {} threads, {} events, {} happens-before edges, {} resource accesses, no races",
            report.threads,
            report.events,
            report.edges,
            report.accesses.values().sum::<usize>()
        ))
    } else {
        Err(format!("{label}: FAILED\n{}", report.render()))
    }
}
