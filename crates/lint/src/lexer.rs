//! A minimal hand-rolled Rust lexer.
//!
//! The lint rules only need identifier/operator adjacency per source line,
//! so this lexer is deliberately small: it classifies tokens as identifiers,
//! punctuation, literals, or comments, and records the 1-based line each
//! token starts on. What it must get exactly right — and does — is *masking*:
//! comments (including nested block comments), string literals (including
//! raw strings with arbitrary `#` guards and byte strings), and char
//! literals must never leak their contents into the token stream, or a
//! mention of `HashMap` in a doc comment would trip a lint.
//!
//! Unterminated constructs run to end of input rather than erroring; the
//! rules operate best-effort per line and the workspace compiles under
//! `cargo check` anyway, so malformed input only occurs in fixtures.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `HashMap`, `fn`, ...). Lifetimes and
    /// raw identifiers (`'a`, `r#match`) also land here; their text keeps
    /// the sigil so they can never collide with a plain identifier.
    Ident,
    /// Punctuation. Compound assignment operators (`+=`, `-=`, `*=`, ...)
    /// are a single token; everything else is one character.
    Punct,
    /// String, char, byte, or number literal. Contents are opaque to the
    /// rules.
    Literal,
    /// Line or block comment, text inclusive of the comment markers.
    Comment,
}

/// One token: its verbatim source text and the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Verbatim source text.
    pub text: &'a str,
    /// Token class.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Byte length of the UTF-8 character beginning with `b0`.
fn utf8_len(b0: u8) -> usize {
    if b0 < 0x80 {
        1
    } else if b0 < 0xE0 {
        2
    } else if b0 < 0xF0 {
        3
    } else {
        4
    }
}

/// Skip a `"..."` string starting at the opening quote. Returns the index
/// one past the closing quote and the updated line counter.
fn skip_plain_string(b: &[u8], start: usize, mut line: u32) -> (usize, u32) {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escape consumes the next byte too — which may be a
                // newline (string line-continuation `"a\␊   b"`). It must
                // still count toward the line number or every subsequent
                // token (and the pragmas anchored to them) drifts.
                if b.get(i + 1) == Some(&b'\n') {
                    line += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, line),
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), line)
}

/// Skip a char literal starting at the opening `'`. Only called once the
/// caller has decided this is a char literal, not a lifetime.
fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i < b.len() && b[i] == b'\\' {
        i += 2; // escape lead ('\n', '\u{...}', '\'')
        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
        i += 1;
    }
    (i + 1).min(b.len())
}

/// Try to lex a string literal with an `r`/`b`/`br` prefix at `i`.
/// Returns `(end, line)` on success, or `None` when the prefix turns out to
/// begin an ordinary identifier (`raw`, `r#match`, `broadcast`, ...).
fn try_prefixed_string(src: &str, i: usize, line: u32) -> Option<(usize, u32)> {
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else {
        // b[j] == b'r'
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            // Raw string: scan for `"` followed by `hashes` hash marks.
            j += 1;
            let mut nl = line;
            while j < b.len() {
                if b[j] == b'\n' {
                    nl += 1;
                    j += 1;
                    continue;
                }
                if b[j] == b'"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                        k += 1;
                    }
                    if k == hashes {
                        return Some((j + 1 + hashes, nl));
                    }
                }
                j += 1;
            }
            return Some((b.len(), nl));
        }
        return None; // raw identifier or plain ident starting with r/br
    }
    // `b"..."` byte string or `b'.'` byte char.
    if j < b.len() && b[j] == b'"' {
        return Some(skip_plain_string(b, j, line));
    }
    if j < b.len() && b[j] == b'\'' {
        return Some((skip_char_literal(b, j), line));
    }
    None
}

/// Lex `src` into tokens, preserving comments.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.push(Token {
                    text: &src[start..i],
                    kind: TokKind::Comment,
                    line,
                });
                continue;
            }
            if b[i + 1] == b'*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(Token {
                    text: &src[start..i],
                    kind: TokKind::Comment,
                    line: start_line,
                });
                continue;
            }
        }
        // r"...", r#"..."#, b"...", b'.', br#"..."# — or identifiers that
        // merely start with those letters.
        if c == b'r' || c == b'b' {
            if let Some((end, nl)) = try_prefixed_string(src, i, line) {
                out.push(Token {
                    text: &src[i..end],
                    kind: TokKind::Literal,
                    line,
                });
                line = nl;
                i = end;
                continue;
            }
        }
        if c == b'"' {
            let (end, nl) = skip_plain_string(b, i, line);
            out.push(Token {
                text: &src[i..end],
                kind: TokKind::Literal,
                line,
            });
            line = nl;
            i = end;
            continue;
        }
        // `'a'` char literal vs `'a` lifetime/label.
        if c == b'\'' {
            let next = b.get(i + 1).copied().unwrap_or(0);
            let is_char = if next == b'\\' {
                true
            } else if is_ident_start(next) || next.is_ascii_digit() {
                // One character then a closing quote → char literal;
                // otherwise a lifetime (`'static`) or loop label (`'outer:`).
                b.get(i + 1 + utf8_len(next)) == Some(&b'\'')
            } else {
                true // '+' ')' and friends can only be char contents
            };
            if is_char {
                let end = skip_char_literal(b, i);
                out.push(Token {
                    text: &src[i..end],
                    kind: TokKind::Literal,
                    line,
                });
                i = end;
            } else {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token {
                    text: &src[start..i],
                    kind: TokKind::Ident,
                    line,
                });
            }
            continue;
        }
        // Identifiers and keywords (including raw identifiers `r#match`).
        if is_ident_start(c) {
            let start = i;
            i += 1;
            if c == b'r' && i + 1 < b.len() && b[i] == b'#' && is_ident_start(b[i + 1]) {
                i += 2;
            }
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                text: &src[start..i],
                kind: TokKind::Ident,
                line,
            });
            continue;
        }
        // Numbers, including suffixes (`1_000u128`), hex, floats, and
        // exponents. `1..x` must not swallow the range dots.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                let decimal_dot =
                    d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() && b[i - 1] != b'.';
                let exponent_sign = (d == b'+' || d == b'-') && matches!(b[i - 1], b'e' | b'E');
                if d.is_ascii_alphanumeric() || d == b'_' || decimal_dot || exponent_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                text: &src[start..i],
                kind: TokKind::Literal,
                line,
            });
            continue;
        }
        // Punctuation; compound assignment stays one token.
        let start = i;
        if matches!(c, b'+' | b'-' | b'*' | b'/' | b'%' | b'^' | b'&' | b'|')
            && b.get(i + 1) == Some(&b'=')
        {
            i += 2;
        } else {
            i += 1;
        }
        out.push(Token {
            text: &src[start..i],
            kind: TokKind::Punct,
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_mask_their_contents() {
        let toks = kinds("let x = 1; // HashMap of Instant\nlet y;");
        assert!(toks
            .iter()
            .all(|(k, t)| *k == TokKind::Comment || !t.contains("HashMap")));
        let toks = kinds("/* outer /* nested HashMap */ still */ fn f() {}");
        assert_eq!(toks[0].0, TokKind::Comment);
        assert_eq!(toks[1], (TokKind::Ident, "fn"));
    }

    #[test]
    fn strings_mask_their_contents() {
        for src in [
            r#"let s = "HashMap::new()";"#,
            r##"let s = r#"Instant "quoted" here"#;"##,
            r#"let s = b"SystemTime";"#,
            "let s = r\"multi\nline HashMap\";",
        ] {
            assert!(
                lex(src)
                    .iter()
                    .all(|t| t.kind != TokKind::Ident || !t.text.contains("HashMap")),
                "leak in {src:?}"
            );
        }
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(toks.contains(&(TokKind::Ident, "'a")));
        assert!(toks.contains(&(TokKind::Literal, "'x'")));
        assert!(toks.contains(&(TokKind::Literal, "'\\n'")));
    }

    #[test]
    fn compound_assignment_is_one_token() {
        let toks = kinds("total_ns += x; y -= 1; z *= 2; w /= 3;");
        assert!(toks.contains(&(TokKind::Punct, "+=")));
        assert!(toks.contains(&(TokKind::Punct, "-=")));
        assert!(toks.contains(&(TokKind::Punct, "*=")));
        assert!(toks.contains(&(TokKind::Punct, "/=")));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("let a = 1_000u128; for i in 0..10 { let f = 1.5e-3; }");
        assert!(toks.contains(&(TokKind::Literal, "1_000u128")));
        assert!(toks.contains(&(TokKind::Literal, "0")));
        assert!(toks.contains(&(TokKind::Literal, "10")));
        assert!(toks.contains(&(TokKind::Literal, "1.5e-3")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "fn a() {}\n/* one\ntwo */\nfn b() {}";
        let toks = lex(src);
        let b_tok = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 4);
    }

    /// Regression: a string line-continuation (`\` at end of line) used to
    /// skip its newline without counting it, drifting every later token's
    /// line — and with it the pragma anchoring — by one per continuation.
    #[test]
    fn escaped_newlines_in_strings_keep_line_numbers() {
        let src = "let s = \"one\\\n   two\\\n   three\";\nfn after() {}";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
        // The masking still holds: the literal is one token.
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal
            && t.text.starts_with('"')
            && t.text.ends_with('"')));
    }

    /// Regression fixtures for raw strings: arbitrary `#` guards, an
    /// embedded `"#` that must not close a `##`-guarded string, and line
    /// counting across the literal.
    #[test]
    fn raw_strings_with_hash_guards() {
        // `"#` inside a `##`-guarded raw string does not terminate it.
        let src = "let s = r##\"contains \"# quote HashMap\"##;\nfn g() {}";
        let toks = lex(src);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || !t.text.contains("HashMap")));
        assert_eq!(toks.iter().find(|t| t.text == "g").unwrap().line, 2);
        // Multi-line raw string advances the line counter.
        let src = "let s = r#\"a\nb\nc\"#;\nfn h() {}";
        let toks = lex(src);
        assert_eq!(toks.iter().find(|t| t.text == "h").unwrap().line, 4);
        // A raw identifier is not a raw string.
        let toks = kinds("let r#match = 1; let raw = 2;");
        assert!(toks.contains(&(TokKind::Ident, "r#match")));
        assert!(toks.contains(&(TokKind::Ident, "raw")));
    }

    /// Regression fixtures for byte strings and byte chars: `b"..."`,
    /// `br#"..."#`, `b'\''`, and identifiers that merely start with `b`/`br`.
    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"Instant"; let c = br#"SystemTime"#; let d = b'\'';"##);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident
                || (!t.contains("Instant") && !t.contains("SystemTime"))));
        assert!(toks.contains(&(TokKind::Literal, r"b'\''")));
        // `broadcast` starts with `br` but is an identifier.
        let toks = kinds("let broadcast = 1; let brief = b;");
        assert!(toks.contains(&(TokKind::Ident, "broadcast")));
        assert!(toks.contains(&(TokKind::Ident, "brief")));
        // Escaped newline inside a byte string counts lines too.
        let src = "let s = b\"x\\\ny\";\nfn i() {}";
        let toks = lex(src);
        assert_eq!(toks.iter().find(|t| t.text == "i").unwrap().line, 3);
    }

    /// Regression fixtures for nested block comments: depth tracking,
    /// masking at every depth, line counting, and unterminated tails.
    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b /* HashMap */ c */ d */ fn j() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks.iter().any(|t| t.text == "j"));
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || !t.text.contains("HashMap")));
        // Line counting through a nested multi-line comment.
        let src = "/* one\n/* two\n*/ three\n*/ fn k() {}";
        let toks = lex(src);
        assert_eq!(toks.iter().find(|t| t.text == "k").unwrap().line, 4);
        // Unterminated nesting runs to end of input without panicking.
        let toks = lex("/* open /* still open\nfn hidden() {}");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Comment);
    }
}
