//! `textmr-lint`: the determinism-audit layer for the textmr workspace.
//!
//! Every figure the harness reports rests on one invariant: the virtual-time
//! schedule is deterministic, so outputs and timing-free signatures are
//! bit-identical at any worker/fetcher count. The dynamic determinism tests
//! prove that for the inputs they run; this crate enforces the *source-level
//! hygiene* that makes it true in general, plus a dynamic happens-before
//! check over exported schedules.
//!
//! Three layers:
//!
//! * **Token rules** ([`scanner`], [`rules`], [`workspace`]) — a hand-rolled
//!   line/token-level Rust scanner (no `syn`/proc-macro dependencies; the
//!   build is offline) that walks every workspace `.rs` file and enforces
//!   the project invariants as named diagnostics. Legitimate exceptions are
//!   annotated in-source with `// textmr-lint: allow(<rule>, reason = "...")`
//!   pragmas; a pragma that suppresses nothing is itself a diagnostic.
//! * **Flow rules** ([`model`], [`callgraph`], [`flow`]) — an
//!   interprocedural taint pass over an item-level syntactic model and a
//!   name+`use`-path call graph. Nondeterministic sources (host clock,
//!   env, hash-iteration order, non-seeded RNG) are traced through call
//!   chains to scheduling and output sinks; findings carry the full
//!   source→fn→…→sink witness chain.
//! * **Trace race detector** ([`trace_audit`]) — re-imports an exported
//!   Chrome-format trace with `JobTrace::from_chrome_json`, re-validates the
//!   per-lane tiling invariants, and runs the vector-clock happens-before
//!   checker in `textmr_engine::trace::race` to find cross-lane orderings
//!   the tiling checks cannot see.
//!
//! The `textmr-lint` binary exposes all three: `--workspace` scans the
//! source tree and runs the flow pass (add `--fix` to insert
//! `reason = "TODO"` pragma stubs at the finding sites — see [`fix`];
//! `--sarif <file>` exports SARIF 2.1.0, `--baseline <file>` gates
//! against a committed findings baseline — see [`sarif`]), and
//! `--trace <json>...` audits exported traces. Exit status is `0` only
//! when every check is clean, which is what the CI lint gate keys on.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

pub mod callgraph;
pub mod fix;
pub mod flow;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod scanner;
pub mod trace_audit;
pub mod workspace;

/// One lint finding.
///
/// `rule` is either one of the five rule names in [`rules::Rule`] or a
/// meta-rule raised by the pragma engine itself (`malformed-pragma`,
/// `unknown-rule`, `missing-reason`, `unused-pragma`). Every diagnostic is
/// an error: the CI gate fails on any.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// File the finding was raised in (workspace-relative when scanning a
    /// workspace).
    pub file: String,
    /// 1-based line number the finding anchors to (line 1 for file-scoped
    /// rules such as `missing-crate-lints`).
    pub line: u32,
    /// Name of the rule or meta-rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}
