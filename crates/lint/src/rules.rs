//! The rule catalogue.
//!
//! Eight rules, all rooted in the same invariant: a virtual-time schedule is
//! only deterministic if no nondeterministic input (host clock, hash-order
//! iteration, silent truncation, silent wrap) can reach an output, a
//! signature, or a scheduling decision. The first six are token rules,
//! enforced line by line; the last two are *flow* rules, enforced by the
//! interprocedural taint pass in [`crate::flow`] over the workspace call
//! graph. See DESIGN.md §3e for the rationale behind each rule and the
//! list of annotated exceptions.

/// The determinism-hygiene rules enforced by `textmr-lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `wall-clock-in-virtual-path`: bans `Instant`/`SystemTime` outside
    /// the annotated measured-op sites. Virtual time must come from the
    /// cost model, never the host.
    WallClock,
    /// `unordered-iteration`: flags `HashMap`/`HashSet` (and the FNV
    /// aliases) in non-test code. Iteration order is randomized per
    /// process, so anything it feeds — outputs, signatures, spill files —
    /// must instead use `BTreeMap`/`BTreeSet` or sort explicitly; sites
    /// that never iterate are annotated.
    UnorderedIteration,
    /// `lossy-virtual-time-cast`: flags `as u64`/`as i64` on lines doing
    /// 128-bit virtual-time/NIC arithmetic. Narrowing must go through
    /// `try_from` (or be annotated with the bound that makes it exact).
    LossyVirtualTimeCast,
    /// `unchecked-virtual-accumulator`: flags bare `+=`/`-=`/`*=` and bare
    /// `*` on `*_ns` accumulators. Virtual-time tallies must saturate or
    /// check, not wrap; 128-bit-widened lines are exempt (they cannot
    /// overflow at the magnitudes the model produces).
    UncheckedVirtualAccumulator,
    /// `missing-crate-lints`: every crate root must carry
    /// `#![forbid(unsafe_code)]`, and library roots additionally
    /// `#![deny(missing_docs)]`.
    MissingCrateLints,
    /// `sort-unstable-key-runs`: flags `.sort_unstable_by` /
    /// `.sort_unstable_by_key` in non-test code. An unstable sort may
    /// reorder key-equal runs differently across std versions, so any
    /// order that leaks into outputs or schedules must come from a stable
    /// sort or a comparator that breaks every tie; keyless
    /// `.sort_unstable()` is exempt (equal elements are interchangeable).
    SortUnstableKeyRuns,
    /// `wall-clock-flows-to-schedule`: interprocedural flow rule. A
    /// nondeterministic value (host clock, env/thread-id/pointer
    /// formatting, non-seeded RNG) reaches a scheduling-relevant sink — a
    /// `*_ns` virtual-time accumulator, a `JobProfile`/signature input, or
    /// a duration handed to the event-loop scheduler — through any chain
    /// of calls. Sanitized by measured-op `Stopwatch` boundaries and by a
    /// reasoned pragma anywhere in a function on the chain.
    WallClockFlow,
    /// `hash-order-flows-to-output`: interprocedural flow rule. A value
    /// whose order derives from `HashMap`/`HashSet` iteration reaches
    /// bytes written to job output, spill files, or traces through any
    /// chain of calls. Sanitized by sorting (or collecting into a BTree
    /// collection) before emission and by a reasoned pragma anywhere in a
    /// function on the chain.
    HashOrderFlow,
}

impl Rule {
    /// All rules, in catalogue order (token rules first, then flow rules).
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::UnorderedIteration,
        Rule::LossyVirtualTimeCast,
        Rule::UncheckedVirtualAccumulator,
        Rule::MissingCrateLints,
        Rule::SortUnstableKeyRuns,
        Rule::WallClockFlow,
        Rule::HashOrderFlow,
    ];

    /// The rule's diagnostic / pragma name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock-in-virtual-path",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::LossyVirtualTimeCast => "lossy-virtual-time-cast",
            Rule::UncheckedVirtualAccumulator => "unchecked-virtual-accumulator",
            Rule::MissingCrateLints => "missing-crate-lints",
            Rule::SortUnstableKeyRuns => "sort-unstable-key-runs",
            Rule::WallClockFlow => "wall-clock-flows-to-schedule",
            Rule::HashOrderFlow => "hash-order-flows-to-output",
        }
    }

    /// Look a rule up by its pragma name.
    pub fn by_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line summary for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "Instant/SystemTime outside annotated measured-op sites; \
                 virtual time must come from the cost model, not the host"
            }
            Rule::UnorderedIteration => {
                "HashMap/HashSet (incl. FNV aliases) in non-test code; \
                 iteration order is nondeterministic, use BTree* or sort"
            }
            Rule::LossyVirtualTimeCast => {
                "`as u64`/`as i64` on 128-bit virtual-time arithmetic; \
                 narrow via try_from or annotate the exactness bound"
            }
            Rule::UncheckedVirtualAccumulator => {
                "bare +=/-=/*= or * on *_ns accumulators; \
                 saturate or check instead of silently wrapping"
            }
            Rule::MissingCrateLints => {
                "crate roots must carry #![forbid(unsafe_code)] and, for \
                 libraries, #![deny(missing_docs)]"
            }
            Rule::SortUnstableKeyRuns => {
                "sort_unstable_by/_by_key may reorder key-equal runs; \
                 use a stable sort, break ties in the comparator, or \
                 annotate why equal keys cannot coexist"
            }
            Rule::WallClockFlow => {
                "flow rule: a nondeterministic value (host clock, env, \
                 thread id, non-seeded RNG) reaches a *_ns accumulator, \
                 JobProfile/signature, or scheduler duration through calls"
            }
            Rule::HashOrderFlow => {
                "flow rule: hash-iteration order reaches bytes written to \
                 job output, spills, or traces through calls; sort (or \
                 collect into a BTree) before emission"
            }
        }
    }

    /// True for rules that apply to the file as a whole rather than to a
    /// particular line; an `allow` pragma anywhere in the file suppresses
    /// them.
    pub fn file_scoped(self) -> bool {
        matches!(self, Rule::MissingCrateLints)
    }

    /// True for the interprocedural flow rules: they are enforced by the
    /// taint pass ([`crate::flow`]), not the per-line scanner, and their
    /// pragmas suppress every flow *through the annotated function* rather
    /// than a single line (so the line scanner never marks them used or
    /// unused).
    pub fn flow_scoped(self) -> bool {
        matches!(self, Rule::WallClockFlow | Rule::HashOrderFlow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::by_name(r.name()), Some(r));
        }
        assert_eq!(Rule::by_name("no-such-rule"), None);
    }
}
