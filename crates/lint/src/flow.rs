//! The interprocedural taint pass: source → call chain → sink.
//!
//! The token rules flag *sites*; this pass flags *flows*. Two taint kinds
//! are tracked over the workspace call graph:
//!
//! * [`Taint::Nondet`] — a value the host environment decides: wall-clock
//!   reads (`Instant`/`SystemTime`), `std::env` reads, thread ids,
//!   pointer-address formatting (`{:p}`), and RNG that is not derived
//!   from a job seed.
//! * [`Taint::HashOrder`] — a value whose *order* derives from
//!   `HashMap`/`HashSet` iteration.
//!
//! **Sources** generate taint in the function containing them. Taint
//! propagates *up* return edges (a caller of a tainted function is
//! tainted) and *down* argument edges (a callee of a tainted function may
//! receive tainted arguments) — both context-insensitive and
//! conservative, the static analogue of the trace race checker's
//! transitive happens-before closure. **Sinks** are scheduling-relevant
//! consumers: `*_ns` virtual-time accumulators, `JobProfile`/signature
//! inputs, durations handed to the event-loop scheduler, and bytes
//! written to job output or traces. A flow from a source to a sink is a
//! finding on one of the two flow rules.
//!
//! **Sanitizers** stop taint at function granularity: a measured-op
//! `Stopwatch` use (the blessed wall-clock boundary), sorting or
//! collecting into a BTree collection before emission, and reasoned
//! pragmas — a pragma for the matching rule anywhere inside a function
//! suppresses every flow through that function, not just a line.
//!
//! The pass runs to a fixpoint, so recursive call cycles terminate: taint
//! sets only grow and are bounded by the function count.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnId};
use crate::lexer::TokKind;
use crate::model::{FileModel, Stmt};
use crate::rules::Rule;
use crate::Diagnostic;

/// The two taint kinds the pass tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Taint {
    /// Host-environment nondeterminism (clock, env, thread id, RNG).
    Nondet,
    /// `HashMap`/`HashSet` iteration order.
    HashOrder,
}

impl Taint {
    /// The flow rule findings of this taint kind are reported under.
    pub fn rule(self) -> Rule {
        match self {
            Taint::Nondet => Rule::WallClockFlow,
            Taint::HashOrder => Rule::HashOrderFlow,
        }
    }

    /// The token rule whose reasoned pragmas also sanitize this kind (a
    /// site already annotated for the line rule is an audited boundary).
    fn token_rule(self) -> Rule {
        match self {
            Taint::Nondet => Rule::WallClock,
            Taint::HashOrder => Rule::UnorderedIteration,
        }
    }
}

/// A source or sink site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What the site is (e.g. `Instant::now()`, `total_ns +=`).
    pub what: String,
}

/// One confirmed source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowFinding {
    /// The flow rule that fired.
    pub rule: Rule,
    /// Where the tainted value is born.
    pub source: Site,
    /// Where it is consumed.
    pub sink: Site,
    /// Function names along the call chain, source fn first, sink fn
    /// last (one element when source and sink share a function).
    pub chain: Vec<String>,
    /// `(file, line)` of each chain function, parallel to `chain`.
    pub chain_sites: Vec<(String, u32)>,
}

impl FlowFinding {
    /// Render as a standard [`Diagnostic`], anchored at the sink line and
    /// carrying the full chain in the message:
    /// `source (...) @ a.rs:10 → fn f → fn g → sink (...) @ b.rs:42`.
    pub fn diagnostic(&self) -> Diagnostic {
        let hops: Vec<String> = self.chain.iter().map(|f| format!("fn {f}")).collect();
        Diagnostic {
            file: self.sink.file.clone(),
            line: self.sink.line,
            rule: self.rule.name(),
            message: format!(
                "source ({}) @ {}:{} → {} → sink ({}) @ {}:{}",
                self.source.what,
                self.source.file,
                self.source.line,
                hops.join(" → "),
                self.sink.what,
                self.sink.file,
                self.sink.line
            ),
        }
    }

    /// Stable baseline key: `file:line:rule` of the sink.
    pub fn baseline_key(&self) -> String {
        format!("{}:{}:{}", self.sink.file, self.sink.line, self.rule.name())
    }
}

/// Per-function facts harvested from its statements.
#[derive(Debug, Default)]
struct FnFacts {
    /// Taint this function generates, with the witness site.
    gen: Vec<(Taint, Site)>,
    /// Sink statements in this function, by taint kind they consume.
    sinks: Vec<(Taint, Site)>,
    /// Taint kinds this function sanitizes (Stopwatch, sort, pragma).
    sanitizes: BTreeSet<Taint>,
}

/// Identifier sets the harvesters key on.
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FnvHashMap", "FnvHashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];
const RNG_HINTS: [&str; 4] = ["thread_rng", "random", "entropy", "from_os_rng"];
const SCHED_SINKS: [&str; 6] = [
    "place_map",
    "place_reduce",
    "commit_backup",
    "begin_round",
    "begin_reduce_phase",
    "run_reduce_phase",
];
const OUTPUT_SINKS: [&str; 6] = [
    "write_all",
    "write_fmt",
    "writeln",
    "emit",
    "push_entry",
    "push_str",
];
const SORT_SANITIZERS: [&str; 5] = ["sort", "sort_by", "sort_by_key", "BTreeMap", "BTreeSet"];

fn has_ident(stmt: &Stmt, names: &[&str]) -> Option<(String, u32)> {
    stmt.toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
        .map(|t| (t.text.clone(), t.line))
}

/// Names bound to hash collections inside `f`: parameters whose declared
/// type (read from the signature token run) mentions a hash type, and
/// `let` bindings whose statement constructs or annotates one.
fn hash_bindings(f: &crate::model::FnItem) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    let sig = &f.sig.toks;
    let mut k = 0usize;
    while k < sig.len() {
        let t = &sig[k];
        let is_param = t.kind == TokKind::Ident
            && f.params.iter().any(|p| p == &t.text)
            && sig.get(k + 1).map(|n| n.text.as_str()) == Some(":")
            && sig.get(k + 2).map(|n| n.text.as_str()) != Some(":");
        if !is_param {
            k += 1;
            continue;
        }
        // Scan the type region to the next depth-0 comma (or the closing
        // paren of the parameter list).
        let mut depth = 0i32;
        let mut m = k + 2;
        while m < sig.len() {
            let u = &sig[m];
            match u.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => break,
                _ => {}
            }
            if u.kind == TokKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                names.insert(t.text.clone());
            }
            m += 1;
        }
        k = m.max(k + 1);
    }
    for stmt in &f.body {
        if stmt.toks.first().map(|t| t.text.as_str()) == Some("let")
            && stmt
                .toks
                .iter()
                .any(|t| t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()))
        {
            if let Some(n) = stmt
                .toks
                .iter()
                .skip(1)
                .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            {
                names.insert(n.text.clone());
            }
        }
    }
    names
}

/// The first token where a hash-bound name (or a hash type itself) is
/// actually *iterated* in `stmt`: `name.iter()`-style method chains and
/// `for pat in [&[mut ]]name` loops.
fn hash_iteration_site(stmt: &Stmt, hash_names: &BTreeSet<String>) -> Option<(String, u32)> {
    let toks = &stmt.toks;
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if !hash_names.contains(&t.text) && !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `name . iter ( )` — an ordered-traversal method on the binding.
        if toks.get(k + 1).map(|x| x.text.as_str()) == Some(".")
            && toks
                .get(k + 2)
                .is_some_and(|x| ITER_METHODS.contains(&x.text.as_str()))
        {
            return Some((format!("{} iteration", t.text), t.line));
        }
        // `for pat in name` / `for pat in &mut name`.
        let mut p = k;
        while p > 0 && matches!(toks[p - 1].text.as_str(), "&" | "mut") {
            p -= 1;
        }
        if p > 0 && toks[p - 1].text == "in" && toks.iter().take(p).any(|x| x.text == "for") {
            return Some((format!("{} iteration", t.text), t.line));
        }
    }
    None
}

/// Harvest one function's facts from its statement runs.
fn harvest(file: &str, f: &crate::model::FnItem, pragmas: &[(String, u32)]) -> FnFacts {
    let mut facts = FnFacts::default();
    let site = |what: String, line: u32| Site {
        file: file.to_string(),
        line,
        what,
    };
    let hash_names = &hash_bindings(f);

    for stmt in &f.body {
        // ---- Nondet sources ------------------------------------------------
        if let Some((what, line)) = has_ident(stmt, &CLOCK_TYPES) {
            facts.gen.push((Taint::Nondet, site(what, line)));
        }
        // `std::env::var`/`vars`: `env` followed (path-wise) by var/vars.
        let idents: Vec<&str> = stmt
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if idents
            .windows(2)
            .any(|w| w[0] == "env" && w[1].starts_with("var"))
            || idents
                .windows(2)
                .any(|w| w[0] == "thread" && w[1] == "current")
            || idents.contains(&"ThreadId")
        {
            let line = stmt.line;
            facts
                .gen
                .push((Taint::Nondet, site("env/thread-id read".into(), line)));
        }
        // Pointer-address formatting: a `{:p}` inside a format literal.
        // Requiring a formatting macro on the statement keeps string
        // literals that merely *mention* the specifier (this detector,
        // docs, match patterns) from registering as sources.
        let formats = idents.iter().any(|i| {
            matches!(
                *i,
                "format" | "print" | "println" | "eprint" | "eprintln" | "write" | "writeln"
            )
        });
        if formats {
            if let Some(t) = stmt
                .toks
                .iter()
                .find(|t| t.kind == TokKind::Literal && t.text.contains("{:p}"))
            {
                facts
                    .gen
                    .push((Taint::Nondet, site("pointer-address format".into(), t.line)));
            }
        }
        // RNG not derived from a job seed: rng constructors with no
        // seed-ish identifier on the same statement.
        if let Some((what, line)) = has_ident(stmt, &RNG_HINTS) {
            let seeded = idents.iter().any(|i| i.contains("seed"));
            if !seeded {
                facts.gen.push((Taint::Nondet, site(what, line)));
            }
        }
        // ---- HashOrder sources ---------------------------------------------
        if let Some((what, line)) = hash_iteration_site(stmt, hash_names) {
            facts.gen.push((Taint::HashOrder, site(what, line)));
        }
        // ---- Sinks ---------------------------------------------------------
        // `*_ns` accumulator updates: `x_ns =`, `x_ns +=`, `x_ns -=`.
        for w in stmt.toks.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.kind == TokKind::Ident
                && a.text.ends_with("_ns")
                && a.text.len() > 3
                && b.kind == TokKind::Punct
                && matches!(b.text.as_str(), "=" | "+=" | "-=" | "*=")
            {
                facts.sinks.push((
                    Taint::Nondet,
                    site(format!("{} {}", a.text, b.text), a.line),
                ));
                break;
            }
        }
        // Scheduler durations and profile/signature inputs.
        if let Some((what, line)) = has_ident(stmt, &SCHED_SINKS) {
            facts
                .sinks
                .push((Taint::Nondet, site(format!("{what}()"), line)));
        }
        if let Some((what, line)) = has_ident(stmt, &["JobProfile", "signature"]) {
            facts.sinks.push((Taint::Nondet, site(what, line)));
        }
        // Bytes written to output, spills, or traces.
        if let Some((what, line)) = has_ident(stmt, &OUTPUT_SINKS) {
            facts
                .sinks
                .push((Taint::HashOrder, site(format!("{what}()"), line)));
        }
        // ---- Sanitizers ----------------------------------------------------
        if has_ident(stmt, &SORT_SANITIZERS).is_some() {
            facts.sanitizes.insert(Taint::HashOrder);
        }
        if has_ident(stmt, &["Stopwatch"]).is_some() {
            facts.sanitizes.insert(Taint::Nondet);
        }
    }

    // Reasoned pragmas inside the function sanitize whole flows through
    // it: both the flow rule's own pragma and the matching token rule's
    // (an annotated site is an audited boundary).
    for (name, line) in pragmas {
        if !f.contains_line(*line) {
            continue;
        }
        for taint in [Taint::Nondet, Taint::HashOrder] {
            if name == taint.rule().name() || name == taint.token_rule().name() {
                facts.sanitizes.insert(taint);
            }
        }
    }
    facts
}

/// Run the taint pass over the whole workspace model. Returns findings in
/// deterministic (file, line, rule) order, deduplicated by (source, sink).
pub fn analyze(models: &[FileModel]) -> Vec<FlowFinding> {
    let graph = CallGraph::build(models);
    analyze_graph(&graph, models)
}

/// The pass proper, over a prebuilt graph (exposed for tests).
pub fn analyze_graph(graph: &CallGraph, models: &[FileModel]) -> Vec<FlowFinding> {
    // File → pragma list, so harvesting can attribute pragmas to items.
    let pragmas: BTreeMap<&str, &[(String, u32)]> = models
        .iter()
        .map(|m| (m.file.as_str(), m.pragmas.as_slice()))
        .collect();

    let facts: Vec<FnFacts> = graph
        .fns
        .iter()
        .map(|f| {
            harvest(
                &f.file,
                f,
                pragmas.get(f.file.as_str()).copied().unwrap_or(&[]),
            )
        })
        .collect();

    // For each taint kind: the set of functions holding that taint, with
    // the originating (source fn, site) witness kept per holder. A
    // sanitizer function neither keeps nor forwards taint.
    let mut findings: BTreeSet<FlowFinding> = BTreeSet::new();
    for taint in [Taint::Nondet, Taint::HashOrder] {
        // holder → witness (source fn, site). First (deterministic) writer
        // wins; monotone growth guarantees the fixpoint terminates even
        // through recursive call cycles.
        let mut holds: BTreeMap<FnId, (FnId, Site)> = BTreeMap::new();
        let mut work: Vec<FnId> = Vec::new();
        for (id, f) in facts.iter().enumerate() {
            if f.sanitizes.contains(&taint) {
                continue;
            }
            if let Some((_, site)) = f.gen.iter().find(|(t, _)| *t == taint) {
                holds.insert(id, (id, site.clone()));
                work.push(id);
            }
        }
        while let Some(cur) = work.pop() {
            let witness = holds.get(&cur).expect("worklist holds are set").clone();
            // Up: a caller receives the tainted return value.
            // Down: a callee receives tainted arguments.
            let neighbours: Vec<FnId> = graph.callers[cur]
                .iter()
                .chain(graph.callees[cur].iter())
                .copied()
                .collect();
            for n in neighbours {
                if facts[n].sanitizes.contains(&taint) || holds.contains_key(&n) {
                    continue;
                }
                holds.insert(n, witness.clone());
                work.push(n);
            }
        }
        // Findings: a holder with a sink of this kind.
        for (&holder, (src_fn, src_site)) in &holds {
            for (t, sink_site) in &facts[holder].sinks {
                if *t != taint {
                    continue;
                }
                let chain_ids = chain_between(graph, *src_fn, holder);
                let chain: Vec<String> = chain_ids
                    .iter()
                    .map(|&i| graph.fns[i].name.clone())
                    .collect();
                let chain_sites: Vec<(String, u32)> = chain_ids
                    .iter()
                    .map(|&i| (graph.fns[i].file.clone(), graph.fns[i].line))
                    .collect();
                findings.insert(FlowFinding {
                    rule: taint.rule(),
                    source: src_site.clone(),
                    sink: sink_site.clone(),
                    chain,
                    chain_sites,
                });
            }
        }
    }
    let mut out: Vec<FlowFinding> = findings.into_iter().collect();
    out.sort_by(|a, b| {
        (&a.sink.file, a.sink.line, a.rule)
            .cmp(&(&b.sink.file, b.sink.line, b.rule))
            .then_with(|| a.source.cmp(&b.source))
    });
    out
}

/// A witness call chain from `src` to `dst`, trying callee edges first
/// (return-value flows read most naturally), then caller edges (argument
/// flows), then the undirected closure for mixed chains.
fn chain_between(graph: &CallGraph, src: FnId, dst: FnId) -> Vec<FnId> {
    if let Some(c) = graph.chain(src, dst) {
        return c;
    }
    if let Some(mut c) = graph.chain(dst, src) {
        c.reverse();
        return c;
    }
    // Mixed up/down chain: BFS over the undirected graph.
    let mut prev: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut seen: BTreeSet<FnId> = BTreeSet::from([src]);
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(cur) = queue.pop_front() {
        if cur == dst {
            let mut path = vec![dst];
            let mut at = dst;
            while let Some(&p) = prev.get(&at) {
                path.push(p);
                at = p;
            }
            path.reverse();
            return path;
        }
        for &n in graph.callees[cur].iter().chain(graph.callers[cur].iter()) {
            if seen.insert(n) {
                prev.insert(n, cur);
                queue.push_back(n);
            }
        }
    }
    vec![src, dst] // disconnected (same fn handled by graph.chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_file;

    fn flows(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(name, src)| model_file(name, src))
            .collect();
        analyze(&models)
    }

    #[test]
    fn same_function_source_to_sink() {
        let f = flows(&[(
            "a.rs",
            "fn f(total_ns: &mut u64) { let t = Instant::now(); *total_ns = t.elapsed().as_nanos() as u64; }\n",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClockFlow);
        assert_eq!(f[0].chain, ["f"]);
    }

    #[test]
    fn cross_function_flow_has_exact_chain() {
        let f = flows(&[(
            "a.rs",
            "\
fn read_clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }
fn relay() -> u64 { read_clock() }
fn consume(p: &mut P) { p.total_ns = relay(); }
",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].chain, ["read_clock", "relay", "consume"]);
        assert_eq!(f[0].source.line, 1);
        assert_eq!(f[0].sink.line, 3);
    }

    #[test]
    fn sort_before_emit_sanitizes_hash_order() {
        let clean = flows(&[(
            "a.rs",
            "\
fn collect_counts(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut v: Vec<_> = m.iter().map(|(k, c)| (*k, *c)).collect();
    v.sort_by_key(|e| e.0);
    v
}
fn dump(w: &mut W, v: &[(u64, u64)]) { w.write_all(b\"x\"); }
",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn unsorted_hash_iteration_reaching_output_is_flagged() {
        let f = flows(&[(
            "a.rs",
            "\
fn collect_counts(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    m.iter().map(|(k, c)| (*k, *c)).collect()
}
fn dump(w: &mut W, m: &HashMap<u64, u64>) {
    for e in collect_counts(m) { w.write_all(&e.0.to_le_bytes()); }
}
",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HashOrderFlow);
        assert_eq!(f[0].chain, ["collect_counts", "dump"]);
    }

    #[test]
    fn pragma_sanitizes_whole_flow_through_the_function() {
        let f = flows(&[(
            "a.rs",
            "\
fn read_clock() -> u64 {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = \"measured op\")
    Instant::now().elapsed().as_nanos() as u64
}
fn consume(p: &mut P) { p.total_ns = read_clock(); }
",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stopwatch_is_a_nondet_sanitizer() {
        let f = flows(&[(
            "a.rs",
            "\
fn measured() -> u64 { let sw = Stopwatch::start(); sw.stop_ns() }
fn consume(p: &mut P) { p.total_ns = measured(); }
",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recursive_cycle_terminates() {
        let f = flows(&[(
            "a.rs",
            "\
fn ping(d: u32) -> u64 { if d == 0 { Instant::now().elapsed().as_nanos() as u64 } else { pong(d - 1) } }
fn pong(d: u32) -> u64 { ping(d) }
fn consume(p: &mut P) { p.total_ns = ping(3); }
",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::WallClockFlow);
        assert!(f[0].chain.starts_with(&["ping".to_string()]));
    }

    #[test]
    fn seeded_rng_is_not_a_source() {
        let clean = flows(&[(
            "a.rs",
            "\
fn gen(seed: u64) -> u64 { let mut rng = random(seed); rng }
fn consume(p: &mut P) { p.total_ns = gen(7); }
",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = flows(&[(
            "a.rs",
            "\
fn gen() -> u64 { let mut rng = thread_rng(); 4 }
fn consume(p: &mut P) { p.total_ns = gen(); }
",
        )]);
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn hash_type_without_iteration_is_not_a_source() {
        let clean = flows(&[(
            "a.rs",
            "\
fn lookup(m: &HashMap<u64, u64>, k: u64) -> u64 { m.get(&k).copied().unwrap_or(0) }
fn dump(w: &mut W, m: &HashMap<u64, u64>) { w.write_all(&lookup(m, 1).to_le_bytes()); }
",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn argument_taint_flows_down_into_sink_helpers() {
        // The source fn passes tainted data to a helper that writes it.
        let f = flows(&[(
            "a.rs",
            "\
fn emit_counts(w: &mut W, m: &HashMap<u64, u64>) {
    for (k, c) in m.iter() { write_pair(w, k, c); }
}
fn write_pair(w: &mut W, k: &u64, c: &u64) { w.write_all(&k.to_le_bytes()); }
",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].chain, ["emit_counts", "write_pair"]);
    }
}
