//! Workspace call graph over the item model.
//!
//! Call sites are recovered syntactically from each function's statement
//! runs: `name(...)`, `path::name(...)`, and method calls `.name(...)`.
//! Resolution is by *name plus `use`-path*: a call to `name` resolves to
//! every workspace function with that bare name — deliberately
//! conservative on trait and `dyn` dispatch (all same-named impls are
//! assumed reachable) — and a call through a `use ... as alias` rename is
//! first unaliased via the file's import table so the real definition is
//! found. Calls to names with no workspace definition (std, vendored
//! shims) resolve to nothing; the flow pass classifies those sites by
//! pattern instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::model::{FileModel, FnItem};

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function in the workspace, in (file, line) order.
    pub fns: Vec<FnItem>,
    /// `callees[f]` — functions `f` calls (resolved, deduplicated).
    pub callees: Vec<Vec<FnId>>,
    /// `callers[f]` — inverse edges.
    pub callers: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Build the graph from per-file models. Functions keep (file, line)
    /// order so analysis output is deterministic.
    pub fn build(models: &[FileModel]) -> CallGraph {
        let mut fns: Vec<FnItem> = Vec::new();
        // Which file (index into `models`) each fn came from, so its
        // import table is at hand during resolution.
        let mut file_of: Vec<usize> = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            for f in &m.fns {
                fns.push(f.clone());
                file_of.push(mi);
            }
        }

        // Name → every definition with that bare name.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }

        let mut callees: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            let imports = &models[file_of[id]].imports;
            let mut targets: BTreeSet<FnId> = BTreeSet::new();
            for stmt in &f.body {
                for (i, t) in stmt.toks.iter().enumerate() {
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    // A call site: identifier directly followed by `(`.
                    // (Macro invocations are `name ! (` and excluded —
                    // their bodies were already lexed into the stream.)
                    if stmt.toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
                        continue;
                    }
                    // Struct init `Name (` cannot occur; tuple-struct
                    // constructors can, and resolve like calls — fine.
                    let mut name = t.text.as_str();
                    // A method call (`recv.name(...)`) can only land on a
                    // `self`-taking definition; without that restriction
                    // ubiquitous adapter names (`.map`, `.filter`,
                    // `.merge`) would connect every iterator chain to
                    // same-named free functions.
                    let is_method = i > 0 && stmt.toks[i - 1].text == ".";
                    // Unalias a bare call through `use x::y as name`.
                    if let Some(full) = imports.get(name) {
                        if let Some(last) = full.rsplit("::").next() {
                            name = last;
                        }
                    }
                    if let Some(defs) = by_name.get(name) {
                        for &d in defs {
                            if d != id
                                && (!is_method
                                    || fns[d].params.first().map(String::as_str) == Some("self"))
                            {
                                targets.insert(d);
                            }
                        }
                    }
                }
            }
            callees[id] = targets.into_iter().collect();
        }

        let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (src, outs) in callees.iter().enumerate() {
            for &dst in outs {
                callers[dst].push(src);
            }
        }
        CallGraph {
            fns,
            callees,
            callers,
        }
    }

    /// Shortest call chain from `from` to `to` (inclusive), following
    /// caller→callee edges. `None` when unreachable.
    pub fn chain(&self, from: FnId, to: FnId) -> Option<Vec<FnId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen: BTreeSet<FnId> = BTreeSet::from([from]);
        while let Some(cur) = queue.pop_front() {
            for &next in &self.callees[cur] {
                if seen.insert(next) {
                    prev.insert(next, cur);
                    if next == to {
                        let mut path = vec![to];
                        let mut at = to;
                        while let Some(&p) = prev.get(&at) {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(name, src)| model_file(name, src))
            .collect();
        CallGraph::build(&models)
    }

    fn id(g: &CallGraph, name: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn resolves_cross_file_calls_by_name() {
        let g = graph(&[
            ("a.rs", "fn top() { mid(1); }\n"),
            (
                "b.rs",
                "fn mid(x: u64) -> u64 { leaf(x) }\nfn leaf(x: u64) -> u64 { x }\n",
            ),
        ]);
        let (top, mid, leaf) = (id(&g, "top"), id(&g, "mid"), id(&g, "leaf"));
        assert_eq!(g.callees[top], vec![mid]);
        assert_eq!(g.callees[mid], vec![leaf]);
        assert_eq!(g.callers[leaf], vec![mid]);
        assert_eq!(g.chain(top, leaf), Some(vec![top, mid, leaf]));
    }

    #[test]
    fn method_calls_resolve_to_all_same_named_impls() {
        let g = graph(&[(
            "a.rs",
            "\
impl A { fn poll(&self) {} }
impl B { fn poll(&self) {} }
fn driver(a: &A) { a.poll(); }
",
        )]);
        let driver = id(&g, "driver");
        // Conservative: both same-named impls are assumed reachable.
        assert_eq!(g.callees[driver].len(), 2);
    }

    #[test]
    fn aliased_imports_unalias_before_resolution() {
        let g = graph(&[
            (
                "a.rs",
                "use crate::b::real_name as rn;\nfn caller() { rn(); }\n",
            ),
            ("b.rs", "fn real_name() {}\n"),
        ]);
        assert_eq!(g.callees[id(&g, "caller")], vec![id(&g, "real_name")]);
    }

    #[test]
    fn recursion_and_cycles_are_representable() {
        let g = graph(&[("a.rs", "fn ping() { pong(); }\nfn pong() { ping(); }\n")]);
        let (ping, pong) = (id(&g, "ping"), id(&g, "pong"));
        assert_eq!(g.callees[ping], vec![pong]);
        assert_eq!(g.callees[pong], vec![ping]);
        assert_eq!(g.chain(ping, pong), Some(vec![ping, pong]));
    }
}
