//! CLI entry point for `textmr-lint`.
//!
//! Modes:
//!
//! * `textmr-lint --workspace [--root DIR]` — run the source lints over
//!   every workspace `.rs` file (default root: the current directory).
//! * `textmr-lint --workspace --fix [--reason "<text>"] [--root DIR]` —
//!   same scan, but rewrite each finding site with an
//!   `allow(<rule>, reason = "...")` pragma stub instead of reporting
//!   (`TODO` when no `--reason` is given).
//! * `textmr-lint --trace FILE...` — audit exported Chrome-format traces
//!   with the tiling checks and the happens-before race detector.
//! * `textmr-lint --list-rules` — print the rule catalogue.
//!
//! Exit status: `0` all checks clean, `1` diagnostics reported, `2` usage
//! or I/O error. CI keys on this.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use textmr_lint::fix::{fix_workspace, DEFAULT_REASON};
use textmr_lint::rules::Rule;
use textmr_lint::trace_audit::audit_trace_file;
use textmr_lint::workspace::scan_workspace;

const USAGE: &str = "\
textmr-lint: determinism audit for the textmr workspace

USAGE:
    textmr-lint --workspace [--root DIR]   lint workspace sources
    textmr-lint --workspace --fix          insert pragma stubs at finding sites
        [--reason \"<text>\"]                pragma rationale (default: TODO)
    textmr-lint --trace FILE...            happens-before audit of exported traces
    textmr-lint --list-rules               print the rule catalogue

Exit status: 0 clean, 1 diagnostics found, 2 usage/I-O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }

    let mut workspace = false;
    let mut fix = false;
    let mut list_rules = false;
    let mut reason: Option<String> = None;
    let mut root = PathBuf::from(".");
    let mut traces: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fix" => fix = true,
            "--list-rules" => list_rules = true,
            "--reason" => match it.next() {
                Some(text) if !text.contains('"') && !text.contains('\n') => {
                    reason = Some(text);
                }
                Some(_) => {
                    eprintln!("error: --reason must not contain `\"` or newlines\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --reason needs a text argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--trace" => {
                let mut got = false;
                for f in it.by_ref() {
                    traces.push(PathBuf::from(f));
                    got = true;
                }
                if !got {
                    eprintln!("error: --trace needs at least one file\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace && !list_rules && traces.is_empty() {
        eprintln!("error: nothing to do\n{USAGE}");
        return ExitCode::from(2);
    }
    if fix && !workspace {
        eprintln!("error: --fix only applies to --workspace\n{USAGE}");
        return ExitCode::from(2);
    }
    if reason.is_some() && !fix {
        eprintln!("error: --reason only applies to --fix\n{USAGE}");
        return ExitCode::from(2);
    }

    if list_rules {
        for r in Rule::ALL {
            println!("{:<32} {}", r.name(), r.summary());
        }
    }

    let mut findings = 0usize;

    if workspace && fix {
        let reason = reason.as_deref().unwrap_or(DEFAULT_REASON);
        match fix_workspace(&root, reason) {
            Ok(fixed) => {
                let stubs: usize = fixed.iter().map(|f| f.stubs).sum();
                for f in &fixed {
                    println!("{}: {} pragma stub(s) inserted", f.rel, f.stubs);
                }
                if reason == DEFAULT_REASON {
                    eprintln!(
                        "textmr-lint: --fix inserted {stubs} stub(s) in {} file(s); \
                         every `reason = \"TODO\"` still owes a rationale",
                        fixed.len()
                    );
                } else {
                    eprintln!(
                        "textmr-lint: --fix inserted {stubs} stub(s) in {} file(s) \
                         with reason \"{reason}\"",
                        fixed.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("error: --fix failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else if workspace {
        match scan_workspace(&root) {
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                findings += diags.len();
                if diags.is_empty() {
                    eprintln!("textmr-lint: workspace clean ({})", root.display());
                }
            }
            Err(e) => {
                eprintln!("error: workspace scan failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for path in &traces {
        match audit_trace_file(path) {
            Ok(summary) => eprintln!("textmr-lint: {summary}"),
            Err(report) => {
                println!("{report}");
                findings += 1;
            }
        }
    }

    if findings > 0 {
        eprintln!("textmr-lint: {findings} finding(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
