//! CLI entry point for `textmr-lint`.
//!
//! Modes:
//!
//! * `textmr-lint --workspace [--root DIR]` — run the source lints over
//!   every workspace `.rs` file (default root: the current directory).
//! * `textmr-lint --workspace --fix [--reason "<text>"] [--root DIR]` —
//!   same scan, but rewrite each finding site with an
//!   `allow(<rule>, reason = "...")` pragma stub instead of reporting
//!   (`TODO` when no `--reason` is given).
//! * `textmr-lint --trace FILE...` — audit exported Chrome-format traces
//!   with the tiling checks and the happens-before race detector.
//! * `textmr-lint --list-rules` — print the rule catalogue.
//! * `--sarif FILE` — also write the findings as a SARIF 2.1.0 log.
//! * `--baseline FILE` — gate against a committed findings baseline:
//!   findings not in the baseline fail; stale baseline entries warn.
//! * `textmr-lint --validate-sarif FILE...` — structurally validate SARIF
//!   logs (CI proves the artifact it uploads is well-formed).
//!
//! Exit status: `0` all checks clean, `1` diagnostics reported, `2` usage
//! or I/O error. CI keys on this.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use textmr_lint::fix::{fix_workspace, DEFAULT_REASON};
use textmr_lint::rules::Rule;
use textmr_lint::sarif;
use textmr_lint::trace_audit::audit_trace_file;
use textmr_lint::workspace::audit_workspace;

const USAGE: &str = "\
textmr-lint: determinism audit for the textmr workspace

USAGE:
    textmr-lint --workspace [--root DIR]   lint workspace sources (token + flow rules)
        [--sarif FILE]                     also write a SARIF 2.1.0 log
        [--baseline FILE]                  gate against a committed findings baseline
    textmr-lint --workspace --fix          insert pragma stubs at finding sites
        [--reason \"<text>\"]                pragma rationale (default: TODO)
    textmr-lint --trace FILE...            happens-before audit of exported traces
    textmr-lint --validate-sarif FILE...   structurally validate SARIF logs
    textmr-lint --list-rules               print the rule catalogue

Exit status: 0 clean, 1 diagnostics found, 2 usage/I-O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }

    let mut workspace = false;
    let mut fix = false;
    let mut list_rules = false;
    let mut reason: Option<String> = None;
    let mut root = PathBuf::from(".");
    let mut traces: Vec<PathBuf> = Vec::new();
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut validate: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fix" => fix = true,
            "--list-rules" => list_rules = true,
            "--sarif" => match it.next() {
                Some(f) => sarif_out = Some(PathBuf::from(f)),
                None => {
                    eprintln!("error: --sarif needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(f) => baseline = Some(PathBuf::from(f)),
                None => {
                    eprintln!("error: --baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--validate-sarif" => {
                let mut got = false;
                for f in it.by_ref() {
                    validate.push(PathBuf::from(f));
                    got = true;
                }
                if !got {
                    eprintln!("error: --validate-sarif needs at least one file\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            "--reason" => match it.next() {
                Some(text) if !text.contains('"') && !text.contains('\n') => {
                    reason = Some(text);
                }
                Some(_) => {
                    eprintln!("error: --reason must not contain `\"` or newlines\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --reason needs a text argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--trace" => {
                let mut got = false;
                for f in it.by_ref() {
                    traces.push(PathBuf::from(f));
                    got = true;
                }
                if !got {
                    eprintln!("error: --trace needs at least one file\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace && !list_rules && traces.is_empty() && validate.is_empty() {
        eprintln!("error: nothing to do\n{USAGE}");
        return ExitCode::from(2);
    }
    if fix && !workspace {
        eprintln!("error: --fix only applies to --workspace\n{USAGE}");
        return ExitCode::from(2);
    }
    if reason.is_some() && !fix {
        eprintln!("error: --reason only applies to --fix\n{USAGE}");
        return ExitCode::from(2);
    }
    if (sarif_out.is_some() || baseline.is_some()) && (!workspace || fix) {
        eprintln!("error: --sarif/--baseline only apply to a --workspace scan\n{USAGE}");
        return ExitCode::from(2);
    }

    if list_rules {
        for r in Rule::ALL {
            let kind = if r.flow_scoped() { "flow" } else { "token" };
            println!("{:<32} {:<6} {}", r.name(), kind, r.summary());
        }
    }

    let mut findings = 0usize;

    if workspace && fix {
        let reason = reason.as_deref().unwrap_or(DEFAULT_REASON);
        match fix_workspace(&root, reason) {
            Ok(fixed) => {
                let stubs: usize = fixed.iter().map(|f| f.stubs).sum();
                for f in &fixed {
                    println!("{}: {} pragma stub(s) inserted", f.rel, f.stubs);
                }
                if reason == DEFAULT_REASON {
                    eprintln!(
                        "textmr-lint: --fix inserted {stubs} stub(s) in {} file(s); \
                         every `reason = \"TODO\"` still owes a rationale",
                        fixed.len()
                    );
                } else {
                    eprintln!(
                        "textmr-lint: --fix inserted {stubs} stub(s) in {} file(s) \
                         with reason \"{reason}\"",
                        fixed.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("error: --fix failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else if workspace {
        // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "the lint times itself for the CI wall-time report; nothing here touches a virtual schedule")
        // textmr-lint: allow(wall-clock-in-virtual-path, reason = "lint wall-time self-report; the lint has no virtual path")
        let started = std::time::Instant::now();
        match audit_workspace(&root) {
            Ok(audit) => {
                // Wall-time report: the lint must stay cheap enough to run
                // on every commit; CI records this line.
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let keys = audit.baseline_keys();
                if let Some(path) = &sarif_out {
                    let log = sarif::to_sarif(&audit.diagnostics, &audit.flows);
                    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    if let Err(e) = std::fs::write(path, &log) {
                        eprintln!("error: cannot write SARIF to {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    eprintln!("textmr-lint: SARIF written to {}", path.display());
                }
                let diags = audit.into_diagnostics();
                match &baseline {
                    Some(path) => {
                        let text = match std::fs::read_to_string(path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("error: cannot read baseline {}: {e}", path.display());
                                return ExitCode::from(2);
                            }
                        };
                        let diff = sarif::diff_baseline(&keys, &sarif::parse_baseline(&text));
                        for d in &diags {
                            let key = sarif::baseline_key(d);
                            if diff.regressions.contains(&key) {
                                println!("{d}");
                            }
                        }
                        for stale in &diff.stale {
                            eprintln!(
                                "textmr-lint: warning: stale baseline entry {stale} \
                                 (finding no longer present; shrink the baseline)"
                            );
                        }
                        findings += diff.regressions.len();
                        if diff.regressions.is_empty() {
                            eprintln!(
                                "textmr-lint: workspace clean vs baseline ({}, {} \
                                 baselined, {:.0} ms)",
                                root.display(),
                                keys.len(),
                                wall_ms
                            );
                        }
                    }
                    None => {
                        for d in &diags {
                            println!("{d}");
                        }
                        findings += diags.len();
                        if diags.is_empty() {
                            eprintln!(
                                "textmr-lint: workspace clean ({}, {:.0} ms)",
                                root.display(),
                                wall_ms
                            );
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: workspace scan failed under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for path in &validate {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| sarif::validate_sarif(&t))
        {
            Ok(summary) => eprintln!(
                "textmr-lint: {} is valid SARIF 2.1.0 ({} result(s), {} rule(s))",
                path.display(),
                summary.results,
                summary.rules
            ),
            Err(e) => {
                println!("{}: invalid SARIF: {e}", path.display());
                findings += 1;
            }
        }
    }

    for path in &traces {
        match audit_trace_file(path) {
            Ok(summary) => eprintln!("textmr-lint: {summary}"),
            Err(report) => {
                println!("{report}");
                findings += 1;
            }
        }
    }

    if findings > 0 {
        eprintln!("textmr-lint: {findings} finding(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
