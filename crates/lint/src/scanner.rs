//! Per-file scanning: `#[cfg(test)]` masking, pragma handling, and rule
//! dispatch over the token stream produced by [`crate::lexer`].
//!
//! # Pragma grammar
//!
//! ```text
//! // textmr-lint: allow(<rule-name>, reason = "<non-empty string>")
//! ```
//!
//! A pragma suppresses findings of `<rule-name>` on its own line (trailing
//! comment) and on the immediately following line (standalone comment line).
//! File-scoped rules (`missing-crate-lints`) are suppressed by a pragma
//! anywhere in the file. The pragma engine raises its own meta-diagnostics:
//! `malformed-pragma` (marker present but not followed by the grammar),
//! `unknown-rule` (rule name not in the catalogue), `missing-reason`
//! (reason absent or empty — the pragma still suppresses, but CI fails
//! until the reason is written), and `unused-pragma` (nothing to suppress;
//! stale pragmas are noise that rots).

use std::collections::BTreeMap;

use crate::lexer::{lex, TokKind, Token};
use crate::rules::Rule;
use crate::Diagnostic;

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// A crate's `lib.rs`: code rules plus the full `missing-crate-lints`
    /// set (`forbid(unsafe_code)` + `deny(missing_docs)`).
    LibRoot,
    /// A binary root (`src/main.rs`, `src/bin/*.rs`): code rules plus
    /// `forbid(unsafe_code)`.
    BinRoot,
    /// Ordinary library/module source: code rules only.
    Code,
    /// Tests, benches, examples, fixtures: exempt. Harness code may time
    /// wall-clock and hash freely; it never feeds the virtual schedule.
    TestCode,
}

/// The comment marker that introduces a suppression pragma.
pub const PRAGMA_MARK: &str = "textmr-lint:";

struct Pragma {
    rule: Rule,
    line: u32,
    used: bool,
}

/// Scan one file's source text and return its diagnostics, sorted by line.
pub fn scan_file(file: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    if class == FileClass::TestCode {
        return Vec::new();
    }
    let toks = lex(src);
    let mask = test_mask(&toks);

    let mut out = Vec::new();
    let mut pragmas = collect_pragmas(file, &toks, &mask, &mut out);

    // Code tokens grouped by line, with `#[cfg(test)]` regions dropped.
    let mut by_line: BTreeMap<u32, Vec<Token<'_>>> = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Comment || mask[i] {
            continue;
        }
        by_line.entry(t.line).or_default().push(*t);
    }

    let mut findings = Vec::new();
    for (line, line_toks) in &by_line {
        for (rule, message) in line_findings(line_toks) {
            findings.push((rule, *line, message));
        }
    }
    if matches!(class, FileClass::LibRoot | FileClass::BinRoot) {
        for message in crate_lint_findings(&toks, &mask, class) {
            findings.push((Rule::MissingCrateLints, 1, message));
        }
    }

    for (rule, line, message) in findings {
        let hit = pragmas.iter_mut().find(|p| {
            p.rule == rule && (rule.file_scoped() || p.line == line || p.line + 1 == line)
        });
        match hit {
            Some(p) => p.used = true,
            None => out.push(Diagnostic {
                file: file.to_string(),
                line,
                rule: rule.name(),
                message,
            }),
        }
    }
    for p in &pragmas {
        // Flow-rule pragmas are consumed by the interprocedural taint pass
        // (they sanitize whole flows through the enclosing function), so
        // the line scanner cannot judge them unused.
        if p.rule.flow_scoped() {
            continue;
        }
        if !p.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: p.line,
                rule: "unused-pragma",
                message: format!(
                    "`allow({})` suppresses nothing on line {} or {}",
                    p.rule.name(),
                    p.line,
                    p.line + 1
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Mark every token that belongs to a `#[cfg(test)]`/`#[test]`/`#[bench]`
/// gated item (the attribute itself, any stacked attributes, and the item
/// body through its closing brace or terminating semicolon). Comments
/// inside the region are masked too, so pragmas in test code are inert.
/// Shared with the item model ([`crate::model`]): functions in gated
/// regions never enter the call graph.
pub(crate) fn test_mask(toks: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let idx: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut p = 0usize;
    while p < idx.len() {
        if toks[idx[p]].text != "#" || idx.get(p + 1).map(|&i| toks[i].text) != Some("[") {
            p += 1;
            continue;
        }
        let attr_start = p;
        let (q, gated) = read_attr(toks, &idx, p);
        if !gated {
            p = q;
            continue;
        }
        // Skip any further stacked attributes.
        let mut r = q;
        while r + 1 < idx.len() && toks[idx[r]].text == "#" && toks[idx[r + 1]].text == "[" {
            let (nr, _) = read_attr(toks, &idx, r);
            r = nr;
        }
        // The item: runs to a `;` or `,` outside any nesting, through the
        // closing brace of its first top-level brace block, or up to (not
        // including) a closer that belongs to an enclosing scope — the
        // latter bounds gated struct fields / enum variants / last items
        // in a block.
        let mut brace = 0i32;
        let mut paren = 0i32;
        let mut end = r;
        while end < idx.len() {
            match toks[idx[end]].text {
                "{" => brace += 1,
                "}" => {
                    if brace == 0 {
                        break;
                    }
                    brace -= 1;
                    if brace == 0 {
                        end += 1;
                        break;
                    }
                }
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    if paren == 0 && brace == 0 {
                        break;
                    }
                    paren -= 1;
                }
                ";" | "," if brace == 0 && paren <= 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        let lo = idx[attr_start];
        let hi = idx[(end.max(attr_start + 1) - 1).min(idx.len() - 1)];
        for m in mask.iter_mut().take(hi + 1).skip(lo) {
            *m = true;
        }
        p = end;
    }
    mask
}

/// Read the attribute starting at non-comment index `p` (which points at
/// `#`). Returns `(index one past the closing bracket, is-test-gated)`.
fn read_attr(toks: &[Token<'_>], idx: &[usize], p: usize) -> (usize, bool) {
    let mut q = p + 2;
    let mut depth = 1i32;
    let mut first_ident: Option<&str> = None;
    let mut has_test = false;
    let mut has_not = false;
    while q < idx.len() && depth > 0 {
        let t = &toks[idx[q]];
        match t.text {
            "[" | "(" => depth += 1,
            "]" | ")" => depth -= 1,
            _ => {
                if t.kind == TokKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(t.text);
                    }
                    match t.text {
                        "test" | "bench" => has_test = true,
                        "not" => has_not = true,
                        _ => {}
                    }
                }
            }
        }
        q += 1;
    }
    let gated = match first_ident {
        // `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but not
        // `#[cfg(not(test))]`, which gates *non*-test builds.
        Some("cfg") => has_test && !has_not,
        Some("test") | Some("bench") => true,
        _ => false,
    };
    (q, gated)
}

/// Extract well-formed pragmas from unmasked comments, raising
/// `malformed-pragma` / `unknown-rule` / `missing-reason` along the way.
fn collect_pragmas(
    file: &str,
    toks: &[Token<'_>],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment || mask[i] {
            continue;
        }
        // The marker must *lead* the comment (after one comment sigil) to
        // count as a pragma; prose that merely mentions the grammar — e.g.
        // these docs — stays inert.
        let lead = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !lead.starts_with(PRAGMA_MARK) {
            continue;
        }
        let pos = t.text.find(PRAGMA_MARK).expect("marker leads the comment");
        let meta = |rule: &'static str, message: String| Diagnostic {
            file: file.to_string(),
            line: t.line,
            rule,
            message,
        };
        let rest = t.text[pos + PRAGMA_MARK.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            out.push(meta(
                "malformed-pragma",
                format!("expected `allow(<rule>, reason = \"...\")` after `{PRAGMA_MARK}`"),
            ));
            continue;
        };
        let name_len = body
            .bytes()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == b'-')
            .count();
        let name = &body[..name_len];
        if name.is_empty() {
            out.push(meta(
                "malformed-pragma",
                "pragma names no rule; expected `allow(<rule>, ...)`".to_string(),
            ));
            continue;
        }
        let Some(rule) = Rule::by_name(name) else {
            out.push(meta(
                "unknown-rule",
                format!("pragma names unknown rule `{name}`"),
            ));
            continue;
        };
        let reason_ok = body[name_len..]
            .trim_start()
            .strip_prefix(',')
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix("reason"))
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'))
            .is_some_and(|s| s.find('"').is_some_and(|close| close > 0));
        if !reason_ok {
            // The pragma still suppresses — one actionable diagnostic, not
            // two — but CI stays red until the reason is written down.
            out.push(meta(
                "missing-reason",
                format!("pragma for `{name}` must carry a non-empty `reason = \"...\"`"),
            ));
        }
        pragmas.push(Pragma {
            rule,
            line: t.line,
            used: false,
        });
    }
    pragmas
}

const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const UNORDERED_TYPES: [&str; 4] = ["HashMap", "HashSet", "FnvHashMap", "FnvHashSet"];
const WIDE_SIGNALS: [&str; 4] = ["u128", "i128", "as_nanos", "as_micros"];

/// True when the line contains evidence of 128-bit arithmetic, either as an
/// identifier (`as u128`, `.as_nanos()`) or a literal suffix (`1u128`).
fn line_is_widened(line_toks: &[Token<'_>]) -> bool {
    line_toks.iter().any(|t| match t.kind {
        TokKind::Ident => WIDE_SIGNALS.contains(&t.text),
        TokKind::Literal => t.text.ends_with("128"),
        _ => false,
    })
}

/// Run the per-line rules over one line's code tokens. At most one finding
/// per rule per line.
fn line_findings(line_toks: &[Token<'_>]) -> Vec<(Rule, String)> {
    let mut out = Vec::new();

    if let Some(t) = line_toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && WALL_CLOCK_TYPES.contains(&t.text))
    {
        out.push((
            Rule::WallClock,
            format!(
                "wall-clock type `{}` in virtual-time code; derive time from \
                 the cost model, or annotate why host time is safe here",
                t.text
            ),
        ));
    }

    if let Some(t) = line_toks.iter().find(|t| {
        t.kind == TokKind::Ident && matches!(t.text, "sort_unstable_by" | "sort_unstable_by_key")
    }) {
        out.push((
            Rule::SortUnstableKeyRuns,
            format!(
                "`{}` may reorder key-equal runs (unstable across std \
                 versions); use the stable sort, break every tie in the \
                 comparator, or annotate why equal keys cannot coexist",
                t.text
            ),
        ));
    }

    if let Some(t) = line_toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && UNORDERED_TYPES.contains(&t.text))
    {
        out.push((
            Rule::UnorderedIteration,
            format!(
                "`{}` has nondeterministic iteration order; use BTreeMap/\
                 BTreeSet, sort before use, or annotate why order never leaks",
                t.text
            ),
        ));
    }

    let widened = line_is_widened(line_toks);

    if widened {
        let lossy = line_toks.windows(2).any(|w| {
            w[0].kind == TokKind::Ident
                && w[0].text == "as"
                && w[1].kind == TokKind::Ident
                && matches!(w[1].text, "u64" | "i64")
        });
        if lossy {
            out.push((
                Rule::LossyVirtualTimeCast,
                "`as u64`/`as i64` on 128-bit virtual-time arithmetic \
                 truncates silently; use try_from, or annotate the bound \
                 that makes the narrowing exact"
                    .to_string(),
            ));
        }
    }

    if !widened {
        let is_ns =
            |t: &Token<'_>| t.kind == TokKind::Ident && t.text.ends_with("_ns") && t.text.len() > 3;
        let mut acc = None;
        for i in 0..line_toks.len().saturating_sub(1) {
            let (a, b) = (&line_toks[i], &line_toks[i + 1]);
            if is_ns(a) && b.kind == TokKind::Punct && matches!(b.text, "+=" | "-=" | "*=" | "*") {
                acc = Some(format!("`{} {}`", a.text, b.text));
                break;
            }
            // `x * y_ns` is multiplication only when the `*` is binary;
            // after `(`/`=`/`;`/`,`/`&`/start-of-line it is a deref.
            if is_ns(b) && a.kind == TokKind::Punct && a.text == "*" {
                let binary = i > 0
                    && (matches!(line_toks[i - 1].text, ")" | "]")
                        || (matches!(line_toks[i - 1].kind, TokKind::Ident | TokKind::Literal)
                            && !matches!(
                                line_toks[i - 1].text,
                                "return"
                                    | "in"
                                    | "as"
                                    | "break"
                                    | "else"
                                    | "match"
                                    | "if"
                                    | "while"
                            )));
                if binary {
                    acc = Some(format!("`* {}`", b.text));
                    break;
                }
            }
        }
        if let Some(what) = acc {
            out.push((
                Rule::UncheckedVirtualAccumulator,
                format!(
                    "{what} can wrap; use saturating_*/checked_* (or widen \
                     to u128) on virtual-time accumulators"
                ),
            ));
        }
    }

    out
}

/// Check the crate-root inner-attribute set. Returns one message per
/// missing attribute.
fn crate_lint_findings(toks: &[Token<'_>], mask: &[bool], class: FileClass) -> Vec<String> {
    let idx: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|&(i, t)| t.kind != TokKind::Comment && !mask[i])
        .map(|(i, _)| i)
        .collect();
    let mut forbid_unsafe = false;
    let mut deny_docs = false;
    let mut p = 0usize;
    while p + 3 < idx.len() {
        if toks[idx[p]].text == "#" && toks[idx[p + 1]].text == "!" && toks[idx[p + 2]].text == "["
        {
            let which = toks[idx[p + 3]].text;
            let mut q = p + 4;
            let mut depth = 1i32;
            let mut items: Vec<&str> = Vec::new();
            while q < idx.len() && depth > 0 {
                let t = &toks[idx[q]];
                match t.text {
                    "[" | "(" => depth += 1,
                    "]" | ")" => depth -= 1,
                    _ => {
                        if t.kind == TokKind::Ident {
                            items.push(t.text);
                        }
                    }
                }
                q += 1;
            }
            if which == "forbid" && items.contains(&"unsafe_code") {
                forbid_unsafe = true;
            }
            if matches!(which, "deny" | "forbid") && items.contains(&"missing_docs") {
                deny_docs = true;
            }
            p = q;
            continue;
        }
        p += 1;
    }
    let mut out = Vec::new();
    if !forbid_unsafe {
        out.push("crate root is missing `#![forbid(unsafe_code)]`".to_string());
    }
    if class == FileClass::LibRoot && !deny_docs {
        out.push("library root is missing `#![deny(missing_docs)]`".to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str, class: FileClass) -> Vec<&'static str> {
        scan_file("t.rs", src, class)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(!rules_fired(src, FileClass::Code).is_empty());
        assert!(rules_fired(src, FileClass::TestCode).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_masked() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let m: HashMap<u8, u8> = HashMap::new(); let _ = m; }
}
";
        assert!(rules_fired(src, FileClass::Code).is_empty());
    }

    #[test]
    fn cfg_test_field_does_not_mask_the_rest_of_the_file() {
        let src = "\
struct S {
    a: u8,
    #[cfg(test)]
    probe: u8,
    b: u8,
}
use std::time::Instant;
";
        assert_eq!(
            rules_fired(src, FileClass::Code),
            ["wall-clock-in-virtual-path"]
        );
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nuse std::time::Instant;\n";
        assert_eq!(
            rules_fired(src, FileClass::Code),
            ["wall-clock-in-virtual-path"]
        );
    }

    #[test]
    fn trailing_and_preceding_pragmas_suppress() {
        let trailing = "use std::time::Instant; // textmr-lint: allow(wall-clock-in-virtual-path, reason = \"measured-op site\")\n";
        assert!(rules_fired(trailing, FileClass::Code).is_empty());
        let preceding = "// textmr-lint: allow(unordered-iteration, reason = \"never iterated\")\nuse std::collections::HashMap;\n";
        assert!(rules_fired(preceding, FileClass::Code).is_empty());
    }

    #[test]
    fn pragma_meta_diagnostics() {
        let unknown = "// textmr-lint: allow(no-such-rule, reason = \"x\")\n";
        assert_eq!(rules_fired(unknown, FileClass::Code), ["unknown-rule"]);
        let missing = "use std::time::Instant; // textmr-lint: allow(wall-clock-in-virtual-path)\n";
        assert_eq!(rules_fired(missing, FileClass::Code), ["missing-reason"]);
        let unused = "// textmr-lint: allow(wall-clock-in-virtual-path, reason = \"nothing here\")\nfn f() {}\n";
        assert_eq!(rules_fired(unused, FileClass::Code), ["unused-pragma"]);
        let malformed = "// textmr-lint: deny(everything)\n";
        assert_eq!(
            rules_fired(malformed, FileClass::Code),
            ["malformed-pragma"]
        );
    }

    #[test]
    fn lossy_cast_requires_a_wide_signal() {
        let lossy = "let ns = (x as u128 * 7 / 3) as u64;\n";
        assert_eq!(
            rules_fired(lossy, FileClass::Code),
            ["lossy-virtual-time-cast"]
        );
        let fine = "let n = big as u64;\n";
        assert!(rules_fired(fine, FileClass::Code).is_empty());
    }

    #[test]
    fn accumulator_rule_sees_compound_assign_and_bare_mul() {
        assert_eq!(
            rules_fired("self.total_ns += delta;\n", FileClass::Code),
            ["unchecked-virtual-accumulator"]
        );
        assert_eq!(
            rules_fired("let t = base_ns * factor;\n", FileClass::Code),
            ["unchecked-virtual-accumulator"]
        );
        // Widened arithmetic is exempt: u128 cannot overflow at model scale.
        assert!(rules_fired("let t = base_ns as u128 * factor;\n", FileClass::Code).is_empty());
        // Saturating forms are the blessed spelling.
        assert!(rules_fired(
            "self.total_ns = self.total_ns.saturating_add(delta);\n",
            FileClass::Code
        )
        .is_empty());
    }

    #[test]
    fn sort_unstable_rule_spares_the_keyless_form() {
        assert_eq!(
            rules_fired("v.sort_unstable_by_key(|s| s.start);\n", FileClass::Code),
            ["sort-unstable-key-runs"]
        );
        assert_eq!(
            rules_fired(
                "v.sort_unstable_by(|a, b| a.0.cmp(&b.0));\n",
                FileClass::Code
            ),
            ["sort-unstable-key-runs"]
        );
        assert!(rules_fired("v.sort_unstable();\n", FileClass::Code).is_empty());
        assert!(rules_fired("v.sort_by_key(|s| s.start);\n", FileClass::Code).is_empty());
    }

    #[test]
    fn crate_root_attribute_checks() {
        let bare = "//! Docs.\nfn f() {}\n";
        assert_eq!(
            rules_fired(bare, FileClass::LibRoot),
            ["missing-crate-lints", "missing-crate-lints"]
        );
        assert_eq!(
            rules_fired(bare, FileClass::BinRoot),
            ["missing-crate-lints"]
        );
        let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\nfn f() {}\n";
        assert!(rules_fired(good, FileClass::LibRoot).is_empty());
        // `deny(unsafe_code)` is weaker than forbid and does not count.
        let weak = "#![deny(unsafe_code)]\n#![deny(missing_docs)]\nfn f() {}\n";
        assert_eq!(
            rules_fired(weak, FileClass::LibRoot),
            ["missing-crate-lints"]
        );
    }

    #[test]
    fn mentions_inside_comments_and_strings_do_not_fire() {
        let src = "// HashMap and Instant discussed here\nlet s = \"SystemTime\";\n";
        assert!(rules_fired(src, FileClass::Code).is_empty());
    }
}
