#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `textmr-serve` — a multi-tenant job service over the deterministic
//! MapReduce engine.
//!
//! A queue of heterogeneous jobs (WordCount, grep, inverted index,
//! multi-round prefix sums, …) from competing tenants is admitted onto
//! **one** shared virtual cluster:
//!
//! * **Admission control** — requests are admitted in `(arrival,
//!   submission)` order; a tenant over its job quota, an unknown tenant,
//!   or a plan using speculative execution is rejected with a named
//!   [`AdmissionError`] *before* any work runs (so a rejected job leaves
//!   no temp-dir residue).
//! * **Weighted fair share** — each admitted job first runs solo through
//!   the engine with tracing on, fixing its attempt structure and
//!   measured virtual durations; the [`sched`] multiplexer then re-places
//!   all jobs' task chains onto shared slot tables, granting each slot to
//!   the tenant with the least weighted service. The interleaving is a
//!   pure function of the solo traces — replayable, and race-checked as
//!   one merged multi-job trace whose entries carry their job id.
//! * **S3-FIFO map-output cache** — an optional byte-budgeted
//!   [`cache::S3FifoCache`] shared across jobs: repeated jobs over the
//!   same `(split, map function, config)` key replay cached map outputs
//!   at a flat virtual lookup cost, shrinking both solo and served
//!   makespans. Hit/miss decisions depend only on the admitted key
//!   sequence and payload bytes, so they too replay identically.
//!
//! See `DESIGN.md` §3h for the determinism argument and the modeling
//! caveats (durations are measured, contention delays but never
//! re-prices work).

pub mod cache;
pub mod sched;
pub mod workload;

use std::fmt;
use std::io;
use std::sync::Arc;

pub use cache::{CacheStats, S3FifoCache};

use textmr_engine::cache::{MapCacheConfig, MapOutputCache};
use textmr_engine::cluster::ClusterConfig;
use textmr_engine::dag::{run_dag, StageOutputs};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::JobDag;
use textmr_engine::metrics::{DagProfile, VNanos};
use textmr_engine::trace::JobTrace;

use sched::{merge_traces, multiplex, JobPlan, Multiplexed};

/// One tenant of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Display name (profiles and bench tables).
    pub name: String,
    /// Fair-share weight; clamped to ≥ 1. A tenant with weight 3 is
    /// granted three times the slot time of a weight-1 tenant while both
    /// have backlog.
    pub weight: u64,
    /// Admission quota: maximum jobs admitted per serve call. The
    /// quota-exceeding submission is rejected, not queued.
    pub max_jobs: usize,
}

/// One submitted job: a DAG plan plus its tenancy and arrival metadata.
pub struct JobRequest {
    /// Index into the tenant roster.
    pub tenant: usize,
    /// Virtual arrival time: no attempt of this job may start earlier.
    pub arrival: VNanos,
    /// Display name (bench tables, rejection reports).
    pub name: String,
    /// The job's stage plan. Tracing is forced on by the service; the
    /// plan must not enable speculation (rejected at admission).
    pub plan: JobDag,
    /// Cache identity: a prefix encoding the map function and every
    /// output-affecting knob. `Some` opts the job's map tasks into the
    /// shared S3-FIFO cache (when the service runs one); requests with
    /// the same prefix over the same splits share cached outputs.
    pub cache_prefix: Option<String>,
}

/// Why a submission was turned away at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The request named a tenant outside the roster.
    UnknownTenant {
        /// The out-of-range tenant index.
        tenant: usize,
    },
    /// The tenant already admitted `quota` jobs this serve call.
    QuotaExceeded {
        /// The tenant at quota.
        tenant: usize,
        /// The tenant's `max_jobs`.
        quota: usize,
    },
    /// The plan enables speculative execution, which the serve
    /// multiplexer cannot replay (a winning backup moves a task between
    /// nodes, invalidating the solo schedule the fair-share placement
    /// replays).
    SpeculationUnsupported {
        /// The submitting tenant.
        tenant: usize,
        /// The rejected job's display name.
        job: String,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownTenant { tenant } => {
                write!(f, "admission rejected: unknown tenant {tenant}")
            }
            AdmissionError::QuotaExceeded { tenant, quota } => write!(
                f,
                "admission rejected: tenant {tenant} is at its quota of {quota} job(s)"
            ),
            AdmissionError::SpeculationUnsupported { tenant, job } => write!(
                f,
                "admission rejected: job \"{job}\" of tenant {tenant} enables speculative \
                 execution, which textmr-serve does not support"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The service's shared map-output cache.
#[derive(Clone)]
pub struct ServeCacheConfig {
    /// The S3-FIFO cache shared by every admitted job that opts in.
    pub cache: Arc<S3FifoCache>,
    /// Flat deterministic virtual cost charged per cache hit.
    pub lookup_cost_ns: VNanos,
}

/// Service-level policy.
#[derive(Clone, Default)]
pub struct ServeConfig {
    /// Shared map-output cache; `None` serves every job cold.
    pub cache: Option<ServeCacheConfig>,
}

/// A submission that admission turned away. The job never ran: no solo
/// schedule, no temp directory, no cache traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedJob {
    /// Index of the submission in the original request vector.
    pub request: usize,
    /// The request's display name.
    pub name: String,
    /// The tenant index the request named (possibly out of range).
    pub tenant: usize,
    /// Why it was rejected.
    pub error: AdmissionError,
}

/// One admitted, completed job.
pub struct ServedJob {
    /// Serve job id (1-based, in admission order).
    pub job: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Display name.
    pub name: String,
    /// Virtual arrival time.
    pub arrival: VNanos,
    /// First attempt start on the shared cluster.
    pub start: VNanos,
    /// Completion time on the shared cluster.
    pub finish: VNanos,
    /// The job's makespan when it ran alone (its solo wall) — the
    /// contention-free baseline for `finish - arrival`.
    pub solo_makespan: VNanos,
    /// Final-stage `(key, value)` pairs, per partition — byte-identical
    /// to a solo run, by construction (the multiplexer only re-times).
    pub outputs: StageOutputs,
    /// Per-round profiles from the solo run.
    pub profile: DagProfile,
    /// The solo trace the multiplexer replayed.
    pub solo_trace: JobTrace,
    /// Map-cache hits this job scored.
    pub cache_hits: u64,
    /// Map-cache misses this job took.
    pub cache_misses: u64,
}

/// Per-tenant accounting for one serve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantUsage {
    /// Tenant index.
    pub tenant: usize,
    /// Display name.
    pub name: String,
    /// Fair-share weight (clamped).
    pub weight: u64,
    /// Map-slot virtual time granted.
    pub map_busy: VNanos,
    /// Reduce-slot virtual time granted.
    pub reduce_busy: VNanos,
    /// Jobs admitted.
    pub jobs_admitted: usize,
    /// Jobs rejected at admission.
    pub jobs_rejected: usize,
}

/// Aggregate accounting for one serve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeProfile {
    /// Virtual makespan of the interleaved schedule.
    pub wall: VNanos,
    /// Per-tenant usage, indexed by tenant.
    pub tenants: Vec<TenantUsage>,
    /// Final cache counters, when the service ran a cache.
    pub cache: Option<CacheStats>,
}

/// Everything one serve call produced.
pub struct ServeRun {
    /// Admitted jobs in admission (= job-id) order.
    pub jobs: Vec<ServedJob>,
    /// Rejected submissions, in admission-scan order.
    pub rejected: Vec<RejectedJob>,
    /// Aggregate accounting.
    pub profile: ServeProfile,
    /// The merged multi-job trace: every entry tagged with its job id,
    /// slot chains rebuilt across jobs — validates under
    /// [`JobTrace::check`] and the race checker.
    pub trace: JobTrace,
    /// The raw interleaved schedule (placement order, per-job windows,
    /// per-tenant shares) for fairness assertions and bench tables.
    pub schedule: Multiplexed,
}

/// Run the service: admit `requests` against `tenants`' quotas, execute
/// each admitted job solo (tracing on, shared cache installed), then
/// multiplex all of them onto one shared virtual cluster under weighted
/// fair share and merge the traces.
///
/// Rejections are reported in [`ServeRun::rejected`], not as an error;
/// `Err` is reserved for engine I/O failures.
pub fn serve(
    cluster: &ClusterConfig,
    tenants: &[TenantSpec],
    requests: Vec<JobRequest>,
    dfs: &SimDfs,
    cfg: &ServeConfig,
) -> io::Result<ServeRun> {
    // Admission order: arrival time, ties by submission index.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival, i));

    let mut admitted_count = vec![0usize; tenants.len()];
    let mut rejected_count = vec![0usize; tenants.len()];
    let mut rejected: Vec<RejectedJob> = Vec::new();
    let mut admitted: Vec<(usize, JobRequest)> = Vec::new();

    let mut requests: Vec<Option<JobRequest>> = requests.into_iter().map(Some).collect();
    for &ri in &order {
        let req = requests[ri].take().expect("each request admitted once");
        let reject = |error: AdmissionError| RejectedJob {
            request: ri,
            name: req.name.clone(),
            tenant: req.tenant,
            error,
        };
        if req.tenant >= tenants.len() {
            rejected.push(reject(AdmissionError::UnknownTenant { tenant: req.tenant }));
            continue;
        }
        if req.plan.stages.iter().any(|s| s.cfg.speculation.is_some()) {
            rejected_count[req.tenant] += 1;
            rejected.push(reject(AdmissionError::SpeculationUnsupported {
                tenant: req.tenant,
                job: req.name.clone(),
            }));
            continue;
        }
        let quota = tenants[req.tenant].max_jobs;
        if admitted_count[req.tenant] >= quota {
            rejected_count[req.tenant] += 1;
            rejected.push(reject(AdmissionError::QuotaExceeded {
                tenant: req.tenant,
                quota,
            }));
            continue;
        }
        admitted_count[req.tenant] += 1;
        admitted.push((ri, req));
    }

    // Solo runs, in admission order — the cache therefore sees the same
    // put sequence on every replay of the same admitted queue.
    let mut jobs: Vec<ServedJob> = Vec::with_capacity(admitted.len());
    let mut plans: Vec<JobPlan> = Vec::with_capacity(admitted.len());
    let mut solos: Vec<JobTrace> = Vec::with_capacity(admitted.len());
    for (ji, (_, mut req)) in admitted.into_iter().enumerate() {
        let job_id = ji + 1;
        for stage in req.plan.stages.iter_mut() {
            stage.cfg.trace = true;
            stage.cfg.map_cache = match (&cfg.cache, &req.cache_prefix) {
                (Some(sc), Some(prefix)) => {
                    let shared: Arc<dyn MapOutputCache> = Arc::clone(&sc.cache) as _;
                    Some(MapCacheConfig {
                        cache: shared,
                        key_prefix: prefix.clone(),
                        lookup_cost_ns: sc.lookup_cost_ns,
                    })
                }
                _ => None,
            };
        }
        let before = cfg.cache.as_ref().map(|sc| sc.cache.stats());
        let run = run_dag(cluster, &req.plan, dfs)?;
        let after = cfg.cache.as_ref().map(|sc| sc.cache.stats());
        let solo_trace = run
            .trace
            .ok_or_else(|| io::Error::other("serve forces tracing on, but no trace came back"))?;
        let plan = JobPlan::from_trace(job_id, req.tenant, req.arrival, &solo_trace)
            .map_err(io::Error::other)?;
        let (hits, misses) = match (before, after) {
            (Some(b), Some(a)) => (a.hits - b.hits, a.misses - b.misses),
            _ => (0, 0),
        };
        jobs.push(ServedJob {
            job: job_id,
            tenant: req.tenant,
            name: req.name,
            arrival: req.arrival,
            start: 0,
            finish: 0,
            solo_makespan: run.profile.wall,
            outputs: run.outputs,
            profile: run.profile,
            solo_trace,
            cache_hits: hits,
            cache_misses: misses,
        });
        plans.push(plan);
    }
    for j in &jobs {
        solos.push(j.solo_trace.clone());
    }

    let schedule = multiplex(
        cluster.nodes,
        cluster.map_slots_per_node,
        cluster.reduce_slots_per_node,
        tenants,
        &plans,
    );
    for (ji, w) in schedule.windows.iter().enumerate() {
        jobs[ji].start = w.start;
        jobs[ji].finish = w.finish;
    }
    let trace = merge_traces(&plans, &solos, &schedule);

    let tenants_usage = tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantUsage {
            tenant: t,
            name: spec.name.clone(),
            weight: spec.weight.max(1),
            map_busy: schedule.shares[t].map_busy,
            reduce_busy: schedule.shares[t].reduce_busy,
            jobs_admitted: admitted_count[t],
            jobs_rejected: rejected_count[t],
        })
        .collect();
    let profile = ServeProfile {
        wall: schedule.wall,
        tenants: tenants_usage,
        cache: cfg.cache.as_ref().map(|sc| sc.cache.stats()),
    };

    Ok(ServeRun {
        jobs,
        rejected,
        profile,
        trace,
        schedule,
    })
}
