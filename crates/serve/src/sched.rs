//! The multi-job multiplexer: re-places every admitted job's solo
//! schedule onto one shared virtual cluster under weighted fair share.
//!
//! ## Model
//!
//! Each admitted job first runs *solo* through the engine (tracing on),
//! which fixes its complete attempt structure: every map/reduce attempt's
//! node, straggler-scaled duration, retry chain, and per-round barriers.
//! The multiplexer then replays those attempts onto shared slot tables
//! with the engine's own reservation recurrence (earliest-free slot,
//! `start = max(slot_free, job_floor, prev_attempt_end)` — see
//! [`textmr_engine::event::Scheduler::place_map`]), generalized with one
//! per-job *floor* standing in for the engine's global free-time raises:
//!
//! * round 0 maps floor at the job's arrival;
//! * a round's reduces floor at that job's map-phase end (the max end of
//!   its map attempts, failed ones included — the engine's
//!   `begin_reduce_phase`);
//! * round `k+1` floors at round `k`'s wall (the engine's `begin_round`).
//!
//! With a single job at arrival 0 every floor coincides with the engine's
//! raise, so the multiplexed schedule IS the solo schedule, slot for
//! slot (pinned by `tests/serve_determinism.rs`). Durations are never
//! recomputed: cross-job contention delays work but does not re-price it,
//! so shuffle NIC sharing stays as the solo run measured it — a modeling
//! simplification documented in DESIGN.md §3h.
//!
//! ## Fairness and determinism
//!
//! Tasks become dispatchable in batches driven by a
//! [`JobEventQueue`], whose
//! `(virtual_ns, job, seq)` ordering makes the pop sequence a pure
//! function of the admitted job set. Within a batch, whole task chains
//! (an attempt ladder) are placed one at a time; each pick goes to the
//! tenant with the smallest weighted virtual service (`busy / weight`,
//! compared exactly in integers), ties to the lower tenant id, then the
//! lower job id, then the job's own engine dispatch order. Placement is
//! therefore deterministic given the solo traces — replaying the
//! multiplexer over the same inputs is byte-identical — while run-to-run
//! variation in *measured* solo durations moves both the solo and the
//! served schedule together.

use std::collections::VecDeque;

use textmr_engine::event::JobEventQueue;
use textmr_engine::metrics::VNanos;
use textmr_engine::trace::{
    EdgeEnd, EdgeKind, EntryDetail, JobTrace, TaskKind, TraceEdge, TraceEntry,
};

use crate::TenantSpec;

// ---------------------------------------------------------------------------
// Job plans
// ---------------------------------------------------------------------------

/// One attempt of a task chain: where the solo run placed it and how long
/// it occupied its slot (straggler scaling already applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptInfo {
    /// Index of the attempt's entry in the job's solo trace.
    pub entry: usize,
    /// Node the attempt ran on (map locality / reduce assignment — kept,
    /// because the measured duration embeds the node's straggler factor
    /// and shuffle locality).
    pub node: usize,
    /// Slot occupancy in virtual nanoseconds.
    pub dur: VNanos,
}

/// A task's full attempt ladder (attempt `k + 1` starts only after
/// attempt `k` ends), the multiplexer's atomic placement unit — exactly
/// the unit the engine's reservation recurrence places.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskChain {
    /// DAG round the task belongs to.
    pub round: usize,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task id within its round and phase.
    pub task: usize,
    /// Attempts in order; never empty.
    pub attempts: Vec<AttemptInfo>,
}

/// One admitted job's complete replay plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPlan {
    /// Serve job id (1-based; `JobPlan`s are passed in id order).
    pub job: usize,
    /// Owning tenant (index into the tenant roster).
    pub tenant: usize,
    /// Virtual arrival time — the floor under all of the job's work.
    pub arrival: VNanos,
    /// Task chains in the engine's dispatch order: per round, maps by
    /// task id, then reduces by task id.
    pub chains: Vec<TaskChain>,
    /// Per round: indices into `chains` for the round's maps and reduces.
    pub rounds: Vec<(Vec<usize>, Vec<usize>)>,
}

impl JobPlan {
    /// Extract the replay plan from a solo trace. Fails on speculative
    /// backups (serve rejects speculation at admission) and on malformed
    /// attempt numbering.
    pub fn from_trace(
        job: usize,
        tenant: usize,
        arrival: VNanos,
        trace: &JobTrace,
    ) -> Result<JobPlan, String> {
        use std::collections::BTreeMap;
        let mut by_task: BTreeMap<(usize, u8, usize), Vec<(usize, usize)>> = BTreeMap::new();
        for (ei, e) in trace.entries.iter().enumerate() {
            if e.backup {
                return Err(format!(
                    "solo trace of job {job} contains a speculative backup (round {} {} {})",
                    e.round,
                    e.kind.label(),
                    e.task
                ));
            }
            let kind_ord = match e.kind {
                TaskKind::Map => 0u8,
                TaskKind::Reduce => 1,
            };
            by_task
                .entry((e.round, kind_ord, e.task))
                .or_default()
                .push((e.attempt, ei));
        }
        let mut chains = Vec::with_capacity(by_task.len());
        let mut rounds: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        for ((round, kind_ord, task), mut attempts) in by_task {
            attempts.sort_unstable();
            for (want, &(got, _)) in attempts.iter().enumerate() {
                if got != want {
                    return Err(format!(
                        "job {job} round {round} task {task}: attempt numbering has a gap at {want}"
                    ));
                }
            }
            let kind = if kind_ord == 0 {
                TaskKind::Map
            } else {
                TaskKind::Reduce
            };
            let infos = attempts
                .iter()
                .map(|&(_, ei)| {
                    let e = &trace.entries[ei];
                    AttemptInfo {
                        entry: ei,
                        node: e.node,
                        dur: e.end.saturating_sub(e.start),
                    }
                })
                .collect();
            while rounds.len() <= round {
                rounds.push((Vec::new(), Vec::new()));
            }
            let ci = chains.len();
            match kind {
                TaskKind::Map => rounds[round].0.push(ci),
                TaskKind::Reduce => rounds[round].1.push(ci),
            }
            chains.push(TaskChain {
                round,
                kind,
                task,
                attempts: infos,
            });
        }
        Ok(JobPlan {
            job,
            tenant,
            arrival,
            chains,
            rounds,
        })
    }
}

// ---------------------------------------------------------------------------
// Multiplexing
// ---------------------------------------------------------------------------

/// One attempt as the multiplexer placed it on the shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placed {
    /// Serve job id.
    pub job: usize,
    /// Entry index in the job's solo trace.
    pub entry: usize,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Node (unchanged from solo).
    pub node: usize,
    /// Slot picked on the shared cluster.
    pub slot: usize,
    /// Shared-cluster virtual start.
    pub start: VNanos,
    /// Shared-cluster virtual end (`start + solo duration`).
    pub end: VNanos,
}

/// Per-job serve window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobWindow {
    /// Serve job id.
    pub job: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Virtual arrival.
    pub arrival: VNanos,
    /// Earliest attempt start (arrival for an empty job).
    pub start: VNanos,
    /// Virtual completion of the job's last round.
    pub finish: VNanos,
}

/// Per-tenant slot occupancy accumulated by the multiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantShare {
    /// Tenant index.
    pub tenant: usize,
    /// Fair-share weight (clamped to ≥ 1).
    pub weight: u64,
    /// Total map-slot occupancy granted, in virtual nanoseconds.
    pub map_busy: VNanos,
    /// Total reduce-slot occupancy granted.
    pub reduce_busy: VNanos,
}

/// The complete interleaved schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Multiplexed {
    /// Every attempt in placement order (the fair-share grant sequence).
    pub placed: Vec<Placed>,
    /// `by_job_entry[job - 1][solo_entry] → index into placed`.
    pub by_job_entry: Vec<Vec<Option<usize>>>,
    /// Per-job windows, in job-id order.
    pub windows: Vec<JobWindow>,
    /// Per-tenant occupancy, indexed by tenant.
    pub shares: Vec<TenantShare>,
    /// Max attempt end across all jobs.
    pub wall: VNanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrive,
    Reduces,
    NextRound,
}

struct JobState {
    tenant: usize,
    /// Ready chains (indices into the plan), in engine dispatch order.
    queue: VecDeque<usize>,
    /// Current floor under this job's placements.
    floor: VNanos,
    round: usize,
    maps_left: usize,
    reduces_left: usize,
    /// Max map-attempt end of the current round (the reduce floor).
    mpe: VNanos,
    /// Round wall: `max(mpe, reduce ends)` — the next round's floor.
    round_end: VNanos,
    started: Option<VNanos>,
    finish: VNanos,
}

/// Multiplex `plans` (in job-id order: `plans[i].job == i + 1`) onto a
/// shared cluster of `nodes` × (`map_slots`, `reduce_slots`) under the
/// tenants' weighted fair share.
pub fn multiplex(
    nodes: usize,
    map_slots: usize,
    reduce_slots: usize,
    tenants: &[TenantSpec],
    plans: &[JobPlan],
) -> Multiplexed {
    let nodes = nodes.max(1);
    for (i, p) in plans.iter().enumerate() {
        assert_eq!(p.job, i + 1, "plans must be passed in job-id order");
        assert!(p.tenant < tenants.len(), "plan references unknown tenant");
    }
    let weights: Vec<u64> = tenants.iter().map(|t| t.weight.max(1)).collect();
    let mut busy: Vec<u128> = vec![0; tenants.len()];
    let mut shares: Vec<TenantShare> = tenants
        .iter()
        .enumerate()
        .map(|(i, _)| TenantShare {
            tenant: i,
            weight: weights[i],
            map_busy: 0,
            reduce_busy: 0,
        })
        .collect();

    let mut map_free = vec![vec![0 as VNanos; map_slots.max(1)]; nodes];
    let mut reduce_free = vec![vec![0 as VNanos; reduce_slots.max(1)]; nodes];

    let mut states: Vec<JobState> = plans
        .iter()
        .map(|p| JobState {
            tenant: p.tenant,
            queue: VecDeque::new(),
            floor: p.arrival,
            round: 0,
            maps_left: 0,
            reduces_left: 0,
            mpe: p.arrival,
            round_end: p.arrival,
            started: None,
            finish: p.arrival,
        })
        .collect();

    let mut placed: Vec<Placed> = Vec::new();
    let mut by_job_entry: Vec<Vec<Option<usize>>> = plans
        .iter()
        .map(|p| {
            let max_entry = p
                .chains
                .iter()
                .flat_map(|c| c.attempts.iter().map(|a| a.entry))
                .max()
                .map_or(0, |m| m + 1);
            vec![None; max_entry]
        })
        .collect();

    let mut q: JobEventQueue<Ev> = JobEventQueue::new();
    for p in plans {
        q.push(p.arrival, p.job, Ev::Arrive);
    }

    // Open the current round's map phase (or fall through empty phases).
    fn open_round(
        ji: usize,
        states: &mut [JobState],
        plans: &[JobPlan],
        q: &mut JobEventQueue<Ev>,
    ) {
        let st = &mut states[ji];
        let round = st.round;
        if round >= plans[ji].rounds.len() {
            // No work at all: the job completes at its floor.
            st.finish = st.floor;
            return;
        }
        let maps = &plans[ji].rounds[round].0;
        st.maps_left = maps.len();
        st.mpe = st.floor;
        st.round_end = st.floor;
        if maps.is_empty() {
            q.push(st.floor, plans[ji].job, Ev::Reduces);
        } else {
            st.queue.extend(maps.iter().copied());
        }
    }

    // A phase of job `ji` finished placing; push the follow-up event.
    fn phase_check(
        ji: usize,
        states: &mut [JobState],
        plans: &[JobPlan],
        q: &mut JobEventQueue<Ev>,
    ) {
        let st = &mut states[ji];
        if st.maps_left == 0 && st.reduces_left == 0 && st.queue.is_empty() {
            // Round complete.
            if st.round + 1 < plans[ji].rounds.len() {
                q.push(st.round_end, plans[ji].job, Ev::NextRound);
            } else {
                st.finish = st.round_end;
            }
        }
    }

    while let Some(t) = q.peek_time() {
        // Drain the whole same-instant batch before dispatching, so jobs
        // whose phases open at the same virtual instant compete under
        // fair share instead of first-pop-wins.
        while q.peek_time() == Some(t) {
            let (_, job, _, ev) = q.pop().expect("peeked");
            let ji = job - 1;
            match ev {
                Ev::Arrive => open_round(ji, &mut states, plans, &mut q),
                Ev::Reduces => {
                    let st = &mut states[ji];
                    st.floor = st.mpe;
                    st.round_end = st.mpe;
                    let reduces = &plans[ji].rounds[st.round].1;
                    st.reduces_left = reduces.len();
                    if reduces.is_empty() {
                        phase_check(ji, &mut states, plans, &mut q);
                    } else {
                        let reduces = reduces.clone();
                        states[ji].queue.extend(reduces);
                    }
                }
                Ev::NextRound => {
                    let st = &mut states[ji];
                    st.round += 1;
                    st.floor = st.round_end;
                    open_round(ji, &mut states, plans, &mut q);
                }
            }
        }

        // Fair-share dispatch: drain the ready pool one task chain at a
        // time, each grant going to the most underserved tenant.
        loop {
            let mut best: Option<usize> = None;
            for st in states.iter() {
                if st.queue.is_empty() {
                    continue;
                }
                let ten = st.tenant;
                best = Some(match best {
                    None => ten,
                    Some(b) if b == ten => b,
                    Some(b) => {
                        // busy[ten]/w[ten] < busy[b]/w[b], in integers.
                        let lhs = busy[ten] * u128::from(weights[b]);
                        let rhs = busy[b] * u128::from(weights[ten]);
                        if lhs < rhs || (lhs == rhs && ten < b) {
                            ten
                        } else {
                            b
                        }
                    }
                });
            }
            let Some(ten) = best else { break };
            let ji = states
                .iter()
                .position(|st| st.tenant == ten && !st.queue.is_empty())
                .expect("tenant was eligible");
            let ci = states[ji].queue.pop_front().expect("queue non-empty");
            let chain = &plans[ji].chains[ci];

            // Engine reservation recurrence, floored by the job's phase.
            let floor = states[ji].floor;
            let mut prev_end: VNanos = 0;
            let mut chain_busy: VNanos = 0;
            for a in &chain.attempts {
                let free = match chain.kind {
                    TaskKind::Map => &mut map_free[a.node],
                    TaskKind::Reduce => &mut reduce_free[a.node],
                };
                let mut slot = 0;
                let mut best_eff = free[0].max(floor);
                for (s, &f) in free.iter().enumerate().skip(1) {
                    let eff = f.max(floor);
                    if eff < best_eff {
                        best_eff = eff;
                        slot = s;
                    }
                }
                let start = best_eff.max(prev_end);
                let end = start.saturating_add(a.dur);
                free[slot] = end;
                by_job_entry[ji][a.entry] = Some(placed.len());
                placed.push(Placed {
                    job: plans[ji].job,
                    entry: a.entry,
                    kind: chain.kind,
                    node: a.node,
                    slot,
                    start,
                    end,
                });
                let st = &mut states[ji];
                st.started = Some(st.started.map_or(start, |s| s.min(start)));
                prev_end = end;
                chain_busy = chain_busy.saturating_add(a.dur);
            }
            busy[ten] += u128::from(chain_busy);
            match chain.kind {
                TaskKind::Map => shares[ten].map_busy += chain_busy,
                TaskKind::Reduce => shares[ten].reduce_busy += chain_busy,
            }
            let st = &mut states[ji];
            match chain.kind {
                TaskKind::Map => {
                    st.maps_left -= 1;
                    st.mpe = st.mpe.max(prev_end);
                    st.round_end = st.round_end.max(prev_end);
                    if st.maps_left == 0 {
                        q.push(st.mpe, plans[ji].job, Ev::Reduces);
                    }
                }
                TaskKind::Reduce => {
                    st.reduces_left -= 1;
                    st.round_end = st.round_end.max(prev_end);
                    if st.reduces_left == 0 {
                        phase_check(ji, &mut states, plans, &mut q);
                    }
                }
            }
        }
    }

    let windows = plans
        .iter()
        .enumerate()
        .map(|(ji, p)| JobWindow {
            job: p.job,
            tenant: p.tenant,
            arrival: p.arrival,
            start: states[ji].started.unwrap_or(p.arrival),
            finish: states[ji].finish,
        })
        .collect();
    let wall = placed.iter().map(|p| p.end).max().unwrap_or(0);
    Multiplexed {
        placed,
        by_job_entry,
        windows,
        shares,
        wall,
    }
}

// ---------------------------------------------------------------------------
// Merged trace
// ---------------------------------------------------------------------------

fn shift(t: VNanos, delta: i128) -> VNanos {
    u64::try_from(i128::from(t) + delta).expect("shifted virtual time out of range")
}

/// Assemble the served multi-job trace: every job's solo entries shifted
/// to their multiplexed placements (durations and lane structure
/// untouched, so the per-attempt tiling invariants carry over), per-job
/// structural edges reindexed, solo slot chains dropped, and cross-job
/// slot chains rebuilt from the shared-cluster occupancy order.
pub fn merge_traces(plans: &[JobPlan], solos: &[JobTrace], mux: &Multiplexed) -> JobTrace {
    assert_eq!(plans.len(), solos.len());
    let mut entries: Vec<TraceEntry> = Vec::new();
    let mut offsets = Vec::with_capacity(solos.len());
    for (ji, solo) in solos.iter().enumerate() {
        offsets.push(entries.len());
        for (ei, e) in solo.entries.iter().enumerate() {
            let pi = mux.by_job_entry[ji][ei].expect("every solo entry is placed");
            let p = &mux.placed[pi];
            let delta = i128::from(p.start) - i128::from(e.start);
            debug_assert_eq!(i128::from(p.end), i128::from(e.end) + delta);
            let mut detail = e.detail.clone();
            if let EntryDetail::Lanes(lanes) = &mut detail {
                for lane in lanes {
                    for span in &mut lane.spans {
                        span.start = shift(span.start, delta);
                        span.end = shift(span.end, delta);
                    }
                }
            }
            entries.push(TraceEntry {
                job: plans[ji].job,
                slot: p.slot,
                start: p.start,
                end: p.end,
                detail,
                ..*e
            });
        }
    }

    // Per-job structural edges survive re-timing verbatim (they relate
    // events inside one job, whose relative order the floors preserve);
    // solo slot chains describe slots the jobs no longer own.
    let mut edges: Vec<TraceEdge> = Vec::new();
    for (ji, solo) in solos.iter().enumerate() {
        let off = offsets[ji];
        edges.extend(
            solo.edges
                .iter()
                .filter(|e| e.kind != EdgeKind::Slot)
                .map(|e| TraceEdge {
                    kind: e.kind,
                    src: EdgeEnd {
                        entry: e.src.entry + off,
                        at: e.src.at,
                    },
                    dst: EdgeEnd {
                        entry: e.dst.entry + off,
                        at: e.dst.at,
                    },
                }),
        );
    }

    // Cross-job slot chains: consecutive occupants of each shared slot.
    let header = solos.first();
    let nodes = header.map_or(1, |s| s.nodes);
    let map_slots = header.map_or(1, |s| s.map_slots);
    let reduce_slots = header.map_or(1, |s| s.reduce_slots);
    for kind in [TaskKind::Map, TaskKind::Reduce] {
        let slots = match kind {
            TaskKind::Map => map_slots,
            TaskKind::Reduce => reduce_slots,
        };
        for node in 0..nodes {
            for slot in 0..slots {
                let mut occ: Vec<(VNanos, VNanos, usize)> = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.kind == kind && e.node == node && e.slot == slot)
                    .map(|(i, e)| (e.start, e.end, i))
                    .collect();
                occ.sort_unstable();
                for pair in occ.windows(2) {
                    edges.push(TraceEdge {
                        kind: EdgeKind::Slot,
                        src: EdgeEnd::entry(pair[0].2),
                        dst: EdgeEnd::entry(pair[1].2),
                    });
                }
            }
        }
    }

    JobTrace {
        nodes,
        map_slots,
        reduce_slots,
        fetchers: header.map_or(1, |s| s.fetchers),
        wall: entries.iter().map(|e| e.end).max().unwrap_or(0),
        entries,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, weight: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight,
            max_jobs: usize::MAX,
        }
    }

    fn chain(round: usize, kind: TaskKind, task: usize, node: usize, durs: &[VNanos]) -> TaskChain {
        TaskChain {
            round,
            kind,
            task,
            attempts: durs
                .iter()
                .map(|&dur| AttemptInfo {
                    entry: 0,
                    node,
                    dur,
                })
                .collect(),
        }
    }

    fn plan(job: usize, tenant: usize, arrival: VNanos, chains: Vec<TaskChain>) -> JobPlan {
        let mut rounds: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        for (ci, c) in chains.iter().enumerate() {
            while rounds.len() <= c.round {
                rounds.push((Vec::new(), Vec::new()));
            }
            match c.kind {
                TaskKind::Map => rounds[c.round].0.push(ci),
                TaskKind::Reduce => rounds[c.round].1.push(ci),
            }
        }
        JobPlan {
            job,
            tenant,
            arrival,
            chains,
            rounds,
        }
    }

    /// One job, one node with two map slots: the multiplexer must
    /// reproduce the engine recurrence exactly, including the retry
    /// ladder reserving ahead of later tasks in task order.
    #[test]
    fn single_job_reproduces_the_engine_recurrence() {
        let plans = vec![plan(
            1,
            0,
            0,
            vec![
                chain(0, TaskKind::Map, 0, 0, &[10, 5]), // fails once, retries
                chain(0, TaskKind::Map, 1, 0, &[3]),
                chain(0, TaskKind::Map, 2, 0, &[100]),
                chain(0, TaskKind::Reduce, 0, 0, &[7]),
            ],
        )];
        let mux = multiplex(1, 2, 1, &[tenant("a", 1)], &plans);
        let got: Vec<(usize, VNanos, VNanos)> = mux
            .placed
            .iter()
            .map(|p| (p.slot, p.start, p.end))
            .collect();
        // Engine order: task 0 ladder first (slot 0 [0,10]; retry argmin →
        // slot 1 free at 0, start max(0, 10) = 10 → [10,15]), then task 1
        // (argmin slot 0 free 10 vs slot 1 free 15 → slot 0 [10,13]), then
        // task 2 (slot 0 [13,113]). Reduce floors at mpe = 113.
        assert_eq!(
            got,
            vec![
                (0, 0, 10),
                (1, 10, 15),
                (0, 10, 13),
                (0, 13, 113),
                (0, 113, 120)
            ]
        );
        assert_eq!(mux.windows[0].finish, 120);
        assert_eq!(mux.wall, 120);
    }

    /// Two tenants with weights 1:3 contending for one map slot: grants
    /// interleave so the heavy tenant holds ~3× the slot time at every
    /// prefix of the schedule.
    #[test]
    fn weighted_fair_share_splits_one_slot_three_to_one() {
        let d: VNanos = 10;
        let mk = |job, ten| {
            plan(
                job,
                ten,
                0,
                (0..8)
                    .map(|t| chain(0, TaskKind::Map, t, 0, &[d]))
                    .collect(),
            )
        };
        let plans = vec![mk(1, 0), mk(2, 1)];
        let tenants = [tenant("light", 1), tenant("heavy", 3)];
        let mux = multiplex(1, 1, 1, &tenants, &plans);
        // Walk the single slot in placement order; while both tenants
        // still have pending work the heavy tenant's cumulative busy time
        // stays within one task of 3× the light tenant's.
        let (mut busy_light, mut busy_heavy) = (0u64, 0u64);
        let (mut left_light, mut left_heavy) = (8, 8);
        for p in &mux.placed {
            if p.job == 1 {
                busy_light += d;
                left_light -= 1;
            } else {
                busy_heavy += d;
                left_heavy -= 1;
            }
            if left_light > 0 && left_heavy > 0 {
                let diff = i128::from(busy_heavy) - 3 * i128::from(busy_light);
                assert!(
                    diff.abs() <= 3 * i128::from(d),
                    "fair-share drift: heavy {busy_heavy} vs light {busy_light}"
                );
            }
        }
        assert_eq!(mux.shares[0].map_busy, 8 * d);
        assert_eq!(mux.shares[1].map_busy, 8 * d);
    }

    /// A later arrival floors its work at its arrival time even when the
    /// cluster is idle, and the event queue orders the batches.
    #[test]
    fn arrival_floors_delay_late_jobs() {
        let plans = vec![
            plan(1, 0, 0, vec![chain(0, TaskKind::Map, 0, 0, &[5])]),
            plan(2, 0, 100, vec![chain(0, TaskKind::Map, 0, 0, &[5])]),
        ];
        let mux = multiplex(1, 2, 1, &[tenant("a", 1)], &plans);
        assert_eq!(mux.placed[0].start, 0);
        // Slot 0 is free again at 5, but job 2 cannot start before 100.
        assert_eq!(mux.placed[1].start, 100);
        assert_eq!(mux.placed[1].slot, 0, "argmin over floored free times");
    }

    /// Same-instant arrivals from different jobs are one batch: dispatch
    /// order comes from fair share, not from push order.
    #[test]
    fn same_instant_arrivals_share_the_batch() {
        let plans = vec![
            plan(1, 0, 0, vec![chain(0, TaskKind::Map, 0, 0, &[10])]),
            plan(2, 1, 0, vec![chain(0, TaskKind::Map, 0, 0, &[10])]),
        ];
        // Tenant 1 is heavier, but at zero service the tie breaks to the
        // lower tenant id.
        let tenants = [tenant("a", 1), tenant("b", 3)];
        let mux = multiplex(1, 1, 1, &tenants, &plans);
        assert_eq!(mux.placed[0].job, 1);
        assert_eq!(mux.placed[1].job, 2);
        assert_eq!(mux.placed[1].start, 10);
    }
}
