//! Zipfian multi-tenant workload generator.
//!
//! Builds a serve request queue the way a shared text-analytics cluster
//! sees one: a small roster of job *classes* (WordCount, grep, inverted
//! index, access-log aggregation, multi-round prefix sums) whose
//! popularity is Zipf-distributed, submitted round-robin by competing
//! tenants at a fixed virtual arrival cadence. Popular classes repeat,
//! so their map outputs are exactly what the S3-FIFO cache is for: every
//! repeat of a class over the same input resolves to the same
//! `(prefix, round, task, split-digest)` keys and hits.
//!
//! Generation is fully deterministic given [`WorkloadConfig`] — the
//! class sequence comes from a seeded [`ZipfTable`] draw, the corpora
//! from seeded generators — so a workload can be rebuilt bit-identically
//! for replay comparisons.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use textmr_apps::{
    AccessLogSum, InvertedIndex, PrefixApply, PrefixLocal, PrefixScan, WordCount, SOURCE_VISITS,
};
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::WeblogConfig;
use textmr_data::zipf::ZipfTable;
use textmr_engine::cluster::JobConfig;
use textmr_engine::codec::{decode_u64, encode_u64};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{Emit, Job, JobDag, Record, StageInput, ValueCursor, ValueSink};
use textmr_engine::metrics::VNanos;

use crate::{JobRequest, TenantSpec};

/// Grep as a MapReduce job: count lines containing a fixed needle.
/// The scan shape of the roster — map-heavy, tiny shuffle.
pub struct GrepCount {
    /// Substring to search each line for.
    pub needle: String,
}

fn sum_counts(values: &mut dyn ValueCursor) -> u64 {
    let mut sum = 0u64;
    while let Some(v) = values.next() {
        sum += decode_u64(v).unwrap_or(0);
    }
    sum
}

impl Job for GrepCount {
    fn name(&self) -> &str {
        "grep"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let needle = self.needle.as_bytes();
        if needle.is_empty() || record.value.windows(needle.len()).any(|w| w == needle) {
            emit.emit(needle, &encode_u64(1));
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        out.push(&encode_u64(sum_counts(values)));
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        out.emit(key, &encode_u64(sum_counts(values)));
    }
}

/// Knobs of the generated workload. All plain data, sweepable.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of job submissions.
    pub jobs: usize,
    /// Number of tenants; submissions round-robin across them.
    pub tenants: usize,
    /// Seed for the class-popularity draw.
    pub seed: u64,
    /// Zipf exponent of class popularity (higher → more repeats → more
    /// cache hits).
    pub alpha: f64,
    /// Virtual gap between consecutive arrivals.
    pub arrival_gap_ns: VNanos,
    /// Corpus scale: lines per text input.
    pub lines: usize,
    /// Reducers per stage.
    pub reducers: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            jobs: 24,
            tenants: 3,
            seed: 0x5e71_e5e7,
            alpha: 1.1,
            arrival_gap_ns: 2_000_000,
            lines: 300,
            reducers: 3,
        }
    }
}

/// A generated workload, ready to pass to [`crate::serve`].
pub struct Workload {
    /// Shared inputs, pre-loaded.
    pub dfs: SimDfs,
    /// Tenant roster with heterogeneous weights (`1 + t mod 3`).
    pub tenants: Vec<TenantSpec>,
    /// The request queue, in submission order.
    pub requests: Vec<JobRequest>,
}

/// Number of distinct job classes in the roster.
pub const NUM_CLASSES: usize = 5;

fn class_request(class: usize, cfg: &WorkloadConfig) -> (&'static str, JobDag, String) {
    let r = cfg.reducers.max(1);
    let stage_cfg = JobConfig::default().with_reducers(r);
    match class {
        0 => (
            "wordcount",
            JobDag::new().stage(Arc::new(WordCount), stage_cfg, StageInput::dfs("corpus-a")),
            format!("wc|corpus-a|r{r}"),
        ),
        1 => (
            "grep",
            JobDag::new().stage(
                Arc::new(GrepCount {
                    needle: "w1".to_string(),
                }),
                stage_cfg,
                StageInput::dfs("corpus-a"),
            ),
            format!("grep:w1|corpus-a|r{r}"),
        ),
        2 => (
            "inverted-index",
            JobDag::new().stage(
                Arc::new(InvertedIndex),
                stage_cfg,
                StageInput::dfs("corpus-b"),
            ),
            format!("ii|corpus-b|r{r}"),
        ),
        3 => (
            "log-sum",
            JobDag::new().stage(
                Arc::new(AccessLogSum),
                stage_cfg,
                StageInput::Dfs(vec![("visits".to_string(), SOURCE_VISITS)]),
            ),
            format!("logsum|visits|r{r}"),
        ),
        _ => {
            // The multi-round representative: three chained stages.
            let block_size = 8u64;
            let num_blocks = 64u64.div_ceil(block_size);
            (
                "prefix-sums",
                JobDag::new()
                    .stage(
                        Arc::new(PrefixLocal { block_size }),
                        stage_cfg.clone(),
                        StageInput::dfs("elems"),
                    )
                    .then(Arc::new(PrefixScan { num_blocks }), stage_cfg.clone())
                    .then(Arc::new(PrefixApply), stage_cfg),
                format!("ps|elems|b{block_size}|r{r}"),
            )
        }
    }
}

/// Generate the workload for a cluster of `nodes` nodes.
pub fn generate(nodes: usize, cfg: &WorkloadConfig) -> Workload {
    let mut dfs = SimDfs::new(nodes.max(1), 256);
    dfs.put(
        "corpus-a",
        CorpusConfig {
            vocab_size: 300,
            alpha: 1.0,
            lines: cfg.lines,
            words_per_line: 8,
            seed: cfg.seed,
        }
        .generate_bytes(),
    );
    dfs.put(
        "corpus-b",
        CorpusConfig {
            vocab_size: 200,
            alpha: 1.0,
            lines: cfg.lines,
            words_per_line: 6,
            seed: cfg.seed.wrapping_add(1),
        }
        .generate_bytes(),
    );
    dfs.put(
        "visits",
        WeblogConfig {
            num_urls: 50,
            num_visits: cfg.lines,
            url_alpha: 0.8,
            seed: cfg.seed.wrapping_add(2),
        }
        .visits_bytes(),
    );
    let mut elems = String::new();
    for i in 0..64u64 {
        let v = (i * i * 31 + 7) % 1000;
        elems.push_str(&format!("{i} {v}\n"));
    }
    dfs.put("elems", elems.into_bytes());

    let tenants: Vec<TenantSpec> = (0..cfg.tenants.max(1))
        .map(|t| TenantSpec {
            name: format!("tenant-{t}"),
            weight: 1 + (t as u64 % 3),
            max_jobs: cfg.jobs,
        })
        .collect();

    let zipf = ZipfTable::new(NUM_CLASSES, cfg.alpha);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let requests = (0..cfg.jobs)
        .map(|i| {
            let class = zipf.sample(&mut rng) - 1;
            let (class_name, plan, prefix) = class_request(class, cfg);
            JobRequest {
                tenant: i % tenants.len(),
                arrival: i as VNanos * cfg.arrival_gap_ns,
                name: format!("{class_name}-{i}"),
                plan,
                cache_prefix: Some(prefix),
            }
        })
        .collect();

    Workload {
        dfs,
        tenants,
        requests,
    }
}
