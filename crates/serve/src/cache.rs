//! Byte-budgeted S3-FIFO map-output cache.
//!
//! The eviction policy is S3-FIFO (Yang et al., "FIFO queues are all you
//! need for cache eviction", SOSP 2023): three plain FIFO queues instead
//! of an LRU list.
//!
//! * **Small** — a probationary queue sized at 10 % of the byte budget.
//!   New keys enter here. One-hit-wonders (the bulk of a Zipfian job
//!   stream's unique map outputs) flow through and fall out without ever
//!   touching the main queue.
//! * **Main** — the protected queue holding the other 90 %. An entry
//!   evicted from small is *promoted* here when it was re-referenced while
//!   probationary (`freq > 1`); otherwise it is demoted to a ghost.
//!   Main evicts lazily: a head entry with `freq > 0` is reinserted at the
//!   tail with its frequency decayed (FIFO-Reinsertion), so repeatedly
//!   hit entries survive without any per-hit reordering.
//! * **Ghost** — a bounded FIFO of evicted *keys* (no payload). A `put`
//!   whose key is still ghosted readmits the entry directly into main:
//!   the key proved it gets re-referenced at a horizon longer than the
//!   small queue.
//!
//! Hits only saturate a 2-bit frequency counter (capped at
//! [`FREQ_CAP`]); they never move an entry between or within queues.
//! That makes the queue state — and therefore every later hit/miss
//! decision — a pure function of the *insertion* sequence, which the
//! engine drives sequentially in task-id order (see
//! [`textmr_engine::cache::MapOutputCache`]). Concurrent `get`s from the
//! map wave commute: each map task consults a distinct key exactly once
//! per wave, so per-key counter updates cannot race each other.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use textmr_engine::cache::{CachedMapOutput, MapOutputCache};

/// Saturation cap on the per-entry reference counter (2 bits, as in the
/// S3-FIFO paper).
pub const FREQ_CAP: u8 = 3;

/// Which resident queue an entry currently sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

#[derive(Debug)]
enum Slot {
    /// Payload-bearing entry in small or main.
    Resident {
        value: Arc<CachedMapOutput>,
        bytes: u64,
        freq: u8,
        queue: Queue,
    },
    /// Evicted key remembered by the ghost queue.
    Ghost,
}

/// Counter snapshot; all counters are cumulative since construction
/// except the `resident_*` / `ghost_entries` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get`s that found a resident entry.
    pub hits: u64,
    /// `get`s that found nothing (or only a ghost).
    pub misses: u64,
    /// `put`s admitted as new resident entries.
    pub inserts: u64,
    /// `put`s that readmitted a ghosted key straight into main.
    pub ghost_readmits: u64,
    /// `put`s dropped because the payload alone exceeds the budget.
    pub rejected_oversize: u64,
    /// Entries whose payload left residency (demotion to ghost or final
    /// eviction from main).
    pub evictions: u64,
    /// Gauge: resident payload bytes (small + main).
    pub resident_bytes: u64,
    /// Gauge: resident entry count (small + main).
    pub resident_entries: u64,
    /// Gauge: ghost keys currently remembered.
    pub ghost_entries: u64,
}

#[derive(Debug)]
struct Inner {
    map: BTreeMap<String, Slot>,
    small: VecDeque<String>,
    main: VecDeque<String>,
    ghost: VecDeque<String>,
    small_bytes: u64,
    main_bytes: u64,
    stats: CacheStats,
}

/// The shared cache: one instance serves every job `textmr-serve` admits.
#[derive(Debug)]
pub struct S3FifoCache {
    budget_bytes: u64,
    small_budget: u64,
    ghost_capacity: usize,
    inner: Mutex<Inner>,
}

impl S3FifoCache {
    /// A cache holding at most `budget_bytes` of payload, with the small
    /// queue at 10 % of the budget and a 1024-key ghost queue.
    pub fn new(budget_bytes: u64) -> S3FifoCache {
        S3FifoCache::with_ghost_capacity(budget_bytes, 1024)
    }

    /// [`S3FifoCache::new`] with an explicit bound on remembered ghost
    /// keys.
    pub fn with_ghost_capacity(budget_bytes: u64, ghost_capacity: usize) -> S3FifoCache {
        S3FifoCache {
            budget_bytes,
            small_budget: budget_bytes / 10,
            ghost_capacity,
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                small: VecDeque::new(),
                main: VecDeque::new(),
                ghost: VecDeque::new(),
                small_bytes: 0,
                main_bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured payload budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The ghost queue's key capacity.
    pub fn ghost_capacity(&self) -> usize {
        self.ghost_capacity
    }

    /// Diagnostic: the saturating reference counter of a resident key
    /// (`None` for absent or ghosted keys). Exposed so property tests can
    /// pin the [`FREQ_CAP`] invariant; not part of the caching contract.
    pub fn freq_of(&self, key: &str) -> Option<u8> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(Slot::Resident { freq, .. }) => Some(*freq),
            _ => None,
        }
    }

    /// Snapshot the counters and gauges.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        let mut s = inner.stats;
        s.resident_bytes = inner.small_bytes + inner.main_bytes;
        s.resident_entries = (inner.small.len() + inner.main.len()) as u64;
        s.ghost_entries = inner.ghost.len() as u64;
        s
    }
}

impl Inner {
    /// Remember `key` in the ghost queue, forgetting the oldest ghost
    /// when the queue is full.
    fn push_ghost(&mut self, key: String, capacity: usize) {
        if capacity == 0 {
            self.map.remove(&key);
            return;
        }
        while self.ghost.len() >= capacity {
            if let Some(old) = self.ghost.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key.clone(), Slot::Ghost);
        self.ghost.push_back(key);
    }

    /// Evict the small queue's head: promote it to main when it was
    /// re-referenced while probationary, demote it to a ghost otherwise.
    fn evict_small(&mut self, ghost_capacity: usize) {
        let Some(key) = self.small.pop_front() else {
            return;
        };
        let Some(Slot::Resident { bytes, freq, .. }) = self.map.get(&key) else {
            unreachable!("small queue member must be resident");
        };
        let (bytes, freq) = (*bytes, *freq);
        self.small_bytes -= bytes;
        if freq > 1 {
            if let Some(Slot::Resident { queue, freq, .. }) = self.map.get_mut(&key) {
                *queue = Queue::Main;
                *freq = 0;
            }
            self.main_bytes += bytes;
            self.main.push_back(key);
        } else {
            self.stats.evictions += 1;
            self.push_ghost(key, ghost_capacity);
        }
    }

    /// Evict from the main queue's head, reinserting still-referenced
    /// entries with decayed frequency (FIFO-Reinsertion). Terminates:
    /// every reinsertion strictly decreases a frequency counter.
    fn evict_main(&mut self) {
        while let Some(key) = self.main.pop_front() {
            let Some(Slot::Resident { bytes, freq, .. }) = self.map.get_mut(&key) else {
                unreachable!("main queue member must be resident");
            };
            if *freq > 0 {
                *freq -= 1;
                self.main.push_back(key);
                continue;
            }
            self.main_bytes -= *bytes;
            self.stats.evictions += 1;
            self.map.remove(&key);
            return;
        }
    }

    /// Shrink until the resident payload fits the budget again.
    fn enforce_budget(&mut self, budget: u64, small_budget: u64, ghost_capacity: usize) {
        while self.small_bytes + self.main_bytes > budget {
            if self.small_bytes > small_budget || self.main.is_empty() {
                self.evict_small(ghost_capacity);
            } else {
                self.evict_main();
            }
        }
    }
}

impl MapOutputCache for S3FifoCache {
    fn get(&self, key: &str) -> Option<Arc<CachedMapOutput>> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get_mut(key) {
            Some(Slot::Resident { value, freq, .. }) => {
                *freq = (*freq + 1).min(FREQ_CAP);
                let value = Arc::clone(value);
                inner.stats.hits += 1;
                Some(value)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn put(&self, key: &str, value: Arc<CachedMapOutput>) {
        let bytes = value.payload_bytes();
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            // Re-offering a resident key is a no-op (trait contract).
            Some(Slot::Resident { .. }) => return,
            Some(Slot::Ghost) => {
                // The key was evicted recently enough to still be
                // remembered: it re-references at a horizon the small
                // queue cannot see, so it skips probation.
                if bytes > self.budget_bytes {
                    inner.stats.rejected_oversize += 1;
                    return;
                }
                inner.ghost.retain(|k| k != key);
                inner.map.insert(
                    key.to_string(),
                    Slot::Resident {
                        value,
                        bytes,
                        freq: 0,
                        queue: Queue::Main,
                    },
                );
                inner.main_bytes += bytes;
                inner.main.push_back(key.to_string());
                inner.stats.ghost_readmits += 1;
            }
            None => {
                if bytes > self.budget_bytes {
                    inner.stats.rejected_oversize += 1;
                    return;
                }
                inner.map.insert(
                    key.to_string(),
                    Slot::Resident {
                        value,
                        bytes,
                        freq: 0,
                        queue: Queue::Small,
                    },
                );
                inner.small_bytes += bytes;
                inner.small.push_back(key.to_string());
                inner.stats.inserts += 1;
            }
        }
        inner.enforce_budget(self.budget_bytes, self.small_budget, self.ghost_capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Arc<CachedMapOutput> {
        Arc::new(CachedMapOutput {
            partitions: vec![textmr_engine::cache::CachedPartition {
                part: 0,
                bytes: vec![0xabu8; n],
                records: 1,
            }],
            compressed: false,
            framed: false,
            input_records: 1,
            emitted_records: 1,
            freq_absorbed_records: 0,
            output_bytes: n as u64,
        })
    }

    #[test]
    fn one_hit_wonders_wash_through_small_without_touching_main() {
        let cache = S3FifoCache::new(100);
        for i in 0..30 {
            cache.put(&format!("k{i}"), payload(10));
        }
        let s = cache.stats();
        assert!(s.resident_bytes <= 100);
        // Nothing was ever re-referenced, so nothing was promoted: the
        // survivors all sit in small/main per the byte split, and the
        // overflow became ghosts (bounded) or fell off.
        assert_eq!(s.hits, 0);
        assert!(s.evictions >= 20);
        assert!(s.ghost_entries <= cache.ghost_capacity() as u64);
    }

    #[test]
    fn referenced_probationer_survives_eviction_via_main() {
        let cache = S3FifoCache::new(100);
        cache.put("hot", payload(10));
        // Two hits while probationary → freq 2 > 1 → promote on evict.
        assert!(cache.get("hot").is_some());
        assert!(cache.get("hot").is_some());
        for i in 0..20 {
            cache.put(&format!("cold{i}"), payload(10));
        }
        assert!(cache.get("hot").is_some(), "hot entry must be promoted");
        assert!(cache.stats().resident_bytes <= 100);
    }

    #[test]
    fn ghosted_key_readmits_into_main() {
        let cache = S3FifoCache::new(100);
        cache.put("seen", payload(10));
        for i in 0..20 {
            cache.put(&format!("cold{i}"), payload(10));
        }
        assert!(cache.get("seen").is_none(), "must have been demoted");
        let before = cache.stats();
        cache.put("seen", payload(10));
        let after = cache.stats();
        assert_eq!(after.ghost_readmits, before.ghost_readmits + 1);
        assert!(cache.get("seen").is_some());
    }

    #[test]
    fn oversize_payloads_are_rejected_not_looped() {
        let cache = S3FifoCache::new(50);
        cache.put("big", payload(51));
        assert!(cache.get("big").is_none());
        assert_eq!(cache.stats().rejected_oversize, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn reoffering_a_resident_key_is_a_noop() {
        let cache = S3FifoCache::new(100);
        cache.put("k", payload(10));
        let before = cache.stats();
        cache.put("k", payload(10));
        let after = cache.stats();
        assert_eq!(before.inserts, after.inserts);
        assert_eq!(before.resident_bytes, after.resident_bytes);
    }
}
