//! The spill-matcher: adaptive spill-percentage control (paper Section IV).
//!
//! Hadoop spills at a static fraction (`io.sort.spill.percent`, default
//! 0.8). The paper shows this wastes pipeline parallelism: the optimal
//! fraction depends on the relative speeds of the map thread (produce rate
//! `p`) and the support thread (consume rate `c`), which vary by
//! application, machine and even over a job's lifetime. Spill-matcher
//! measures the previous spill's produce/consume times and sets, per spill,
//!
//! ```text
//! x = max{ c/(p+c), 1/2 }        (Eq. 1)
//! ```
//!
//! which is the *largest* fraction (maximizing combine efficiency — bigger
//! spills mean more duplicate keys per sort) that keeps the slower of the
//! two threads wait-free (Sec. IV-C; cross-validated against
//! [`crate::model`] and the engine's virtual pipeline by property tests).
//! Since `p = m/T_p` and `c = m/T_c` over the same segment,
//! `c/(p+c) = T_p/(T_p+T_c)`, so the controller needs only the two times.

use textmr_engine::controller::{SpillController, SpillObservation};

/// Configuration of the spill-matcher.
#[derive(Debug, Clone, Copy)]
pub struct SpillMatcherConfig {
    /// Fraction used before the first observation (Hadoop's default).
    pub initial: f64,
    /// Lower clamp on the adapted fraction.
    pub min_fraction: f64,
    /// Upper clamp on the adapted fraction. Slightly below 1.0 so the
    /// producer retains headroom for the record in flight.
    pub max_fraction: f64,
    /// Exponential smoothing factor for the observed times in `[0,1]`:
    /// 1.0 = use only the last spill (the paper's policy), lower values
    /// damp measurement noise.
    pub smoothing: f64,
}

impl Default for SpillMatcherConfig {
    fn default() -> Self {
        SpillMatcherConfig {
            initial: 0.8,
            min_fraction: 0.05,
            max_fraction: 0.95,
            smoothing: 1.0,
        }
    }
}

/// The adaptive controller. One instance per map task (fresh state).
#[derive(Debug)]
pub struct SpillMatcher {
    cfg: SpillMatcherConfig,
    /// Smoothed per-byte produce time (ns/byte).
    tp_per_byte: Option<f64>,
    /// Smoothed per-byte consume time (ns/byte).
    tc_per_byte: Option<f64>,
    /// Fractions chosen so far (diagnostics / tests).
    history: Vec<f64>,
}

impl SpillMatcher {
    /// New controller with the given configuration.
    pub fn new(cfg: SpillMatcherConfig) -> Self {
        assert!(cfg.initial > 0.0 && cfg.initial <= 1.0);
        assert!(cfg.min_fraction > 0.0 && cfg.min_fraction <= cfg.max_fraction);
        assert!(cfg.max_fraction <= 1.0);
        assert!((0.0..=1.0).contains(&cfg.smoothing));
        SpillMatcher {
            cfg,
            tp_per_byte: None,
            tc_per_byte: None,
            history: Vec::new(),
        }
    }

    /// Fractions chosen so far, in order.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Eq. 1 from smoothed per-byte times.
    fn equation_one(tp: f64, tc: f64) -> f64 {
        // c/(p+c) = T_p/(T_p + T_c) for a common segment size.
        let frac = tp / (tp + tc).max(f64::MIN_POSITIVE);
        frac.max(0.5)
    }

    fn smooth(old: Option<f64>, new: f64, lambda: f64) -> f64 {
        match old {
            None => new,
            Some(o) => lambda * new + (1.0 - lambda) * o,
        }
    }
}

impl Default for SpillMatcher {
    fn default() -> Self {
        Self::new(SpillMatcherConfig::default())
    }
}

impl SpillController for SpillMatcher {
    fn initial_fraction(&mut self) -> f64 {
        self.history.push(self.cfg.initial);
        self.cfg.initial
    }

    fn next_fraction(&mut self, obs: &SpillObservation) -> f64 {
        let bytes = obs.bytes.max(1) as f64;
        let tp = obs.produce_ns.max(1) as f64 / bytes;
        let tc = obs.consume_ns.max(1) as f64 / bytes;
        self.tp_per_byte = Some(Self::smooth(self.tp_per_byte, tp, self.cfg.smoothing));
        self.tc_per_byte = Some(Self::smooth(self.tc_per_byte, tc, self.cfg.smoothing));
        let x = Self::equation_one(self.tp_per_byte.unwrap(), self.tc_per_byte.unwrap())
            .clamp(self.cfg.min_fraction, self.cfg.max_fraction);
        self.history.push(x);
        x
    }
}

/// Factory for plugging the spill-matcher into a
/// [`textmr_engine::cluster::JobConfig`].
pub fn spill_matcher_factory(
    cfg: SpillMatcherConfig,
) -> textmr_engine::controller::SpillControllerFactory {
    std::sync::Arc::new(move |_task| Box::new(SpillMatcher::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bytes: usize, produce_ns: u64, consume_ns: u64) -> SpillObservation {
        SpillObservation {
            bytes,
            produce_ns,
            consume_ns,
            capacity: 1 << 20,
        }
    }

    #[test]
    fn fast_consumer_pushes_fraction_up() {
        let mut m = SpillMatcher::default();
        // Producing is 4× slower than consuming: x = 4/(4+1) = 0.8.
        let x = m.next_fraction(&obs(1000, 4000, 1000));
        assert!((x - 0.8).abs() < 1e-9, "x={x}");
    }

    #[test]
    fn slow_consumer_floors_at_half() {
        let mut m = SpillMatcher::default();
        // Consuming is 9× slower: c/(p+c) = 0.1 → floored at 1/2.
        let x = m.next_fraction(&obs(1000, 1000, 9000));
        assert!((x - 0.5).abs() < 1e-9, "x={x}");
    }

    #[test]
    fn balanced_rates_give_half() {
        let mut m = SpillMatcher::default();
        let x = m.next_fraction(&obs(500, 7000, 7000));
        assert!((x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_tracks_changing_rates() {
        let mut m = SpillMatcher::default();
        let x1 = m.next_fraction(&obs(1000, 9000, 1000)); // producer slow → 0.9
        let x2 = m.next_fraction(&obs(1000, 1000, 9000)); // consumer slow → 0.5
        assert!(x1 > 0.85);
        assert!(
            (x2 - 0.5).abs() < 1e-9,
            "no-smoothing controller must react fully"
        );
    }

    #[test]
    fn smoothing_damps_reaction() {
        let mut m = SpillMatcher::new(SpillMatcherConfig {
            smoothing: 0.5,
            ..Default::default()
        });
        let _ = m.next_fraction(&obs(1000, 9000, 1000));
        let x2 = m.next_fraction(&obs(1000, 1000, 9000));
        // Smoothed times: tp = (9+1)/2 = 5, tc = (1+9)/2 = 5 → x = 0.5…
        // but crucially above the no-smoothing response only in history
        // terms; here both yield 0.5, so check the smoothed states differ
        // from raw by probing a third observation.
        let x3 = m.next_fraction(&obs(1000, 1000, 9000));
        assert!(x2 >= 0.5 && x3 >= 0.5);
    }

    #[test]
    fn clamps_apply() {
        let mut m = SpillMatcher::new(SpillMatcherConfig {
            max_fraction: 0.7,
            ..Default::default()
        });
        let x = m.next_fraction(&obs(1000, 99_000, 1));
        assert!(x <= 0.7);
    }

    #[test]
    fn initial_fraction_is_config() {
        let mut m = SpillMatcher::default();
        assert_eq!(m.initial_fraction(), 0.8);
        assert_eq!(m.history(), &[0.8]);
    }

    #[test]
    fn eq1_matches_rate_form() {
        // x = max{c/(p+c), ½} computed from rates must equal the T-form.
        for (tp, tc) in [(3.0f64, 1.0), (1.0, 3.0), (2.0, 2.0), (10.0, 0.5)] {
            let p = 1.0 / tp;
            let c = 1.0 / tc;
            let rate_form = (c / (p + c)).max(0.5);
            let t_form = SpillMatcher::equation_one(tp, tc);
            assert!((rate_form - t_form).abs() < 1e-12);
        }
    }
}
