//! FNV-1a hashing for hot-path hash tables — re-exported from
//! `textmr_engine::hash` so the engine's hash-grouping mode and the
//! frequency buffer share one implementation (and one cost profile).

// textmr-lint: allow(unordered-iteration, reason = "re-export of the engine's fixed-seed FNV aliases; iteration order is a pure function of the key set — see engine::hash")
pub use textmr_engine::hash::{FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
