//! FNV-1a hashing for hot-path hash tables — re-exported from
//! `textmr_engine::hash` so the engine's hash-grouping mode and the
//! frequency buffer share one implementation (and one cost profile).

pub use textmr_engine::hash::{FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
