//! Auto-tuning of the profiling sampling fraction `s` (Sec. III-C).
//!
//! The paper models the key stream as i.i.d. Zipf(α) draws. Finding the
//! k-th most frequent key is a Bernoulli trial with success probability
//! `p_k = k^{-α} / H_{m,α}`, whose expected waiting time is `1/p_k`. The
//! profiling prefix must therefore satisfy
//!
//! ```text
//! n·s ≥ k^α · H_{m,α}
//! ```
//!
//! A larger `s` wastes optimization opportunity (records seen during
//! profiling still take the slow path); a smaller one risks an inaccurate
//! top-k. We take the bound with a small safety factor.

use textmr_data_free::harmonic_approx;

/// A tiny re-implementation of `textmr_data::zipf::harmonic_approx`, kept
/// here so the core crate does not depend on the data-generation crate.
mod textmr_data_free {
    /// Euler–Maclaurin approximation of `H_{m,α}` (see
    /// `textmr_data::zipf::harmonic_approx` for the derivation; the two are
    /// cross-checked by tests in `textmr-bench`).
    pub fn harmonic_approx(m: usize, alpha: f64) -> f64 {
        let m = m as f64;
        if (alpha - 1.0).abs() < 1e-9 {
            m.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * m)
        } else {
            (m.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
                + 0.5 * (1.0 + m.powf(-alpha))
                + alpha * (1.0 - m.powf(-alpha - 1.0)) / 12.0
        }
    }
}

/// Expected number of stream records needed before the k-th most frequent
/// key of a Zipf(α) distribution over `m` keys appears: `k^α · H_{m,α}`.
pub fn required_samples(k: usize, alpha: f64, m: usize) -> f64 {
    assert!(k >= 1 && m >= 1);
    (k as f64).powf(alpha) * harmonic_approx(m.max(k), alpha)
}

/// Tuning bounds: `s` is clamped into this range regardless of the model's
/// suggestion (a profiling stage that is too short is statistically
/// meaningless; one that is too long forfeits the optimization).
#[derive(Debug, Clone, Copy)]
pub struct TuneBounds {
    /// Lower clamp for `s`.
    pub min_s: f64,
    /// Upper clamp for `s`.
    pub max_s: f64,
    /// Safety multiplier on the expected-waiting-time bound.
    pub safety: f64,
}

impl Default for TuneBounds {
    fn default() -> Self {
        TuneBounds {
            min_s: 0.001,
            max_s: 0.5,
            safety: 2.0,
        }
    }
}

/// Choose the sampling fraction `s` for a stream of `n` expected records,
/// targeting the top `k` keys of an estimated Zipf(α) distribution over
/// `m` distinct keys.
pub fn sampling_fraction(n: u64, k: usize, alpha: f64, m: usize, bounds: TuneBounds) -> f64 {
    if n == 0 {
        return bounds.max_s;
    }
    let needed = required_samples(k, alpha, m) * bounds.safety;
    (needed / n as f64).clamp(bounds.min_s, bounds.max_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_samples_grows_with_k_and_alpha() {
        let base = required_samples(100, 1.0, 100_000);
        assert!(required_samples(1000, 1.0, 100_000) > base);
        assert!(required_samples(100, 1.5, 100_000) > base);
    }

    #[test]
    fn flatter_distributions_need_more_samples_per_alpha_scaling() {
        // With α = 0 (uniform), p_k = 1/m for every k: required samples is
        // H_{m,0} = m, independent of k.
        let r = required_samples(10, 0.0, 1000);
        assert!((r - 1000.0).abs() / 1000.0 < 0.01, "r={r}");
    }

    #[test]
    fn fraction_scales_inversely_with_stream_length() {
        let b = TuneBounds::default();
        let s_small = sampling_fraction(100_000, 1000, 1.0, 100_000, b);
        let s_large = sampling_fraction(100_000_000, 1000, 1.0, 100_000, b);
        assert!(s_large < s_small);
    }

    #[test]
    fn fraction_respects_bounds() {
        let b = TuneBounds::default();
        // Tiny stream → clamped at max.
        assert_eq!(sampling_fraction(10, 10_000, 1.2, 1_000_000, b), b.max_s);
        // Astronomically long stream → clamped at min.
        assert_eq!(sampling_fraction(u64::MAX, 10, 1.0, 100, b), b.min_s);
        // Zero-length stream → max (degenerate, profiling never completes
        // anyway).
        assert_eq!(sampling_fraction(0, 10, 1.0, 100, b), b.max_s);
    }

    #[test]
    fn paper_scale_sanity() {
        // Text corpus scale: k=3000, α≈1, m≈25M unique words, n≈1.45B
        // records → the model suggests a very small s (paper used 0.01).
        let s = sampling_fraction(1_450_000_000, 3000, 1.0, 24_700_000, TuneBounds::default());
        assert!(s <= 0.01, "s={s}");
        assert!(s >= 0.0001);
    }
}
