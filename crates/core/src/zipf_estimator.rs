//! Zipf-parameter estimation (the paper's pre-profiling step, Sec. III-C).
//!
//! Frequency-buffering must choose its sampling fraction `s` before it
//! knows the key distribution. The paper's answer: watch ~1 % of the
//! intermediate records, assume the distribution is Zipf(α) (justified via
//! Belevitch's first-order truncation argument), and estimate α by linear
//! regression of `log f_i` on `log i` over the observed rank/frequency
//! pairs — since `f_i = C·i^{-α}` gives `log f_i = −α·log i + log C`.

// textmr-lint: allow(unordered-iteration, reason = "fixed-seed FNV: iteration order is a pure function of the per-task key set, so downstream sketch seeding is deterministic")
use crate::fnv::FnvHashMap;

/// Default cap on distinct keys tracked during pre-profiling; bounds
/// memory on adversarial streams while far exceeding what the regression
/// needs.
pub const DEFAULT_MAX_KEYS: usize = 65_536;

/// Accumulates exact key counts over a small prefix of the stream, then
/// fits α.
#[derive(Debug)]
pub struct ZipfEstimator {
    // textmr-lint: allow(unordered-iteration, reason = "per-task counters with fixed-seed FNV; any iteration order is reproducible run-to-run")
    counts: FnvHashMap<Box<[u8]>, u64>,
    max_keys: usize,
    /// Records seen (including ones dropped once the key cap was hit).
    seen: u64,
}

impl Default for ZipfEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_KEYS)
    }
}

/// Result of the α fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfFit {
    /// Estimated Zipf exponent, clamped to `[0.1, 3.0]`.
    pub alpha: f64,
    /// Number of rank/frequency points used in the regression.
    pub points: usize,
    /// Distinct keys observed in the sample.
    pub distinct: usize,
}

impl ZipfEstimator {
    /// New estimator tracking at most `max_keys` distinct keys.
    pub fn new(max_keys: usize) -> Self {
        ZipfEstimator {
            // textmr-lint: allow(unordered-iteration, reason = "see the field annotation: fixed-seed, per-task")
            counts: FnvHashMap::default(),
            max_keys: max_keys.max(16),
            seen: 0,
        }
    }

    /// Observe one intermediate key.
    pub fn observe(&mut self, key: &[u8]) {
        self.seen += 1;
        if let Some(c) = self.counts.get_mut(key) {
            *c += 1;
        } else if self.counts.len() < self.max_keys {
            self.counts.insert(key.into(), 1);
        }
        // Keys beyond the cap are dropped; with a skewed stream the head —
        // which drives the fit — is captured long before the cap is hit.
    }

    /// Records observed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Distinct keys currently tracked.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Consume the accumulated counts (e.g. to seed a Space-Saving sketch).
    // textmr-lint: allow(unordered-iteration, reason = "fixed-seed FNV: the consumer's iteration order is deterministic for a given key set")
    pub fn into_counts(self) -> FnvHashMap<Box<[u8]>, u64> {
        self.counts
    }

    /// Fit α by least squares on `(log rank, log frequency)`.
    ///
    /// Ranks whose count is 1 are down-weighted by truncation: the tail of
    /// a short sample is dominated by singletons whose log-frequency is
    /// pinned at 0 and would bias α low; we use ranks up to the last count
    /// ≥ 2, but never fewer than `MIN_POINTS` points when available.
    pub fn fit(&self) -> ZipfFit {
        /// Regression needs at least this many points to be meaningful.
        pub const MIN_POINTS: usize = 5;

        let mut freqs: Vec<u64> = self.counts.values().copied().collect();
        // textmr-lint: allow(sort-unstable-key-runs, reason = "plain u64 counts; equal elements are indistinguishable")
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let distinct = freqs.len();
        if distinct < 2 {
            return ZipfFit {
                alpha: 1.0,
                points: distinct,
                distinct,
            };
        }
        // Truncate the singleton tail (keep at least MIN_POINTS).
        let mut n = freqs.iter().take_while(|&&f| f >= 2).count();
        n = n.max(MIN_POINTS.min(distinct)).min(distinct);
        let pts = &freqs[..n];
        if n < 2 {
            return ZipfFit {
                alpha: 1.0,
                points: n,
                distinct,
            };
        }
        // Least squares: y = a + b x with x = ln(rank), y = ln(freq).
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &f) in pts.iter().enumerate() {
            let x = ((i + 1) as f64).ln();
            let y = (f as f64).ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        let alpha = if denom.abs() < 1e-12 {
            1.0
        } else {
            let slope = (nf * sxy - sx * sy) / denom;
            (-slope).clamp(0.1, 3.0)
        };
        ZipfFit {
            alpha,
            points: n,
            distinct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a deterministic stream where rank i appears round(C·i^{-α})
    /// times, shuffled by interleaving.
    fn zipf_stream(alpha: f64, ranks: usize, c: f64) -> Vec<Vec<u8>> {
        let mut items = Vec::new();
        for i in 1..=ranks {
            let f = (c * (i as f64).powf(-alpha)).round() as usize;
            for _ in 0..f.max(1) {
                items.push(format!("key{i}").into_bytes());
            }
        }
        // Deterministic interleave so the estimator sees a mixed prefix.
        let mut out = Vec::with_capacity(items.len());
        let (mut lo, mut hi) = (0usize, items.len());
        while lo < hi {
            out.push(items[lo].clone());
            lo += 1;
            if lo < hi {
                hi -= 1;
                out.push(items[hi].clone());
            }
        }
        out
    }

    #[test]
    fn recovers_alpha_one() {
        let mut est = ZipfEstimator::default();
        for k in zipf_stream(1.0, 500, 5000.0) {
            est.observe(&k);
        }
        let fit = est.fit();
        assert!((fit.alpha - 1.0).abs() < 0.15, "alpha={}", fit.alpha);
    }

    #[test]
    fn recovers_alpha_low_skew() {
        let mut est = ZipfEstimator::default();
        for k in zipf_stream(0.8, 500, 5000.0) {
            est.observe(&k);
        }
        let fit = est.fit();
        assert!((fit.alpha - 0.8).abs() < 0.15, "alpha={}", fit.alpha);
    }

    #[test]
    fn uniform_stream_fits_near_zero() {
        let mut est = ZipfEstimator::default();
        for round in 0..20 {
            for i in 0..100 {
                let _ = round;
                est.observe(format!("k{i}").as_bytes());
            }
        }
        let fit = est.fit();
        assert!(fit.alpha < 0.2, "alpha={}", fit.alpha);
    }

    #[test]
    fn degenerate_inputs_default_to_one() {
        let est = ZipfEstimator::default();
        assert_eq!(est.fit().alpha, 1.0);
        let mut est = ZipfEstimator::default();
        est.observe(b"only");
        assert_eq!(est.fit().alpha, 1.0);
    }

    #[test]
    fn key_cap_is_respected() {
        let mut est = ZipfEstimator::new(100);
        for i in 0..10_000 {
            est.observe(format!("k{i}").as_bytes());
        }
        assert!(est.distinct() <= 100);
        assert_eq!(est.seen(), 10_000);
    }
}
