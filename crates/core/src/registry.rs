//! Per-node frequent-key sharing (paper Sec. III-B, last paragraph).
//!
//! "If the key distribution does not significantly change across different
//! map tasks within a single job, then it is redundant to profile for the
//! top-k keys in each task. Instead, our system finds the top-k
//! frequent-key set just once for all the tasks that run on a single node;
//! after the first task, the top-k are shared with all subsequent ones."
//!
//! The registry is a job-scoped, thread-safe map from node id to the
//! frozen top-k key set. Each node has a **designated publisher** — the
//! lowest-id map task scheduled on the node, chosen from the split plan by
//! the job driver — which profiles and [`publish`](FrequentKeyRegistry::publish)es;
//! every other task on the node [`wait_for`](FrequentKeyRegistry::wait_for)s
//! the designated outcome instead of racing to publish. "Whichever task
//! froze first" would make absorption counts depend on pool scheduling;
//! pinning the publisher makes them identical at any worker-thread count.
//! A designated task that never freezes a set (tiny input, inactive
//! filter, panic) [`decline`](FrequentKeyRegistry::decline)s so waiters
//! fall back to profiling for themselves rather than blocking forever.
//!
//! Deadlock-freedom when waiters block: the worker pool claims task
//! indices in ascending order, so by the time any higher-id task on a node
//! is running, the node's lowest-id task has already been claimed (it is
//! running or finished) — its publish/decline is always forthcoming.
//! Waiters additionally poll a caller-supplied cancellation check so a job
//! that aborts mid-flight drains instead of hanging.

// textmr-lint: allow(unordered-iteration, reason = "registry slots are looked up by id and never iterated")
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A frozen, shareable top-k frequent-key set.
pub type SharedKeySet = Arc<Vec<Box<[u8]>>>;

/// One node's slot: absent = undecided, `Some(set)` = published,
/// `None` = declined (waiters must profile for themselves).
type Slot = Option<SharedKeySet>;

/// Job-scoped registry of frozen frequent-key sets, one per node.
#[derive(Debug, Default)]
pub struct FrequentKeyRegistry {
    // textmr-lint: allow(unordered-iteration, reason = "keyed by slot id, lookup-only; never iterated")
    slots: Mutex<HashMap<usize, Slot>>,
    decided: Condvar,
}

impl FrequentKeyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `keys` as node `node`'s frequent set. First decision wins;
    /// later publications for the same node are ignored (all tasks on a
    /// node see the same distribution, so the designated set is as good as
    /// any and keeping it makes runs deterministic).
    pub fn publish(&self, node: usize, keys: Vec<Box<[u8]>>) {
        let mut slots = self.slots.lock().expect("registry lock poisoned");
        slots.entry(node).or_insert_with(|| Some(Arc::new(keys)));
        self.decided.notify_all();
    }

    /// Record that node `node`'s designated publisher will never publish,
    /// releasing any waiters to profile for themselves. Ignored if the
    /// node's slot is already decided.
    pub fn decline(&self, node: usize) {
        let mut slots = self.slots.lock().expect("registry lock poisoned");
        slots.entry(node).or_insert(None);
        self.decided.notify_all();
    }

    /// The frequent set published for `node`, if the slot is decided and
    /// was published (declined or undecided both yield `None`).
    pub fn lookup(&self, node: usize) -> Option<SharedKeySet> {
        self.slots
            .lock()
            .expect("registry lock poisoned")
            .get(&node)
            .cloned()
            .flatten()
    }

    /// Block until node `node`'s slot is decided, returning the published
    /// set (or `None` if the publisher declined). `cancelled` is polled
    /// between short waits; once it returns `true` the wait gives up and
    /// returns `None` so an aborting job drains promptly.
    pub fn wait_for(&self, node: usize, cancelled: &dyn Fn() -> bool) -> Option<SharedKeySet> {
        let mut slots = self.slots.lock().expect("registry lock poisoned");
        loop {
            if let Some(slot) = slots.get(&node) {
                return slot.clone();
            }
            if cancelled() {
                return None;
            }
            let (guard, _timeout) = self
                .decided
                .wait_timeout(slots, Duration::from_millis(10))
                .expect("registry lock poisoned");
            slots = guard;
        }
    }

    /// Number of nodes whose slot carries a published set.
    pub fn nodes_published(&self) -> usize {
        self.slots
            .lock()
            .expect("registry lock poisoned")
            .values()
            .filter(|s| s.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(v: &[&str]) -> Vec<Box<[u8]>> {
        v.iter().map(|s| s.as_bytes().into()).collect()
    }

    #[test]
    fn publish_then_lookup() {
        let r = FrequentKeyRegistry::new();
        assert!(r.lookup(0).is_none());
        r.publish(0, keys(&["the", "of"]));
        let got = r.lookup(0).unwrap();
        assert_eq!(got.len(), 2);
        assert!(r.lookup(1).is_none());
    }

    #[test]
    fn first_publisher_wins() {
        let r = FrequentKeyRegistry::new();
        r.publish(2, keys(&["a"]));
        r.publish(2, keys(&["b", "c"]));
        let got = r.lookup(2).unwrap();
        assert_eq!(got.as_slice(), keys(&["a"]).as_slice());
    }

    #[test]
    fn decline_is_sticky_only_until_nothing_else_decides() {
        let r = FrequentKeyRegistry::new();
        r.decline(1);
        assert!(r.lookup(1).is_none());
        assert_eq!(r.nodes_published(), 0);
        // First decision wins: a late publish after decline is ignored.
        r.publish(1, keys(&["a"]));
        assert!(r.lookup(1).is_none());
    }

    #[test]
    fn nodes_are_independent() {
        let r = FrequentKeyRegistry::new();
        r.publish(0, keys(&["x"]));
        r.publish(1, keys(&["y"]));
        assert_eq!(r.nodes_published(), 2);
        assert_ne!(r.lookup(0).unwrap(), r.lookup(1).unwrap());
    }

    #[test]
    fn concurrent_publish_is_safe() {
        let r = Arc::new(FrequentKeyRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    r.publish(0, keys(&[&format!("k{i}")]));
                    r.lookup(0).unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Everyone sees the same winning set.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn wait_for_returns_already_decided_slot() {
        let r = FrequentKeyRegistry::new();
        r.publish(3, keys(&["k"]));
        assert_eq!(r.wait_for(3, &|| false).unwrap().len(), 1);
        r.decline(4);
        assert!(r.wait_for(4, &|| false).is_none());
    }

    #[test]
    fn wait_for_blocks_until_publish() {
        let r = Arc::new(FrequentKeyRegistry::new());
        let waiter = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || r.wait_for(7, &|| false))
        };
        // Let the waiter park, then publish.
        std::thread::sleep(Duration::from_millis(20));
        r.publish(7, keys(&["w"]));
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.as_slice(), keys(&["w"]).as_slice());
    }

    #[test]
    fn wait_for_respects_cancellation() {
        let r = FrequentKeyRegistry::new();
        // Nothing will ever decide node 9; cancellation unblocks the wait.
        assert!(r.wait_for(9, &|| true).is_none());
    }
}
