//! Per-node frequent-key sharing (paper Sec. III-B, last paragraph).
//!
//! "If the key distribution does not significantly change across different
//! map tasks within a single job, then it is redundant to profile for the
//! top-k keys in each task. Instead, our system finds the top-k
//! frequent-key set just once for all the tasks that run on a single node;
//! after the first task, the top-k are shared with all subsequent ones."
//!
//! The registry is a job-scoped, thread-safe map from node id to the
//! frozen top-k key set. The first task on a node to finish profiling
//! publishes; later tasks construct their table directly from the lookup.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A frozen, shareable top-k frequent-key set.
pub type SharedKeySet = Arc<Vec<Box<[u8]>>>;

/// Job-scoped registry of frozen frequent-key sets, one per node.
#[derive(Debug, Default)]
pub struct FrequentKeyRegistry {
    slots: Mutex<HashMap<usize, SharedKeySet>>,
}

impl FrequentKeyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `keys` as node `node`'s frequent set. First publisher wins;
    /// later publications for the same node are ignored (all tasks on a
    /// node see the same distribution, so the first frozen set is as good
    /// as any and keeping it makes runs deterministic).
    pub fn publish(&self, node: usize, keys: Vec<Box<[u8]>>) {
        let mut slots = self.slots.lock();
        slots.entry(node).or_insert_with(|| Arc::new(keys));
    }

    /// The frequent set published for `node`, if any.
    pub fn lookup(&self, node: usize) -> Option<SharedKeySet> {
        self.slots.lock().get(&node).cloned()
    }

    /// Number of nodes with a published set.
    pub fn nodes_published(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(v: &[&str]) -> Vec<Box<[u8]>> {
        v.iter().map(|s| s.as_bytes().into()).collect()
    }

    #[test]
    fn publish_then_lookup() {
        let r = FrequentKeyRegistry::new();
        assert!(r.lookup(0).is_none());
        r.publish(0, keys(&["the", "of"]));
        let got = r.lookup(0).unwrap();
        assert_eq!(got.len(), 2);
        assert!(r.lookup(1).is_none());
    }

    #[test]
    fn first_publisher_wins() {
        let r = FrequentKeyRegistry::new();
        r.publish(2, keys(&["a"]));
        r.publish(2, keys(&["b", "c"]));
        let got = r.lookup(2).unwrap();
        assert_eq!(got.as_slice(), keys(&["a"]).as_slice());
    }

    #[test]
    fn nodes_are_independent() {
        let r = FrequentKeyRegistry::new();
        r.publish(0, keys(&["x"]));
        r.publish(1, keys(&["y"]));
        assert_eq!(r.nodes_published(), 2);
        assert_ne!(r.lookup(0).unwrap(), r.lookup(1).unwrap());
    }

    #[test]
    fn concurrent_publish_is_safe() {
        let r = Arc::new(FrequentKeyRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    r.publish(0, keys(&[&format!("k{i}")]));
                    r.lookup(0).unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Everyone sees the same winning set.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
