//! # textmr-core — frequency-buffering and spill-matcher
//!
//! The primary contribution of *"Reducing MapReduce Abstraction Costs for
//! Text-Centric Applications"* (Hsiao, Cafarella & Narayanasamy, ICPP
//! 2014), implemented as plug-ins for the `textmr-engine` MapReduce
//! framework. Neither optimization requires user-code changes:
//!
//! * **Frequency-buffering** ([`freq_table::FrequencyBuffer`]): text-centric
//!   map outputs have Zipf-skewed keys, so a small in-memory hash table of
//!   the most frequent keys can combine a large share of intermediate
//!   records *before* they pay the sort/spill/merge/shuffle toll. Frequent
//!   keys are found online by a [`space_saving::SpaceSaving`] sketch, whose
//!   sampling length is auto-tuned ([`autotune`]) from a Zipf-α estimate
//!   ([`zipf_estimator::ZipfEstimator`]); each node's first task shares its
//!   frozen top-k via the [`registry::FrequentKeyRegistry`].
//!
//! * **Spill-matcher** ([`spill_matcher::SpillMatcher`]): adapts the spill
//!   fraction per spill to `x = max{c/(p+c), ½}` (Eq. 1) so the slower of
//!   the map/support threads never waits, while spills stay as large as
//!   possible for combine efficiency. The analytic model behind Eq. 1
//!   lives in [`model`] and cross-validates the engine's pipeline.
//!
//! [`predictors`] adds the Ideal/LRU baselines of the paper's Figure 7.
//!
//! ## Usage
//!
//! ```
//! use textmr_core::{optimized, OptimizationConfig};
//! use textmr_engine::prelude::*;
//!
//! // Any engine JobConfig can be upgraded; user job code is untouched.
//! let cfg: JobConfig = optimized(JobConfig::default(), OptimizationConfig::default());
//! assert!(cfg.emit_filter.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod autotune;
pub mod fnv;
pub mod freq_table;
pub mod model;
pub mod predictors;
pub mod registry;
pub mod space_saving;
pub mod spill_matcher;
pub mod zipf_estimator;

pub use freq_table::{frequency_buffer_factory, FreqBufferConfig, FrequencyBuffer};
pub use registry::FrequentKeyRegistry;
pub use space_saving::SpaceSaving;
pub use spill_matcher::{spill_matcher_factory, SpillMatcher, SpillMatcherConfig};
pub use zipf_estimator::ZipfEstimator;

use std::sync::Arc;
use textmr_engine::cluster::JobConfig;

/// Which of the paper's optimizations to enable, and their knobs.
#[derive(Debug, Clone)]
pub struct OptimizationConfig {
    /// Enable frequency-buffering with this configuration.
    pub frequency_buffering: Option<FreqBufferConfig>,
    /// Enable spill-matcher with this configuration.
    pub spill_matcher: Option<SpillMatcherConfig>,
    /// Share each node's frozen top-k across its tasks.
    pub share_frequent_keys: bool,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig {
            frequency_buffering: Some(FreqBufferConfig::default()),
            spill_matcher: Some(SpillMatcherConfig::default()),
            share_frequent_keys: true,
        }
    }
}

impl OptimizationConfig {
    /// Only frequency-buffering (the paper's "FreqOpt" rows).
    pub fn freq_only(cfg: FreqBufferConfig) -> Self {
        OptimizationConfig {
            frequency_buffering: Some(cfg),
            spill_matcher: None,
            share_frequent_keys: true,
        }
    }

    /// Only spill-matcher (the paper's "SpillOpt" rows).
    pub fn spill_only(cfg: SpillMatcherConfig) -> Self {
        OptimizationConfig {
            frequency_buffering: None,
            spill_matcher: Some(cfg),
            share_frequent_keys: false,
        }
    }

    /// Neither optimization (the paper's "Baseline" rows).
    pub fn baseline() -> Self {
        OptimizationConfig {
            frequency_buffering: None,
            spill_matcher: None,
            share_frequent_keys: false,
        }
    }
}

/// Upgrade an engine [`JobConfig`] with the paper's optimizations. The
/// returned config runs the *same user job* — no code changes — with the
/// requested plug-ins installed.
pub fn optimized(mut job_cfg: JobConfig, opt: OptimizationConfig) -> JobConfig {
    if let Some(sm) = opt.spill_matcher {
        job_cfg.spill_controller = spill_matcher_factory(sm);
    }
    if let Some(fb) = opt.frequency_buffering {
        let registry = if opt.share_frequent_keys {
            Some(Arc::new(FrequentKeyRegistry::new()))
        } else {
            None
        };
        job_cfg.emit_filter = Some(frequency_buffer_factory(fb, registry));
    } else {
        job_cfg.emit_filter = None;
    }
    job_cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_installs_requested_plugins() {
        let base = optimized(JobConfig::default(), OptimizationConfig::baseline());
        assert!(base.emit_filter.is_none());

        let freq = optimized(
            JobConfig::default(),
            OptimizationConfig::freq_only(FreqBufferConfig::default()),
        );
        assert!(freq.emit_filter.is_some());

        let both = optimized(JobConfig::default(), OptimizationConfig::default());
        assert!(both.emit_filter.is_some());
    }
}
