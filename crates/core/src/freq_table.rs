//! Frequency-buffering (paper Section III): the frequent-key combine
//! buffer, with its three-stage lifecycle.
//!
//! 1. **Pre-profile** (~1 % of input records): exact counts feed the
//!    [`ZipfEstimator`]; at the end, α̂ fixes the sampling fraction `s`
//!    via the auto-tuner (unless the caller pinned `s`, as the paper's
//!    experiments do).
//! 2. **Profile** (until `s·N` input records): a [`SpaceSaving`] sketch —
//!    seeded with the pre-profile's exact counts — tracks candidate keys.
//!    All records still take the normal spill path.
//! 3. **Optimize**: the sketch's top-k keys are frozen into a hash table
//!    that absorbs matching emissions. Per key, values accumulate until
//!    the key's space limit, then the user's `combine()` collapses them;
//!    if a combined record still does not fit, it overflows to the normal
//!    spill path. At end of input everything drains, combined, to the
//!    spill path.
//!
//! The table's memory is carved out of the spill buffer (the engine's
//! `filter_budget_fraction`), so total memory is constant — the paper's
//! 30 % split. The per-key limit is `budget / k`, making the whole table's
//! footprint ≤ budget by construction.
//!
//! A [`FrequentKeyRegistry`] lets the
//! node's *designated* task (the lowest task id scheduled on the node —
//! `FilterCtx::node_first_task`) publish its frozen top-k so every other
//! task on the node skips stages 1–2 entirely (Sec. III-B, last
//! paragraph). Non-designated tasks block on the designated outcome; if
//! the designated task never freezes a set, it declines on drop and the
//! waiters profile for themselves. Pinning the publisher (instead of
//! first-to-freeze-wins) makes absorption counts — and hence job
//! signatures — identical at any worker-thread count.

use crate::autotune::{sampling_fraction, TuneBounds};
// textmr-lint: allow(unordered-iteration, reason = "fixed-seed FNV; every iteration site below collects and sorts keys before emitting")
use crate::fnv::FnvHashMap;
use crate::registry::FrequentKeyRegistry;
use crate::space_saving::SpaceSaving;
use crate::zipf_estimator::ZipfEstimator;
use std::sync::Arc;
use textmr_engine::codec::{read_bytes, write_bytes};
use textmr_engine::controller::{EmitFilter, EmitFilterFactory, FilterCtx};
use textmr_engine::job::{combine_values, Emit, Job};

/// Tuning knobs for frequency-buffering.
#[derive(Debug, Clone)]
pub struct FreqBufferConfig {
    /// Number of frequent keys to track (the paper's `k`; 3000 for text,
    /// 10000 for logs).
    pub k: usize,
    /// Fixed sampling fraction `s` over input records; `None` enables the
    /// auto-tuner (Sec. III-C).
    pub sampling_fraction: Option<f64>,
    /// Fraction of input records used for the α-estimation pre-profile.
    pub pre_profile_fraction: f64,
    /// Auto-tuner clamps.
    pub bounds: TuneBounds,
}

impl Default for FreqBufferConfig {
    fn default() -> Self {
        FreqBufferConfig {
            k: 3000,
            sampling_fraction: None,
            pre_profile_fraction: 0.01,
            bounds: TuneBounds::default(),
        }
    }
}

/// Per-key value accumulator: values stored back to back, length-framed,
/// in one growing buffer whose allocation is reused across combines — the
/// hot absorption path performs no per-record allocation.
#[derive(Debug, Default)]
struct KeyBuf {
    /// Length-framed values.
    data: Vec<u8>,
    /// Number of framed values in `data`.
    count: u32,
}

impl KeyBuf {
    #[inline]
    fn push(&mut self, value: &[u8]) {
        write_bytes(&mut self.data, value);
        self.count += 1;
    }

    /// Borrow all framed values into `scratch` (cleared first).
    fn gather<'a>(&'a self, scratch: &mut Vec<&'a [u8]>) {
        scratch.clear();
        let mut pos = 0usize;
        while let Some(v) = read_bytes(&self.data, &mut pos) {
            scratch.push(v);
        }
    }
}

/// The frozen frequent-key table (Optimize stage).
struct FreqTable {
    // textmr-lint: allow(unordered-iteration, reason = "drain sites sort the key list before emission, so table order never leaks")
    entries: FnvHashMap<Box<[u8]>, KeyBuf>,
    per_key_limit: usize,
    /// Reused scratch for combine calls.
    scratch: Vec<Vec<u8>>,
}

/// Minimum useful per-key value budget; below this, a key's values are
/// combined/flushed so often the table is pure overhead.
const MIN_PER_KEY_BYTES: usize = 256;

impl FreqTable {
    fn new(keys: impl IntoIterator<Item = Box<[u8]>>, per_key_limit: usize) -> Self {
        let entries = keys.into_iter().map(|k| (k, KeyBuf::default())).collect();
        FreqTable {
            entries,
            per_key_limit: per_key_limit.max(MIN_PER_KEY_BYTES),
            scratch: Vec::new(),
        }
    }
}

enum Stage {
    /// The job has no combiner: buffering values per key could never
    /// shrink them, so the filter passes everything through at (near) zero
    /// cost. Hadoop's frequency buffering is likewise only meaningful for
    /// jobs with a combine function.
    Disabled,
    PreProfile {
        est: ZipfEstimator,
    },
    Profile {
        sketch: SpaceSaving,
        target_inputs: u64,
    },
    Optimize(FreqTable),
}

/// The frequency-buffering [`EmitFilter`]. One instance per map task.
pub struct FrequencyBuffer {
    job: Arc<dyn Job>,
    cfg: FreqBufferConfig,
    /// Effective number of tracked keys: `cfg.k` capped by the memory
    /// budget (each key needs a useful value allowance).
    k: usize,
    stage: Stage,
    /// Memory budget for the table (bytes), carved from the spill buffer.
    budget: usize,
    /// Input records expected for this task.
    estimated_inputs: u64,
    /// Input records seen.
    inputs_seen: u64,
    /// Intermediate records offered.
    offered: u64,
    /// Records absorbed into the table.
    absorbed: u64,
    /// Time spent inside the user's `combine()` since the last drain.
    user_combine_ns: u64,
    /// Node + registry for cross-task top-k sharing.
    node: usize,
    registry: Option<Arc<FrequentKeyRegistry>>,
    /// True when this task is the node's designated publisher (and a
    /// registry is in play): it must publish at freeze or decline on drop.
    publisher: bool,
    /// Whether the designated outcome has been recorded yet.
    published: bool,
}

impl FrequencyBuffer {
    /// Build a filter for one map task. With a registry, the node's
    /// designated task (`ctx.node_first_task`) profiles and publishes;
    /// every other task on the node waits for the designated outcome — a
    /// published top-k skips profiling entirely, a decline means profiling
    /// for itself (without publishing).
    pub fn new(
        ctx: &FilterCtx,
        cfg: FreqBufferConfig,
        registry: Option<Arc<FrequentKeyRegistry>>,
    ) -> Self {
        assert!(cfg.k > 0, "k must be positive");
        assert!(cfg.pre_profile_fraction > 0.0 && cfg.pre_profile_fraction < 1.0);
        let budget = ctx.budget_bytes.max(1024);
        // "k is largely fixed by the amount of memory available and the
        // size of intermediate data records" (Sec. III-C): cap the
        // requested k so every tracked key gets a useful value budget.
        let k = cfg.k.min(budget / MIN_PER_KEY_BYTES).max(1);
        let node = ctx.task.node;
        let designated = ctx.task.task == ctx.node_first_task;
        let publisher = designated && registry.is_some();
        let fresh_profile = || Stage::PreProfile {
            est: ZipfEstimator::default(),
        };
        let stage = if !ctx.job.has_combiner() {
            Stage::Disabled
        } else if publisher {
            fresh_profile()
        } else {
            match &registry {
                // Consumer: block on the designated task's outcome. Safe
                // because the worker pool claims task ids in ascending
                // order (the designated, lower-id task is already claimed)
                // and the wait polls the job's cancellation flag.
                Some(r) => {
                    let cancel = ctx.cancel.clone();
                    let cancelled = move || {
                        cancel
                            .as_ref()
                            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                    };
                    match r.wait_for(node, &cancelled) {
                        Some(keys) => {
                            Stage::Optimize(FreqTable::new(keys.iter().cloned(), budget / k))
                        }
                        None => fresh_profile(),
                    }
                }
                None => fresh_profile(),
            }
        };
        FrequencyBuffer {
            job: Arc::clone(&ctx.job),
            cfg,
            k,
            stage,
            budget,
            estimated_inputs: ctx.estimated_records.max(1),
            inputs_seen: 0,
            offered: 0,
            absorbed: 0,
            user_combine_ns: 0,
            node,
            registry,
            publisher,
            published: false,
        }
    }

    /// Records absorbed so far.
    pub fn absorbed_records(&self) -> u64 {
        self.absorbed
    }

    /// True once the filter is in its Optimize stage.
    pub fn is_optimizing(&self) -> bool {
        matches!(self.stage, Stage::Optimize(_))
    }

    fn pre_profile_target(&self) -> u64 {
        let raw = (self.estimated_inputs as f64 * self.cfg.pre_profile_fraction) as u64;
        // At least 20 records for a meaningful α fit — unless the whole
        // input is smaller than that.
        let lo = 20.min(self.estimated_inputs);
        raw.clamp(lo, self.estimated_inputs)
    }

    /// Transition PreProfile → Profile: fit α, choose `s`, seed the sketch.
    fn start_profile(&mut self, est: ZipfEstimator) {
        let fit = est.fit();
        let s = match self.cfg.sampling_fraction {
            Some(s) => s,
            None => {
                // Extrapolate the distinct-key universe m from the sample.
                let seen = est.seen().max(1);
                let scale = (self.estimated_intermediate() as f64 / seen as f64).max(1.0);
                let m = ((est.distinct() as f64) * scale.sqrt()) as usize;
                sampling_fraction(
                    self.estimated_intermediate(),
                    self.k,
                    fit.alpha,
                    m.max(self.k),
                    self.cfg.bounds,
                )
            }
        };
        // Profiling must extend at least one record past where we are now;
        // a tiny input can make that exceed the estimate, in which case the
        // filter simply never leaves the profile stage (harmless: all
        // records pass through).
        let lo = self.inputs_seen + 1;
        let hi = self.estimated_inputs.max(lo);
        let target_inputs = ((self.estimated_inputs as f64 * s) as u64).clamp(lo, hi);
        let mut sketch = SpaceSaving::new(self.k);
        for (key, count) in est.into_counts() {
            sketch.offer_n(&key, count);
        }
        self.stage = Stage::Profile {
            sketch,
            target_inputs,
        };
    }

    /// Estimated intermediate records for the task, extrapolated from the
    /// expansion observed so far.
    fn estimated_intermediate(&self) -> u64 {
        if self.inputs_seen == 0 {
            return self.estimated_inputs;
        }
        let expansion = self.offered as f64 / self.inputs_seen as f64;
        (self.estimated_inputs as f64 * expansion.max(1.0)) as u64
    }

    /// Transition Profile → Optimize: freeze top-k; the designated
    /// publisher shares it through the registry (consumers that profiled
    /// for themselves after a decline keep their set private).
    fn freeze(&mut self, sketch: &SpaceSaving) {
        let keys: Vec<Box<[u8]>> = sketch
            .top_k(self.k)
            .into_iter()
            .map(|k| k.into_boxed_slice())
            .collect();
        if self.publisher {
            if let Some(r) = &self.registry {
                r.publish(self.node, keys.clone());
            }
            self.published = true;
        }
        self.stage = Stage::Optimize(FreqTable::new(keys, self.budget / self.k));
    }
}

impl Drop for FrequencyBuffer {
    fn drop(&mut self) {
        // A designated publisher that never froze a set (input too small,
        // filter inactive, task failed/panicked) declines so the node's
        // waiters unblock and profile for themselves.
        if self.publisher && !self.published {
            if let Some(r) = &self.registry {
                r.decline(self.node);
            }
        }
    }
}

impl EmitFilter for FrequencyBuffer {
    fn on_input_record(&mut self) {
        self.inputs_seen += 1;
        // Stage transitions happen on input-record boundaries, matching the
        // paper's definition of `s` over input records.
        let pre_target = self.pre_profile_target();
        match &mut self.stage {
            Stage::Disabled => {}
            Stage::PreProfile { est } => {
                if self.inputs_seen > pre_target {
                    let est = std::mem::take(est);
                    self.start_profile(est);
                }
            }
            Stage::Profile {
                sketch,
                target_inputs,
            } => {
                if self.inputs_seen > *target_inputs {
                    let sketch = std::mem::replace(sketch, SpaceSaving::new(1));
                    self.freeze(&sketch);
                }
            }
            Stage::Optimize(_) => {}
        }
    }

    fn offer(&mut self, key: &[u8], value: &[u8], sink: &mut dyn Emit) -> bool {
        self.offered += 1;
        match &mut self.stage {
            Stage::Disabled => false,
            Stage::PreProfile { est } => {
                est.observe(key);
                false
            }
            Stage::Profile { sketch, .. } => {
                sketch.offer(key);
                false
            }
            Stage::Optimize(table) => {
                let Some(buf) = table.entries.get_mut(key) else {
                    return false;
                };
                buf.push(value);
                self.absorbed += 1;
                if buf.data.len() > table.per_key_limit {
                    if buf.count > 1 {
                        // Space limit hit: combine in place, reusing the
                        // buffer's allocation.
                        let mut refs: Vec<&[u8]> = Vec::with_capacity(buf.count as usize);
                        buf.gather(&mut refs);
                        // textmr-lint: allow(wall-clock-in-virtual-path, reason = "measured-op sampling: times the user combiner to report its real cost; never feeds the virtual schedule")
                        let sw = std::time::Instant::now();
                        let combined = combine_values(self.job.as_ref(), key, &refs);
                        self.user_combine_ns = self.user_combine_ns.saturating_add(
                            u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        table.scratch.clear();
                        table.scratch.extend(combined);
                        buf.data.clear();
                        buf.count = 0;
                        for v in &table.scratch {
                            buf.push(v);
                        }
                    }
                    if buf.data.len() > table.per_key_limit {
                        // Even the aggregate does not fit (storage-intensive
                        // combine): overflow to the normal dataflow.
                        let mut pos = 0usize;
                        while let Some(v) = read_bytes(&buf.data, &mut pos) {
                            sink.emit(key, v);
                        }
                        buf.data.clear();
                        buf.count = 0;
                    }
                }
                true
            }
        }
    }

    fn finish(&mut self, sink: &mut dyn Emit) {
        if let Stage::Optimize(table) = &mut self.stage {
            // Drain deterministically: sort keys so output is stable.
            let mut keys: Vec<Box<[u8]>> = table
                .entries
                .iter()
                .filter(|(_, b)| b.count > 0)
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort();
            let mut refs: Vec<&[u8]> = Vec::new();
            for key in keys {
                let buf = table.entries.get(&key).expect("key just listed");
                buf.gather(&mut refs);
                if refs.len() > 1 && self.job.has_combiner() {
                    // textmr-lint: allow(wall-clock-in-virtual-path, reason = "measured-op sampling: times the user combiner to report its real cost; never feeds the virtual schedule")
                    let sw = std::time::Instant::now();
                    let combined = combine_values(self.job.as_ref(), &key, &refs);
                    self.user_combine_ns = self
                        .user_combine_ns
                        .saturating_add(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    for v in combined {
                        sink.emit(&key, &v);
                    }
                } else {
                    for v in &refs {
                        sink.emit(&key, v);
                    }
                }
            }
        }
    }

    fn absorbed(&self) -> u64 {
        self.absorbed
    }

    fn is_active(&self) -> bool {
        !matches!(self.stage, Stage::Disabled)
    }

    fn take_user_combine_ns(&mut self) -> u64 {
        std::mem::take(&mut self.user_combine_ns)
    }
}

/// Build an [`EmitFilterFactory`] plugging frequency-buffering into a
/// [`textmr_engine::cluster::JobConfig`]. Pass a registry to share each
/// node's frozen top-k across its tasks.
pub fn frequency_buffer_factory(
    cfg: FreqBufferConfig,
    registry: Option<Arc<FrequentKeyRegistry>>,
) -> EmitFilterFactory {
    Arc::new(move |ctx| Box::new(FrequencyBuffer::new(&ctx, cfg.clone(), registry.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use textmr_engine::codec::{decode_u64, encode_u64};
    use textmr_engine::controller::TaskCtx;
    use textmr_engine::job::{Record, ValueCursor, ValueSink, VecEmit};

    struct SumJob;
    impl Job for SumJob {
        fn name(&self) -> &str {
            "sum"
        }
        fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
    }

    fn ctx_task(task: usize, estimated: u64, budget: usize) -> FilterCtx {
        FilterCtx {
            task: TaskCtx { node: 0, task },
            job: Arc::new(SumJob),
            budget_bytes: budget,
            estimated_records: estimated,
            node_first_task: 0,
            cancel: None,
        }
    }

    fn ctx(estimated: u64, budget: usize) -> FilterCtx {
        ctx_task(0, estimated, budget)
    }

    /// Drive: each input record emits the given keys once.
    fn drive(fb: &mut FrequencyBuffer, inputs: &[Vec<&str>], sink: &mut VecEmit) -> (u64, u64) {
        let mut passed = 0;
        let mut absorbed = 0;
        for rec in inputs {
            fb.on_input_record();
            for key in rec {
                if fb.offer(key.as_bytes(), &encode_u64(1), sink) {
                    absorbed += 1;
                } else {
                    // Pass-through: the engine would append to the spill
                    // path; mirror that so mass accounting closes.
                    sink.emit(key.as_bytes(), &encode_u64(1));
                    passed += 1;
                }
            }
        }
        (passed, absorbed)
    }

    /// A skewed workload: "hot" appears in every record, cold keys rotate.
    fn skewed_inputs(n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                vec![
                    "hot".to_string(),
                    "warm".to_string(),
                    format!("cold{}", i % 97),
                ]
            })
            .collect()
    }

    fn drive_strings(
        fb: &mut FrequencyBuffer,
        inputs: &[Vec<String>],
        sink: &mut VecEmit,
    ) -> (u64, u64) {
        let refs: Vec<Vec<&str>> = inputs
            .iter()
            .map(|r| r.iter().map(|s| s.as_str()).collect())
            .collect();
        drive(fb, &refs, sink)
    }

    #[test]
    fn lifecycle_reaches_optimize_and_absorbs_hot_keys() {
        let cfg = FreqBufferConfig {
            k: 4,
            sampling_fraction: Some(0.1),
            ..Default::default()
        };
        let inputs = skewed_inputs(1000);
        let mut fb = FrequencyBuffer::new(&ctx(1000, 1 << 16), cfg, None);
        let mut sink = VecEmit::default();
        let (_passed, absorbed) = drive_strings(&mut fb, &inputs, &mut sink);
        assert!(fb.is_optimizing());
        // "hot" appears 1000×; profiling covers ~10% → ≥ 800 absorbed
        // between hot and warm.
        assert!(absorbed >= 800, "absorbed={absorbed}");
        assert_eq!(absorbed, fb.absorbed_records());
    }

    #[test]
    fn every_offer_is_passed_or_absorbed() {
        let cfg = FreqBufferConfig {
            k: 2,
            sampling_fraction: Some(0.05),
            ..Default::default()
        };
        let inputs = skewed_inputs(400);
        let mut fb = FrequencyBuffer::new(&ctx(400, 1 << 16), cfg, None);
        let mut sink = VecEmit::default();
        let (passed, absorbed) = drive_strings(&mut fb, &inputs, &mut sink);
        fb.finish(&mut sink);
        assert_eq!(passed + absorbed, 400 * 3);
    }

    #[test]
    fn mass_conservation_via_totals() {
        let cfg = FreqBufferConfig {
            k: 3,
            sampling_fraction: Some(0.05),
            ..Default::default()
        };
        let inputs = skewed_inputs(300);
        let mut fb = FrequencyBuffer::new(&ctx(300, 1 << 16), cfg, None);
        let mut sink = VecEmit::default();
        drive_strings(&mut fb, &inputs, &mut sink);
        fb.finish(&mut sink);
        let total: u64 = sink.pairs.iter().map(|(_, v)| decode_u64(v).unwrap()).sum();
        assert_eq!(total, 300 * 3, "every unit of count must reach the sink");
    }

    #[test]
    fn per_key_limit_triggers_combining() {
        // Tiny budget → per-key limit small → combine kicks in during
        // absorption, keeping each entry's byte size bounded.
        let cfg = FreqBufferConfig {
            k: 1,
            sampling_fraction: Some(0.02),
            ..Default::default()
        };
        let inputs: Vec<Vec<String>> = (0..500).map(|_| vec!["hot".to_string()]).collect();
        let mut fb = FrequencyBuffer::new(&ctx(500, 2048), cfg, None);
        let mut sink = VecEmit::default();
        drive_strings(&mut fb, &inputs, &mut sink);
        fb.finish(&mut sink);
        let total: u64 = sink
            .pairs
            .iter()
            .filter(|(k, _)| k == b"hot")
            .map(|(_, v)| decode_u64(v).unwrap())
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn registry_lets_later_tasks_skip_profiling() {
        let registry = Arc::new(FrequentKeyRegistry::new());
        let cfg = FreqBufferConfig {
            k: 2,
            sampling_fraction: Some(0.1),
            ..Default::default()
        };
        // The designated task (lowest id on the node) profiles + publishes.
        let inputs = skewed_inputs(500);
        let mut fb1 = FrequencyBuffer::new(&ctx(500, 1 << 16), cfg.clone(), Some(registry.clone()));
        let mut sink = VecEmit::default();
        drive_strings(&mut fb1, &inputs, &mut sink);
        assert!(fb1.is_optimizing());
        assert_eq!(registry.nodes_published(), 1);
        // A later task on the same node starts already optimizing.
        let fb2 = FrequencyBuffer::new(&ctx_task(1, 500, 1 << 16), cfg, Some(registry));
        assert!(
            fb2.is_optimizing(),
            "second task must reuse the published top-k"
        );
    }

    #[test]
    fn designated_task_declines_on_drop_and_waiters_profile_themselves() {
        let registry = Arc::new(FrequentKeyRegistry::new());
        let cfg = FreqBufferConfig {
            k: 2,
            sampling_fraction: Some(0.5),
            ..Default::default()
        };
        // The designated task sees too little input to ever freeze...
        let mut fb1 =
            FrequencyBuffer::new(&ctx(10_000, 1 << 16), cfg.clone(), Some(registry.clone()));
        let mut sink = VecEmit::default();
        drive_strings(&mut fb1, &skewed_inputs(5), &mut sink);
        assert!(!fb1.is_optimizing());
        drop(fb1); // ...so dropping it declines the node's slot.
        assert_eq!(registry.nodes_published(), 0);
        // A later task is not blocked: it profiles for itself and reaches
        // Optimize without publishing.
        let mut fb2 = FrequencyBuffer::new(&ctx_task(1, 500, 1 << 16), cfg, Some(registry.clone()));
        drive_strings(&mut fb2, &skewed_inputs(500), &mut sink);
        assert!(fb2.is_optimizing());
        assert_eq!(registry.nodes_published(), 0);
    }

    #[test]
    fn consumer_wait_respects_cancellation() {
        use std::sync::atomic::AtomicBool;
        let registry = Arc::new(FrequentKeyRegistry::new());
        // Node slot never decided, but the job is already cancelled: the
        // consumer must construct (in PreProfile) instead of hanging.
        let mut c = ctx_task(3, 100, 1 << 16);
        c.cancel = Some(Arc::new(AtomicBool::new(true)));
        let fb = FrequencyBuffer::new(&c, FreqBufferConfig::default(), Some(registry));
        assert!(!fb.is_optimizing());
    }

    #[test]
    fn cold_keys_pass_through_in_optimize() {
        let cfg = FreqBufferConfig {
            k: 1,
            sampling_fraction: Some(0.05),
            ..Default::default()
        };
        let inputs = skewed_inputs(300);
        let mut fb = FrequencyBuffer::new(&ctx(300, 1 << 16), cfg, None);
        let mut sink = VecEmit::default();
        drive_strings(&mut fb, &inputs, &mut sink);
        assert!(fb.is_optimizing());
        // Offer a key that is definitely not hot.
        let mut sink2 = VecEmit::default();
        assert!(!fb.offer(b"definitely-cold", &encode_u64(1), &mut sink2));
    }

    #[test]
    fn finish_without_reaching_optimize_emits_nothing() {
        // A stream shorter than the pre-profile target: nothing buffered,
        // so nothing drains (all records passed through already).
        let cfg = FreqBufferConfig {
            k: 4,
            sampling_fraction: Some(0.5),
            ..Default::default()
        };
        let inputs = skewed_inputs(5);
        let mut fb = FrequencyBuffer::new(&ctx(10_000, 1 << 16), cfg, None);
        let mut sink = VecEmit::default();
        let (passed, absorbed) = drive_strings(&mut fb, &inputs, &mut sink);
        let before_finish = sink.pairs.len();
        fb.finish(&mut sink);
        assert_eq!(absorbed, 0);
        assert_eq!(passed, 15);
        // All 15 pairs passed straight through; finish drains nothing.
        assert_eq!(before_finish, 15);
        assert_eq!(sink.pairs.len(), 15);
    }
}
