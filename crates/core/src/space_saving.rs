//! The Space-Saving top-k sketch (Metwally, Agrawal & El Abbadi, ICDT'05).
//!
//! The paper's frequency-buffering profiler uses exactly this algorithm
//! (Section III-B): a fixed table of `k` counters; a hit increments its
//! counter; a miss over a full table evicts one key with the minimum count
//! and inserts the new key with `count = min + 1`, remembering
//! `error = min` so the overestimation is bounded.
//!
//! This implementation is the classic *stream-summary* structure: buckets
//! of equal count kept in an ascending doubly-linked list, slots chained
//! per bucket — O(1) amortized per update, O(1) min lookup.
//!
//! Guarantees (tested, including by proptest):
//! * the sum of all counters equals the number of offered items;
//! * for every monitored key, `count − error ≤ true frequency ≤ count`;
//! * any key with true frequency > N/k is monitored.

// textmr-lint: allow(unordered-iteration, reason = "fixed-seed FNV key-to-slot index, lookup-only; ordered output comes from the bucket list")
use crate::fnv::FnvHashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot {
    key: Box<[u8]>,
    error: u64,
    bucket: u32,
    prev: u32,
    next: u32,
}

#[derive(Debug)]
struct Bucket {
    count: u64,
    /// First slot in this bucket's chain.
    head: u32,
    prev: u32,
    next: u32,
}

/// The Space-Saving sketch. `capacity` is the paper's `k`.
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    // textmr-lint: allow(unordered-iteration, reason = "key-to-slot lookups only; iteration happens over the ordered bucket/slot structure")
    map: FnvHashMap<Box<[u8]>, u32>,
    slots: Vec<Slot>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<u32>,
    /// Bucket with the smallest count (list head); NIL when empty.
    min_bucket: u32,
    /// Total items offered.
    items: u64,
}

impl SpaceSaving {
    /// Create a sketch monitoring at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity,
            // textmr-lint: allow(unordered-iteration, reason = "see the field annotation: lookup-only index")
            map: FnvHashMap::default(),
            slots: Vec::with_capacity(capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            items: 0,
        }
    }

    /// Number of monitored keys (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True before any key is offered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total items offered so far (= sum of all counters).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The monitoring capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one occurrence of `key`.
    pub fn offer(&mut self, key: &[u8]) {
        self.offer_n(key, 1);
    }

    /// Offer `n` occurrences of `key` at once (used to seed the sketch from
    /// the pre-profiling stage's exact counts).
    pub fn offer_n(&mut self, key: &[u8], n: u64) {
        if n == 0 {
            return;
        }
        self.items += n;
        if let Some(&slot) = self.map.get(key) {
            self.bump(slot, n);
            return;
        }
        if self.slots.len() < self.capacity {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                key: key.into(),
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key.into(), slot);
            self.attach(slot, n);
            return;
        }
        // Evict a minimum-count key.
        let min_b = self.min_bucket;
        let victim = self.buckets[min_b as usize].head;
        let min_count = self.buckets[min_b as usize].count;
        let old_key = std::mem::replace(&mut self.slots[victim as usize].key, key.into());
        self.map.remove(&old_key);
        self.map.insert(key.into(), victim);
        self.slots[victim as usize].error = min_count;
        self.bump(victim, n);
    }

    /// Estimated count of `key` (with its error bound), if monitored.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u64)> {
        let &slot = self.map.get(key)?;
        let s = &self.slots[slot as usize];
        Some((self.buckets[s.bucket as usize].count, s.error))
    }

    /// All monitored keys as `(key, count, error)`, descending by count.
    pub fn entries(&self) -> Vec<(Vec<u8>, u64, u64)> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut b = self.min_bucket;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            let mut s = bucket.head;
            while s != NIL {
                let slot = &self.slots[s as usize];
                out.push((slot.key.to_vec(), bucket.count, slot.error));
                s = slot.next;
            }
            b = bucket.next;
        }
        out.reverse(); // ascending bucket walk → reverse for descending
        out
    }

    /// The top-`k` keys by estimated count, descending.
    pub fn top_k(&self, k: usize) -> Vec<Vec<u8>> {
        self.entries()
            .into_iter()
            .take(k)
            .map(|(key, _, _)| key)
            .collect()
    }

    /// Smallest counter value (0 when not yet full) — the error bound for
    /// any unmonitored key.
    pub fn min_count(&self) -> u64 {
        if self.slots.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket as usize].count
        }
    }

    // ---- linked-structure plumbing -------------------------------------------

    /// Increase `slot`'s count by `n`, relocating it to the right bucket.
    fn bump(&mut self, slot: u32, n: u64) {
        let old_bucket = self.slots[slot as usize].bucket;
        let new_count = self.buckets[old_bucket as usize].count + n;
        self.detach(slot);
        self.attach_at(slot, new_count, old_bucket);
        self.reap_bucket(old_bucket);
    }

    /// Attach a fresh slot with count `n` (search from the min bucket).
    fn attach(&mut self, slot: u32, n: u64) {
        self.attach_from(slot, n, self.min_bucket, NIL);
    }

    /// Attach `slot` with `count`, starting the search at `hint` (the
    /// bucket it came from, already detached but not yet reaped).
    fn attach_at(&mut self, slot: u32, count: u64, hint: u32) {
        // The target bucket has count ≥ the hint bucket's count; search
        // forward from the hint.
        self.attach_from(slot, count, hint, hint);
    }

    /// Walk buckets from `start` to find/create the bucket with `count` and
    /// put `slot` at its head. `skip_empty` is a bucket allowed to be empty
    /// (pending reap) that must not be chosen as the target unless counts
    /// match exactly and it is non-empty-compatible.
    fn attach_from(&mut self, slot: u32, count: u64, start: u32, came_from: u32) {
        // Find insertion point: last bucket with bucket.count < count.
        let mut prev = NIL;
        let mut cur = if start == NIL { self.min_bucket } else { start };
        // `start` may itself have count ≥ count only when it's min_bucket;
        // normalize by walking from min_bucket in that case.
        if cur != NIL && self.buckets[cur as usize].count >= count {
            cur = self.min_bucket;
        }
        while cur != NIL && self.buckets[cur as usize].count < count {
            prev = cur;
            cur = self.buckets[cur as usize].next;
        }
        let target = if cur != NIL && self.buckets[cur as usize].count == count && cur != came_from
        {
            cur
        } else if cur == came_from && cur != NIL && self.buckets[cur as usize].count == count {
            // Re-attaching to the bucket we came from (possible when n
            // bumps by 0 — excluded — or hint equals target); treat as
            // normal target.
            cur
        } else {
            // Create a new bucket between prev and cur.
            let b = self.alloc_bucket(count, prev, cur);
            if prev == NIL {
                self.min_bucket = b;
            } else {
                self.buckets[prev as usize].next = b;
            }
            if cur != NIL {
                self.buckets[cur as usize].prev = b;
            }
            b
        };
        // Push slot at the bucket's head.
        let head = self.buckets[target as usize].head;
        self.slots[slot as usize].bucket = target;
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = head;
        if head != NIL {
            self.slots[head as usize].prev = slot;
        }
        self.buckets[target as usize].head = slot;
    }

    /// Unlink `slot` from its bucket's chain (bucket may become empty; call
    /// [`Self::reap_bucket`] afterwards).
    fn detach(&mut self, slot: u32) {
        let (b, prev, next) = {
            let s = &self.slots[slot as usize];
            (s.bucket, s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.buckets[b as usize].head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        }
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = NIL;
    }

    /// Remove `bucket` from the bucket list if it has no slots.
    fn reap_bucket(&mut self, bucket: u32) {
        if self.buckets[bucket as usize].head != NIL {
            return;
        }
        let (prev, next) = {
            let b = &self.buckets[bucket as usize];
            (b.prev, b.next)
        };
        if prev != NIL {
            self.buckets[prev as usize].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next as usize].prev = prev;
        }
        self.free_buckets.push(bucket);
    }

    fn alloc_bucket(&mut self, count: u64, prev: u32, next: u32) -> u32 {
        if let Some(b) = self.free_buckets.pop() {
            self.buckets[b as usize] = Bucket {
                count,
                head: NIL,
                prev,
                next,
            };
            b
        } else {
            self.buckets.push(Bucket {
                count,
                head: NIL,
                prev,
                next,
            });
            (self.buckets.len() - 1) as u32
        }
    }

    /// Structural invariants; used by tests.
    #[cfg(test)]
    fn check_invariants(&self) {
        // Bucket list strictly ascending, no empty buckets.
        let mut b = self.min_bucket;
        let mut last_count = 0u64;
        let mut prev = NIL;
        let mut slot_total = 0usize;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            assert!(bucket.head != NIL, "empty bucket in list");
            assert!(
                bucket.count > last_count || prev == NIL,
                "bucket counts not ascending"
            );
            assert_eq!(bucket.prev, prev, "broken bucket back-link");
            last_count = bucket.count;
            let mut s = bucket.head;
            let mut sprev = NIL;
            while s != NIL {
                let slot = &self.slots[s as usize];
                assert_eq!(slot.bucket, b, "slot points at wrong bucket");
                assert_eq!(slot.prev, sprev, "broken slot back-link");
                slot_total += 1;
                sprev = s;
                s = slot.next;
            }
            prev = b;
            b = bucket.next;
        }
        assert_eq!(slot_total, self.slots.len(), "slot chain lost entries");
        assert_eq!(self.map.len(), self.slots.len(), "map out of sync");
        // Counter sum == items offered.
        let sum: u64 = self.entries().iter().map(|(_, c, _)| c).sum();
        assert_eq!(sum, self.items, "counter-sum invariant violated");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdMap;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.offer(b"a");
        }
        ss.offer(b"b");
        assert_eq!(ss.get(b"a"), Some((5, 0)));
        assert_eq!(ss.get(b"b"), Some((1, 0)));
        assert_eq!(ss.min_count(), 0);
        ss.check_invariants();
    }

    #[test]
    fn eviction_preserves_guarantees() {
        let mut ss = SpaceSaving::new(2);
        ss.offer(b"a");
        ss.offer(b"a");
        ss.offer(b"b");
        ss.offer(b"c"); // evicts b (min count 1): c gets count 2, error 1.
        assert_eq!(ss.get(b"b"), None);
        assert_eq!(ss.get(b"c"), Some((2, 1)));
        assert_eq!(ss.items(), 4);
        ss.check_invariants();
    }

    #[test]
    fn heavy_hitter_survives_zipf_stream() {
        // Deterministic skewed stream: key i appears ~1000/i times.
        let mut stream = Vec::new();
        for i in 1..=200usize {
            for _ in 0..(1000 / i) {
                stream.push(format!("k{i}"));
            }
        }
        // Interleave to stress eviction.
        let mut interleaved = Vec::with_capacity(stream.len());
        let half = stream.len() / 2;
        for j in 0..half {
            interleaved.push(stream[j].clone());
            interleaved.push(stream[stream.len() - 1 - j].clone());
        }
        let mut ss = SpaceSaving::new(20);
        let mut truth: StdMap<String, u64> = StdMap::new();
        for k in &interleaved {
            ss.offer(k.as_bytes());
            *truth.entry(k.clone()).or_default() += 1;
        }
        ss.check_invariants();
        // The most frequent key must be monitored and within bounds.
        let (count, err) = ss.get(b"k1").expect("k1 must be monitored");
        let t = truth["k1"];
        assert!(count >= t, "count {count} < true {t}");
        assert!(count - err <= t, "lower bound violated");
        // Top-5 of the sketch should include k1 and k2.
        let top: Vec<String> = ss
            .top_k(5)
            .into_iter()
            .map(|k| String::from_utf8(k).unwrap())
            .collect();
        assert!(top.contains(&"k1".to_string()), "{top:?}");
        assert!(top.contains(&"k2".to_string()), "{top:?}");
    }

    #[test]
    fn counter_sum_equals_items() {
        let mut ss = SpaceSaving::new(3);
        let keys = ["x", "y", "z", "w", "x", "x", "v", "y", "u", "u"];
        for k in keys {
            ss.offer(k.as_bytes());
            ss.check_invariants();
        }
        assert_eq!(ss.items(), keys.len() as u64);
    }

    #[test]
    fn offer_n_seeds_like_repeated_offers() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for _ in 0..7 {
            a.offer(b"k");
        }
        b.offer_n(b"k", 7);
        assert_eq!(a.get(b"k"), b.get(b"k"));
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn entries_sorted_descending() {
        let mut ss = SpaceSaving::new(8);
        for (k, n) in [("a", 5u64), ("b", 2), ("c", 9), ("d", 1)] {
            ss.offer_n(k.as_bytes(), n);
        }
        let counts: Vec<u64> = ss.entries().iter().map(|(_, c, _)| *c).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(counts, sorted);
    }

    #[test]
    fn capacity_one_tracks_majority_style() {
        let mut ss = SpaceSaving::new(1);
        for k in ["a", "b", "a", "a", "c", "a"] {
            ss.offer(k.as_bytes());
            ss.check_invariants();
        }
        assert_eq!(ss.len(), 1);
        assert_eq!(ss.items(), 6);
    }
}
