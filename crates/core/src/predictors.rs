//! Frequent-key prediction baselines for Figure 7.
//!
//! The paper evaluates how many intermediate values each prediction scheme
//! removes from the spill path, as a function of the buffer size `k`:
//!
//! * **SpaceSaving** — the paper's scheme: profile the first `s·N` records
//!   with the Metwally sketch, freeze the top-k, absorb matches thereafter;
//! * **Ideal** — oracle knowledge of the true top-k keys (upper bound on
//!   any prediction scheme);
//! * **LRU** — "always adds each new tuple to the buffer, expelling the
//!   least-recently-used key"; a record is removed when its key is already
//!   buffered.
//!
//! All three absorb over the same optimization window — the records after
//! the `s·N` profiling prefix — so the comparison isolates *prediction
//! quality* (the paper's ~6 % Space-Saving-vs-Ideal gap is only meaningful
//! under a common window; LRU additionally warm-starts its buffer during
//! the prefix). The functions return the fraction of all records removed.

use crate::space_saving::SpaceSaving;
// textmr-lint: allow(unordered-iteration, reason = "profiling predictors count and membership-test only; the one iteration sorts by (count, key) first")
use std::collections::HashMap;

/// Fraction removed by the paper's scheme: Space-Saving profiling over the
/// first `s` fraction of the stream, frozen top-k absorption afterwards.
pub fn removed_fraction_space_saving<'a>(
    stream: impl ExactSizeIterator<Item = &'a [u8]>,
    k: usize,
    s: f64,
) -> f64 {
    assert!(
        (0.0..1.0).contains(&s),
        "profiling fraction must be in [0,1)"
    );
    let n = stream.len();
    if n == 0 {
        return 0.0;
    }
    let profile_n = ((n as f64) * s) as usize;
    let mut sketch = SpaceSaving::new(k.max(1));
    // textmr-lint: allow(unordered-iteration, reason = "membership tests only; never iterated")
    let mut frozen: Option<std::collections::HashSet<Vec<u8>>> = None;
    let mut removed = 0usize;
    for (i, key) in stream.enumerate() {
        if i < profile_n {
            sketch.offer(key);
            continue;
        }
        let table = frozen.get_or_insert_with(|| sketch.top_k(k).into_iter().collect());
        if table.contains(key) {
            removed += 1;
        }
    }
    removed as f64 / n as f64
}

/// Fraction removed with oracle knowledge of the true top-k keys,
/// absorbing over the post-profiling window (records after `s·N`).
pub fn removed_fraction_ideal<'a>(
    stream: impl ExactSizeIterator<Item = &'a [u8]> + Clone,
    k: usize,
    s: f64,
) -> f64 {
    let n = stream.len();
    if n == 0 {
        return 0.0;
    }
    let profile_n = ((n as f64) * s) as usize;
    // textmr-lint: allow(unordered-iteration, reason = "counting only; iterated once into a Vec that is sorted by (count, key)")
    let mut counts: HashMap<&[u8], u64> = HashMap::new();
    for key in stream.clone() {
        *counts.entry(key).or_default() += 1;
    }
    let mut freqs: Vec<(&[u8], u64)> = counts.into_iter().collect();
    // textmr-lint: allow(sort-unstable-key-runs, reason = "comparator breaks frequency ties by key bytes; total order")
    freqs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    // textmr-lint: allow(unordered-iteration, reason = "membership tests only; never iterated")
    let top: std::collections::HashSet<&[u8]> = freqs.iter().take(k).map(|(key, _)| *key).collect();
    let removed = stream
        .skip(profile_n)
        .filter(|key| top.contains(key))
        .count();
    removed as f64 / n as f64
}

/// Fraction removed by an LRU buffer of `k` keys over the post-profiling
/// window. The buffer warm-starts during the profiling prefix (insertions
/// without counting hits), then every window record is inserted and counts
/// as removed when its key is already resident.
pub fn removed_fraction_lru<'a>(
    stream: impl ExactSizeIterator<Item = &'a [u8]>,
    k: usize,
    s: f64,
) -> f64 {
    let k = k.max(1);
    let n = stream.len();
    if n == 0 {
        return 0.0;
    }
    let profile_n = ((n as f64) * s) as usize;
    // Simple timestamped LRU; k is small (thousands), streams are large,
    // so an ordered scan on eviction would be O(n·k). Use timestamp map +
    // a monotonically increasing clock with a BTreeMap index.
    use std::collections::BTreeMap;
    // textmr-lint: allow(unordered-iteration, reason = "key-to-stamp lookups only; eviction order comes from the sorted BTreeMap index")
    let mut stamp_of: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut by_stamp: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut clock = 0u64;
    let mut removed = 0u64;
    for (i, key) in stream.enumerate() {
        clock += 1;
        if let Some(old) = stamp_of.get_mut(key) {
            if i >= profile_n {
                removed += 1;
            }
            by_stamp.remove(old);
            *old = clock;
            by_stamp.insert(clock, key.to_vec());
            continue;
        }
        if stamp_of.len() == k {
            let (&oldest, _) = by_stamp.iter().next().expect("LRU non-empty");
            let victim = by_stamp.remove(&oldest).expect("victim present");
            stamp_of.remove(&victim);
        }
        stamp_of.insert(key.to_vec(), clock);
        by_stamp.insert(clock, key.to_vec());
    }
    removed as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zipf-ish *stationary* stream: rank i appears 600/i times, spread
    /// evenly over the stream (occurrence j of a count-c key sits at
    /// virtual time (j+½)/c). Stationarity is the paper's Sec. III-B
    /// assumption; a non-stationary stream defeats any prefix profiler.
    fn skewed_stream() -> Vec<Vec<u8>> {
        let mut events: Vec<(f64, usize)> = Vec::new();
        for i in 1..=120usize {
            let c = (600 / i).max(1);
            for j in 0..c {
                events.push(((j as f64 + 0.5) / c as f64, i));
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        events
            .into_iter()
            .map(|(_, i)| format!("k{i}").into_bytes())
            .collect()
    }

    #[test]
    fn ideal_dominates_space_saving() {
        let stream = skewed_stream();
        for k in [2usize, 8, 32] {
            let ideal = removed_fraction_ideal(stream.iter().map(|v| v.as_slice()), k, 0.1);
            let ss = removed_fraction_space_saving(stream.iter().map(|v| v.as_slice()), k, 0.1);
            assert!(
                ideal >= ss - 1e-9,
                "ideal {ideal} must dominate space-saving {ss} at k={k}"
            );
        }
    }

    #[test]
    fn space_saving_close_to_ideal_on_skew() {
        let stream = skewed_stream();
        let k = 16;
        let ideal = removed_fraction_ideal(stream.iter().map(|v| v.as_slice()), k, 0.1);
        let ss = removed_fraction_space_saving(stream.iter().map(|v| v.as_slice()), k, 0.1);
        // The paper reports ~6% gap on text under a common window; allow a
        // loose bound here (small synthetic stream).
        assert!(ideal - ss < 0.15, "gap too large: ideal={ideal} ss={ss}");
        assert!(
            ss > 0.2,
            "space-saving should remove a meaningful share, got {ss}"
        );
    }

    #[test]
    fn removal_grows_with_k() {
        let stream = skewed_stream();
        let at = |k| removed_fraction_ideal(stream.iter().map(|v| v.as_slice()), k, 0.1);
        assert!(at(4) <= at(16));
        assert!(at(16) <= at(64));
    }

    #[test]
    fn lru_caps_at_hit_rate_and_handles_eviction() {
        let stream = skewed_stream();
        let lru = removed_fraction_lru(stream.iter().map(|v| v.as_slice()), 8, 0.1);
        assert!(lru > 0.0 && lru < 1.0);
        // Tiny capacity still works.
        let lru1 = removed_fraction_lru(stream.iter().map(|v| v.as_slice()), 1, 0.1);
        assert!(lru1 <= lru);
    }

    #[test]
    fn lru_scan_pattern_defeats_it() {
        // A cyclic scan over k+1 keys with capacity k gives LRU zero hits —
        // the classic LRU pathology; the frozen top-k approach is immune.
        let keys: Vec<Vec<u8>> = (0..5).map(|i| format!("s{i}").into_bytes()).collect();
        let stream: Vec<&[u8]> = (0..100).map(|i| keys[i % 5].as_slice()).collect();
        let lru = removed_fraction_lru(stream.iter().copied(), 4, 0.0);
        assert_eq!(lru, 0.0);
        let ideal = removed_fraction_ideal(stream.iter().copied(), 4, 0.0);
        assert!(ideal > 0.7);
    }

    #[test]
    fn empty_stream_is_zero() {
        let empty: Vec<&[u8]> = Vec::new();
        assert_eq!(removed_fraction_ideal(empty.iter().copied(), 4, 0.1), 0.0);
        assert_eq!(removed_fraction_lru(empty.iter().copied(), 4, 0.1), 0.0);
        assert_eq!(
            removed_fraction_space_saving(empty.into_iter(), 4, 0.1),
            0.0
        );
    }
}
