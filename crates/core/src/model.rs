//! Analytic model of the spill pipeline (paper Section IV-C).
//!
//! Under constant produce rate `p` and consume rate `c` over a buffer of
//! capacity `M` with spill fraction `x`, the spill sizes obey
//!
//! ```text
//! m_1 = x·M
//! m_i = max{ x·M, min{ (p/c)·m_{i−1}, M − m_{i−1} } }       (Eq. 2)
//! ```
//!
//! and the slower of the two threads is wait-free iff
//! `x ≤ max{ c/(p+c), 1/2 }` (Eq. 1). This module evaluates the recurrence
//! and a continuous-time event simulation of the same pipeline, providing
//! the theoretical reference the engine's virtual pipeline and the
//! spill-matcher are validated against (see the ablation bench and the
//! property tests in `tests/`).

/// Constant-rate pipeline parameters.
#[derive(Debug, Clone, Copy)]
pub struct RateModel {
    /// Produce rate (bytes per unit time).
    pub p: f64,
    /// Consume rate (bytes per unit time).
    pub c: f64,
    /// Buffer capacity M (bytes).
    pub capacity: f64,
}

/// Wait times accumulated by each side over a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineWaits {
    /// Producer blocked on a full buffer.
    pub producer_wait: f64,
    /// Consumer idle between spills (after ramp-up; the wait before the
    /// very first spill is excluded, as in the paper's steady-state
    /// argument).
    pub consumer_wait: f64,
    /// Spill sizes produced.
    pub spills: Vec<f64>,
}

impl RateModel {
    /// The paper's Eq. 1: the largest wait-free spill fraction.
    pub fn optimal_fraction(&self) -> f64 {
        (self.c / (self.p + self.c)).max(0.5)
    }

    /// Evaluate the spill-size recurrence (Eq. 2) for `n` spills.
    pub fn spill_sizes(&self, x: f64, n: usize) -> Vec<f64> {
        assert!(x > 0.0 && x <= 1.0);
        let m_cap = self.capacity;
        let mut sizes = Vec::with_capacity(n);
        let mut prev = x * m_cap;
        sizes.push(prev);
        for _ in 1..n {
            let grown = (self.p / self.c) * prev;
            let room = m_cap - prev;
            let m = (x * m_cap).max(grown.min(room));
            sizes.push(m);
            prev = m;
        }
        sizes
    }

    /// Continuous-time event simulation of the pipeline for `n` spills.
    /// Exact for constant rates; used to cross-check both Eq. 2 and the
    /// engine's discrete virtual pipeline.
    pub fn simulate(&self, x: f64, n: usize) -> PipelineWaits {
        assert!(x > 0.0 && x <= 1.0);
        let m_cap = self.capacity;
        let threshold = x * m_cap;
        let mut producer_wait = 0.0f64;
        let mut consumer_wait = 0.0f64;
        let mut spills = Vec::with_capacity(n);

        // State: time t; active bytes a; consumer busy until cb holding
        // in-flight bytes f.
        let mut t = 0.0f64;
        let mut a = 0.0f64;
        let mut cb = 0.0f64;
        let mut f = 0.0f64;
        let mut first_spill_done = false;

        while spills.len() < n {
            if t >= cb {
                f = 0.0;
            }
            if a >= threshold && t >= cb {
                // Handover.
                if first_spill_done {
                    consumer_wait += t - cb;
                }
                spills.push(a);
                f = a;
                cb = t + a / self.c;
                a = 0.0;
                first_spill_done = true;
                continue;
            }
            // Produce until the next event: threshold crossing, buffer
            // full, or consumer completion.
            let room = m_cap - f - a;
            let to_threshold = if a < threshold {
                (threshold - a) / self.p
            } else {
                0.0
            };
            if a >= threshold {
                // Waiting for the consumer; keep producing into the room.
                if room <= 1e-12 {
                    // Full: block until consumer frees.
                    producer_wait += cb - t;
                    t = cb;
                    continue;
                }
                let dt = (room / self.p).min(cb - t);
                a += self.p * dt;
                t += dt;
                continue;
            }
            if room <= 1e-12 {
                producer_wait += cb - t;
                t = cb;
                continue;
            }
            let dt = to_threshold.min(room / self.p);
            a += self.p * dt;
            t += dt;
        }
        PipelineWaits {
            producer_wait,
            consumer_wait,
            spills,
        }
    }

    /// Does the slower thread incur (non-ramp-up) wait time at fraction
    /// `x`, per the simulation?
    pub fn slower_thread_waits(&self, x: f64, n: usize) -> bool {
        let w = self.simulate(x, n);
        if self.p < self.c {
            w.producer_wait > 1e-9
        } else {
            w.consumer_wait > 1e-9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_first_spill_is_xm() {
        let m = RateModel {
            p: 1.0,
            c: 2.0,
            capacity: 100.0,
        };
        assert_eq!(m.spill_sizes(0.4, 1)[0], 40.0);
    }

    #[test]
    fn recurrence_growth_with_slow_consumer() {
        // p > c: spills grow beyond xM until capped by M − m.
        let m = RateModel {
            p: 4.0,
            c: 1.0,
            capacity: 100.0,
        };
        let sizes = m.spill_sizes(0.2, 6);
        assert!(sizes[1] > sizes[0]);
        // Bounded by capacity.
        assert!(sizes.iter().all(|&s| s <= 100.0));
    }

    #[test]
    fn optimal_fraction_matches_eq1() {
        let fast_consumer = RateModel {
            p: 1.0,
            c: 3.0,
            capacity: 100.0,
        };
        assert!((fast_consumer.optimal_fraction() - 0.75).abs() < 1e-12);
        let slow_consumer = RateModel {
            p: 3.0,
            c: 1.0,
            capacity: 100.0,
        };
        assert_eq!(slow_consumer.optimal_fraction(), 0.5);
    }

    #[test]
    fn at_or_below_optimal_slower_thread_is_waitfree() {
        for (p, c) in [(1.0, 3.0), (3.0, 1.0), (1.0, 1.01), (2.0, 2.0 + 1e-6)] {
            let m = RateModel {
                p,
                c,
                capacity: 1000.0,
            };
            let x = m.optimal_fraction();
            assert!(
                !m.slower_thread_waits(x - 1e-6, 50),
                "slower thread waited at x just below optimal (p={p}, c={c})"
            );
        }
    }

    #[test]
    fn above_optimal_slower_thread_waits() {
        for (p, c) in [(1.0, 3.0), (3.0, 1.0)] {
            let m = RateModel {
                p,
                c,
                capacity: 1000.0,
            };
            let x = (m.optimal_fraction() + 0.15).min(1.0);
            assert!(
                m.slower_thread_waits(x, 50),
                "slower thread should wait above optimal (p={p}, c={c})"
            );
        }
    }

    #[test]
    fn simulation_spills_match_recurrence() {
        for (p, c, x) in [(4.0, 1.0, 0.2), (1.0, 4.0, 0.7), (2.0, 2.0, 0.5)] {
            let m = RateModel {
                p,
                c,
                capacity: 500.0,
            };
            let sim = m.simulate(x, 8).spills;
            let rec = m.spill_sizes(x, 8);
            for (i, (s, r)) in sim.iter().zip(rec.iter()).enumerate() {
                assert!(
                    (s - r).abs() < 1e-6 * m.capacity,
                    "spill {i}: sim={s} recurrence={r} (p={p} c={c} x={x})"
                );
            }
        }
    }

    #[test]
    fn steady_state_spill_sizes_converge() {
        let m = RateModel {
            p: 3.0,
            c: 1.0,
            capacity: 100.0,
        };
        let sizes = m.spill_sizes(0.5, 30);
        let last = sizes[29];
        let prev = sizes[28];
        assert!(
            (last - prev).abs() < 1e-9,
            "did not converge: {prev} vs {last}"
        );
    }
}
