//! Wall-clock speedup of the worker pool: WordCount end-to-end, sequential
//! vs `--parallel` execution.
//!
//! Virtual-time results (makespans, every paper figure) are identical at
//! any worker count — this harness measures the *real* time the harness
//! itself takes, which is what the pool buys. It also re-checks the
//! determinism contract: outputs and timing-free profile signatures must
//! be identical across modes.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin speedup [-- --parallel=8 --scale paper]
//! ```
//! Without an explicit `--parallel[=N]`, all hardware threads are used.

#![forbid(unsafe_code)]

use std::sync::Arc;
// textmr-lint: allow(wall-clock-in-virtual-path, reason = "this harness exists to measure real wall-clock speedup of the worker pool; virtual results are checked identical across modes")
use std::time::{Duration, Instant};
use textmr_apps::WordCount;
use textmr_bench::report::Table;
use textmr_bench::runner::{available_parallelism, reps, worker_threads, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::Job;

/// Run the job `reps()` times at the given worker count; report the best
/// real wall-clock time (least scheduler noise) and the last run.
fn measure(cluster: &ClusterConfig, dfs: &SimDfs, job: Arc<dyn Job>) -> (Duration, JobRun) {
    let cfg = JobConfig::default().with_reducers(REDUCERS);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps().max(1) {
        // textmr-lint: allow(wall-clock-in-virtual-path, reason = "real elapsed time is the measurement this binary reports")
        let t0 = Instant::now();
        let run = run_job(cluster, &cfg, job.clone(), dfs, &[("corpus", 0)]).unwrap();
        best = best.min(t0.elapsed());
        last = Some(run);
    }
    (best, last.unwrap())
}

fn main() {
    let scale = Scale::from_args();
    let threads = match worker_threads() {
        1 => available_parallelism(),
        n => n,
    };

    // Size blocks so the map phase has plenty of tasks per worker thread.
    let corpus = CorpusConfig {
        lines: scale.corpus_lines,
        vocab_size: scale.vocab,
        ..Default::default()
    }
    .generate_bytes();
    let block = (corpus.len() / (4 * threads).max(8)).max(64 << 10);
    let mut cluster = ClusterConfig::local();
    cluster.spill_buffer_bytes = scale.spill_buffer;
    let mut dfs = SimDfs::new(cluster.nodes, block);
    dfs.put("corpus", corpus);

    println!(
        "WordCount end-to-end, {} map tasks × {} reducers, {} reps per mode\n",
        dfs.get("corpus").map(|f| f.num_blocks()).unwrap_or(0),
        REDUCERS,
        reps().max(1),
    );

    cluster.worker_threads = 1;
    let (seq_wall, seq_run) = measure(&cluster, &dfs, Arc::new(WordCount));
    cluster.worker_threads = threads;
    let (par_wall, par_run) = measure(&cluster, &dfs, Arc::new(WordCount));

    assert_eq!(
        seq_run.sorted_pairs(),
        par_run.sorted_pairs(),
        "parallel execution changed the job output"
    );
    assert_eq!(
        seq_run.profile.signature(),
        par_run.profile.signature(),
        "parallel execution changed the profile's structural counters"
    );

    let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9);
    let mut table = Table::new(&["mode", "workers", "wall_clock_ms", "speedup"]);
    table.row(&[
        "sequential".into(),
        "1".into(),
        format!("{:.1}", seq_wall.as_secs_f64() * 1e3),
        "1.00".into(),
    ]);
    table.row(&[
        "parallel".into(),
        threads.to_string(),
        format!("{:.1}", par_wall.as_secs_f64() * 1e3),
        format!("{speedup:.2}"),
    ]);
    table.print();
    println!("\noutputs and profile signatures identical across modes");
    println!("speedup {speedup:.2}x with {threads} worker threads");
}
