//! Figure 2 — where does the time go? Normalized breakdown of the total
//! work (CPU time summed over all tasks, grouped by operation) for each of
//! the six applications under the baseline engine.
//!
//! Paper shape to reproduce: user code (map + combine + reduce) is a
//! minority of total work for every app except WordPOSTag; post-map
//! operations (emit, sort, spill, merge, shuffle) dominate and scale with
//! the intermediate data volume.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig2_breakdown [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::{pct, Table};
use textmr_bench::runner::{local_cluster, run_config, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;
use textmr_engine::metrics::Op;

fn main() {
    let scale = Scale::from_args();
    let (dfs, workloads) = standard_suite(scale);
    let cluster = local_cluster(scale);

    let ops: Vec<Op> = Op::ALL.iter().copied().filter(|o| !o.is_idle()).collect();
    let mut header = vec!["app".to_string(), "user_code_pct".to_string()];
    header.extend(ops.iter().map(|o| format!("{o}_pct")));
    let mut table = Table::new(&header);

    println!("Figure 2 reproduction — normalized work breakdown (baseline)\n");
    for w in &workloads {
        eprintln!("running {} …", w.name);
        let run = run_config(&cluster, &dfs, w, Config::Baseline, REDUCERS);
        let totals = run.profile.total_ops();
        let total = totals.total_work().max(1) as f64;
        let mut row = vec![w.name.to_string(), pct(totals.user_code() as f64 / total)];
        row.extend(ops.iter().map(|o| pct(totals.get(*o) as f64 / total)));
        table.row(&row);
    }
    table.print();
    let path = table.write_csv("fig2_breakdown").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: user-code share should exceed 50% only for the\n\
         CPU-bound WordPOSTag (and approach it for AccessLogJoin); all\n\
         other time is MapReduce abstraction cost."
    );
}
