//! Shuffle scaling — fetcher count × network preset (Table-IV-style
//! local-vs-EC2 comparison for the shuffle phase).
//!
//! Sweeps `ClusterConfig::shuffle_fetchers` over both network presets on
//! the shuffle-heaviest workload (InvertedIndex) and reports the NIC
//! model's virtual shuffle time against the sequential (1-fetcher) sum.
//! Paper shape this probes: shuffle cost is what separates the local and
//! EC2 columns of Table IV, and parallel fetch can only recover overlap —
//! it never beats the largest single flow into a reducer, and on the
//! weaker EC2 network the same byte volume leaves less to overlap
//! relative to the map/reduce work around it.
//!
//! The harness also re-checks the subsystem's contract at every point:
//! outputs and timing-free signatures are byte-identical at all fetcher
//! counts, and `max_flow ≤ virtual ≤ sequential` for the aggregate
//! schedule.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin shuffle_scale [-- --scale paper]
//! cargo run --release -p textmr-bench --bin shuffle_scale -- --smoke   # CI
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{ec2_cluster, local_cluster, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::shuffle::{FetchHistogram, NUM_FETCH_BUCKETS};

/// Human label for the histogram's most-populated bucket.
fn typical_fetch(hist: &FetchHistogram) -> String {
    let (mut best, mut count) = (0usize, 0u64);
    for (i, &c) in hist.buckets().iter().enumerate() {
        if c > count {
            (best, count) = (i, c);
        }
    }
    match best {
        0 => "empty".to_string(),
        b if b + 1 >= NUM_FETCH_BUCKETS => format!(">=2^{}B", b - 1),
        b => format!("{}..{}B", 1u64 << (b - 1), 1u64 << b),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let lines = if smoke { 1_500 } else { scale.corpus_lines };
    // Small blocks force many map tasks, so every reducer fetches many
    // flows — the regime where a fetcher pool has anything to overlap.
    let block = if smoke {
        8 << 10
    } else {
        scale.block_size.min(128 << 10)
    };
    let fetcher_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let presets: [(&str, ClusterConfig); 2] =
        [("local", local_cluster(scale)), ("ec2", ec2_cluster(scale))];

    let job: Arc<dyn textmr_engine::job::Job> = Arc::new(textmr_apps::InvertedIndex);
    let job_cfg = JobConfig::default().with_reducers(REDUCERS);

    let mut table = Table::new(&[
        "net",
        "fetchers",
        "fetched_MB",
        "remote_MB",
        "seq_shuffle_ms",
        "virt_shuffle_ms",
        "overlap_speedup",
        "straggler_wait_ms",
        "max_flow_ms",
        "typical_fetch",
    ]);
    println!("Shuffle scaling — fetcher count × network preset (InvertedIndex)\n");
    for (net_name, preset) in presets {
        let mut dfs = SimDfs::new(preset.nodes, block);
        dfs.put(
            "corpus",
            CorpusConfig {
                lines,
                vocab_size: scale.vocab,
                ..Default::default()
            }
            .generate_bytes(),
        );
        let mut reference = None;
        for &fetchers in fetcher_sweep {
            let mut cluster = preset.clone();
            cluster.shuffle_fetchers = fetchers;
            eprintln!("running {net_name} with {fetchers} fetcher(s) …");
            let run = run_job(&cluster, &job_cfg, job.clone(), &dfs, &[("corpus", 0)])
                .expect("shuffle_scale job failed");
            let agg = run.profile.shuffle_stats();
            // Contract checks: fetcher count changes only virtual shuffle
            // time, and the NIC schedule respects its bounds.
            assert!(
                agg.virtual_ns <= agg.sequential_ns,
                "{net_name}/{fetchers}: virtual {} > sequential {}",
                agg.virtual_ns,
                agg.sequential_ns
            );
            assert!(
                agg.virtual_ns >= agg.max_flow_ns,
                "{net_name}/{fetchers}: virtual {} < max flow {}",
                agg.virtual_ns,
                agg.max_flow_ns
            );
            match &reference {
                None => reference = Some((run.outputs.clone(), run.profile.signature())),
                Some((outputs, signature)) => {
                    assert_eq!(
                        *outputs, run.outputs,
                        "{net_name}: outputs changed at {fetchers} fetchers"
                    );
                    assert_eq!(
                        *signature,
                        run.profile.signature(),
                        "{net_name}: signature changed at {fetchers} fetchers"
                    );
                }
            }
            let speedup = agg.sequential_ns as f64 / agg.virtual_ns.max(1) as f64;
            table.row(&[
                net_name.to_string(),
                fetchers.to_string(),
                format!("{:.1}", agg.fetched_bytes as f64 / (1 << 20) as f64),
                format!("{:.1}", agg.remote_bytes as f64 / (1 << 20) as f64),
                format!("{:.3}", agg.sequential_ns as f64 / 1e6),
                format!("{:.3}", agg.virtual_ns as f64 / 1e6),
                format!("{speedup:.3}x"),
                ms(agg.wait_ns),
                ms(agg.max_flow_ns),
                typical_fetch(&agg.size_hist),
            ]);
        }
    }
    table.print();
    match table.write_csv("shuffle_scale") {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
    if smoke {
        println!("\nsmoke OK: signatures identical across fetcher counts; NIC bounds hold");
    }
}
