//! Table II — percentage of time the map-phase map and support threads are
//! idle, per application, under the baseline engine (fixed spill fraction
//! 0.8).
//!
//! Paper shape to reproduce: both threads idle substantially for the
//! balanced apps (WordCount ~38%/34%); WordPOSTag's map thread never idles
//! while its support thread idles ~95% (map CPU-bound); the log apps sit
//! in between with support idler than map.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin table2_idle [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::Table;
use textmr_bench::runner::{local_cluster, run_config, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;

fn main() {
    let scale = Scale::from_args();
    let (dfs, workloads) = standard_suite(scale);
    let cluster = local_cluster(scale);

    let mut table = Table::new(&["app", "map_idle_pct", "support_idle_pct"]);
    println!("Table II reproduction — map-phase thread idle time (baseline)\n");
    for w in &workloads {
        eprintln!("running {} …", w.name);
        let run = run_config(&cluster, &dfs, w, Config::Baseline, REDUCERS);
        table.row(&[
            w.name.to_string(),
            format!("{:.2}", run.profile.map_idle_pct()),
            format!("{:.2}", run.profile.support_idle_pct()),
        ]);
    }
    table.print();
    let path = table.write_csv("table2_idle").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: WordPOSTag's map thread ≈ 0% idle with its support\n\
         thread ≈ 95% idle; the other applications leave double-digit idle\n\
         percentages on both threads — the parallelism spill-matcher recovers."
    );
}
