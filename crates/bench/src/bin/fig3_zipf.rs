//! Figure 3 — rank–frequency plot of the words in the text corpus,
//! demonstrating the Zipfian skew frequency-buffering exploits, plus the
//! pre-profiler's α estimate over a 1% sample.
//!
//! Paper shape to reproduce: a straight line in log–log space with slope
//! ≈ −1 (the paper's Wikipedia corpus), i.e. frequency inversely
//! proportional to rank.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig3_zipf [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

// textmr-lint: allow(unordered-iteration, reason = "exact-count truth table; entries are sorted by count before the curve is reported")
use std::collections::HashMap;
use textmr_bench::report::Table;
use textmr_bench::scale::Scale;
use textmr_core::ZipfEstimator;
use textmr_data::text::CorpusConfig;
use textmr_nlp::tokenizer;

fn main() {
    let scale = Scale::from_args();
    let corpus = CorpusConfig {
        lines: scale.corpus_lines,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    eprintln!("generating corpus ({} lines)…", corpus.lines);
    let lines = corpus.generate();

    // Exact counts (the "truth" curve of Figure 3).
    // textmr-lint: allow(unordered-iteration, reason = "counting only; the frequency curve below sorts before use")
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut est = ZipfEstimator::default();
    let sample = (lines.len() / 100).max(1);
    for (i, line) in lines.iter().enumerate() {
        for w in tokenizer::words(line) {
            if i < sample {
                est.observe(w.as_bytes());
            }
            *counts.entry(w).or_default() += 1;
        }
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    // textmr-lint: allow(sort-unstable-key-runs, reason = "plain u64 counts; equal elements are indistinguishable")
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();

    // Log-spaced ranks, as a rank-frequency plot would sample them.
    let mut table = Table::new(&["rank", "frequency", "rel_freq"]);
    let mut rank = 1usize;
    while rank <= freqs.len() {
        table.row(&[
            rank.to_string(),
            freqs[rank - 1].to_string(),
            format!("{:.6}", freqs[rank - 1] as f64 / total as f64),
        ]);
        rank = (rank as f64 * 1.8).ceil() as usize;
    }
    println!("Figure 3 reproduction — corpus rank-frequency curve\n");
    table.print();
    let path = table.write_csv("fig3_zipf").unwrap();

    // The pre-profiler's fit from a 1% prefix.
    let fit = est.fit();
    println!("\ncorpus: {} tokens, {} distinct words", total, freqs.len());
    println!(
        "pre-profiler fit over 1% sample: alpha = {:.3} ({} regression points)",
        fit.alpha, fit.points
    );
    println!("paper check: alpha ≈ 1 (Zipf's law), straight log-log line.");
    println!("\nwrote {}", path.display());
}
