//! Figure 8 — abstraction-cost breakdown with and without
//! frequency-buffering, per application (k/s per the paper: 3000/0.01 for
//! text, 10000/0.1 for logs; 30% of the spill buffer devoted to the
//! frequent-key table so total memory is fixed).
//!
//! Paper shape to reproduce: large reductions in sort+emit-dominated
//! abstraction cost for the text apps (paper: −40% WordCount, −30%
//! InvertedIndex, −45% WordPOSTag); small/no reductions for the log apps,
//! whose emit cost can even rise slightly from profiling/hashing overhead;
//! PageRank in between.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig8_freqopt [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{local_cluster, run_config, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;
use textmr_engine::metrics::Op;

fn main() {
    let scale = Scale::from_args();
    let (dfs, workloads) = standard_suite(scale);
    let cluster = local_cluster(scale);

    let shown: Vec<Op> = Op::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_idle() && !o.is_user_code())
        .collect();
    let mut header = vec![
        "app".to_string(),
        "config".to_string(),
        "abstraction_ms".to_string(),
    ];
    header.extend(shown.iter().map(|o| format!("{o}_ms")));
    header.push("removed_records_pct".to_string());
    let mut table = Table::new(&header);

    println!("Figure 8 reproduction — abstraction cost, baseline vs frequency-buffering\n");
    for w in &workloads {
        eprintln!("running {} …", w.name);
        for config in [Config::Baseline, Config::FreqOpt] {
            let run = run_config(&cluster, &dfs, w, config, REDUCERS);
            let totals = run.profile.total_ops();
            let absorbed: u64 = run
                .profile
                .map_tasks
                .iter()
                .map(|t| t.freq_absorbed_records)
                .sum();
            let emitted: u64 = run
                .profile
                .map_tasks
                .iter()
                .map(|t| t.emitted_records)
                .sum();
            let mut row = vec![
                w.name.to_string(),
                config.name().to_string(),
                ms(totals.abstraction_cost()),
            ];
            row.extend(shown.iter().map(|o| ms(totals.get(*o))));
            row.push(format!(
                "{:.1}",
                100.0 * absorbed as f64 / emitted.max(1) as f64
            ));
            table.row(&row);
        }
    }
    table.print();
    let path = table.write_csv("fig8_freqopt").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: abstraction cost drops sharply (sort/spill/merge\n\
         shrink) for WordCount/InvertedIndex/WordPOSTag; log apps see small\n\
         changes and a slight emit increase (profiling overhead)."
    );
}
