//! Out-of-core harness — bounded-memory runs over inputs that dwarf the
//! configured RAM budget.
//!
//! The headline claim of the streaming engine: WordCount and PageRank
//! complete over disk-resident corpora **≥ 10× the per-map-task byte
//! budget** with every map task's tracked peak buffer residency under
//! that budget, while producing outputs and timing-free signatures
//! byte-identical to the materialized (whole-run-resident) reference
//! path. This harness demonstrates both, then sweeps frequency-buffering
//! on/off across budgets under the adaptive spill controller.
//!
//! For every headline (app × residency mode) run it reports input size,
//! budget, wall time, spill counts, tracked peak map/reduce buffer bytes,
//! and sustained MB/s per map slot; the streamed runs additionally assert
//! `peak ≤ budget`. The WordCount streamed run exports its virtual-time
//! trace through the streaming trace writer ([`textmr_engine::trace::stream`])
//! to `results/trace_oocore.json` — the full JSON is never resident,
//! matching the memory story end to end.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin oocore              # full
//! cargo run --release -p textmr-bench --bin oocore -- --smoke   # CI
//! ```
//!
//! Scale overrides for the multi-GB recipe in EXPERIMENTS.md:
//! `TEXTMR_OOCORE_LINES`, `TEXTMR_OOCORE_PAGES` (input size) and
//! `TEXTMR_OOCORE_BUDGET` (per-map-task bytes). Inputs are generated to
//! disk in bounded chunks and registered with the simulated DFS by path,
//! so generation never materializes the corpus either.
//!
//! Artifacts: `results/oocore.csv` (headline), `results/oocore_sweep.csv`
//! (freq-buffering × budget sweep), `results/trace_oocore.json`.

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{results_dir, Table};
use textmr_bench::runner::{local_cluster, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig};
use textmr_data::graph::GraphConfig;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{ClusterConfig, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::io::StreamingConfig;
use textmr_engine::job::Job;
use textmr_engine::prelude::{adaptive_budget_factory, run_job, validate_chrome_trace};

/// Size knob from the environment, with a default.
fn env_usize(name: &str, default: usize) -> usize {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "size knobs pick the workload scale under test; each scale's results are deterministic")
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything a headline row needs from one run.
struct Measured {
    wall_ms: f64,
    peak_map: u64,
    peak_reduce: u64,
    spills: u64,
    mbps_per_slot: f64,
}

fn measure(cluster: &ClusterConfig, run: &JobRun, input_bytes: u64) -> Measured {
    let p = &run.profile;
    let peak_map = p.map_tasks.iter().map(|t| t.peak_buffer_bytes).max();
    let peak_reduce = p.reduce_tasks.iter().map(|t| t.peak_buffer_bytes).max();
    let spills = p
        .map_tasks
        .iter()
        .map(|t| t.spills.len() as u64)
        .sum::<u64>();
    let slots = (cluster.nodes * cluster.map_slots_per_node) as f64;
    let map_secs = (p.map_phase_end as f64 / 1e9).max(1e-9);
    Measured {
        wall_ms: p.wall as f64 / 1e6,
        peak_map: peak_map.unwrap_or(0),
        peak_reduce: peak_reduce.unwrap_or(0),
        spills,
        mbps_per_slot: input_bytes as f64 / (1 << 20) as f64 / map_secs / slots,
    }
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[allow(clippy::too_many_arguments)]
fn headline_row(
    table: &mut Table,
    app: &str,
    mode: &str,
    input_bytes: u64,
    budget: usize,
    m: &Measured,
) {
    table.row(&[
        app.to_string(),
        mode.to_string(),
        format!("{:.2}", input_bytes as f64 / (1 << 20) as f64),
        kb(budget as u64),
        format!("{:.1}", input_bytes as f64 / budget as f64),
        format!("{:.3}", m.wall_ms),
        kb(m.peak_map),
        kb(m.peak_reduce),
        m.spills.to_string(),
        format!("{:.2}", m.mbps_per_slot),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = Scale::from_args();

    // Per-map-task byte budget; inputs are sized ≥ 10× this (and default
    // to far more). The multi-GB recipe raises LINES/PAGES only.
    let budget = env_usize(
        "TEXTMR_OOCORE_BUDGET",
        if smoke { 64 << 10 } else { 256 << 10 },
    );
    let lines = env_usize("TEXTMR_OOCORE_LINES", if smoke { 12_000 } else { 120_000 });
    let pages = env_usize("TEXTMR_OOCORE_PAGES", if smoke { 16_000 } else { 60_000 });
    let block = if smoke { 128 << 10 } else { 1 << 20 };

    // ---- chunked input generation, straight to disk --------------------
    let gen_dir = std::env::temp_dir().join(format!("textmr-oocore-{}", std::process::id()));
    std::fs::create_dir_all(&gen_dir).expect("create input dir");
    let corpus_path = gen_dir.join("corpus.txt");
    let graph_path = gen_dir.join("graph.txt");
    eprintln!("generating inputs ({lines} lines, {pages} pages) …");
    let corpus_bytes = CorpusConfig {
        lines,
        vocab_size: scale.vocab,
        ..Default::default()
    }
    .generate_to_file(&corpus_path, 16_384)
    .expect("generate corpus");
    let graph_bytes = GraphConfig {
        pages,
        ..Default::default()
    }
    .generate_to_file(&graph_path, 16_384)
    .expect("generate graph");
    for (name, bytes) in [("corpus", corpus_bytes), ("graph", graph_bytes)] {
        assert!(
            bytes >= 10 * budget as u64,
            "{name} is only {bytes} B — need ≥ 10× the {budget} B budget"
        );
    }

    let base = local_cluster(scale);
    let mut dfs = SimDfs::new(base.nodes, block);
    dfs.put_path("corpus", &corpus_path)
        .expect("register corpus");
    dfs.put_path("graph", &graph_path).expect("register graph");

    println!(
        "Out-of-core harness — budget {} KiB/map task, corpus {:.2} MiB ({:.0}×), graph {:.2} MiB ({:.0}×)\n",
        budget >> 10,
        corpus_bytes as f64 / (1 << 20) as f64,
        corpus_bytes as f64 / budget as f64,
        graph_bytes as f64 / (1 << 20) as f64,
        graph_bytes as f64 / budget as f64,
    );

    // Streamed: the budget derives every window; frame reads stay
    // windowed. Materialized: same budget-derived write path (identical
    // bytes on disk and on the wire) but whole-run-resident reads — the
    // reference the streamed path must match byte for byte.
    let streamed_cluster = base.clone().with_map_budget(budget);
    let materialized_cluster = base
        .clone()
        .with_streaming(StreamingConfig::materialized())
        .with_map_budget(budget);

    let mut table = Table::new(&[
        "app",
        "mode",
        "input_mb",
        "budget_kb",
        "ratio",
        "wall_ms",
        "peak_map_kb",
        "peak_reduce_kb",
        "spills",
        "mbps_per_slot",
    ]);

    let trace_path = {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        dir.join("trace_oocore.json")
    };

    let apps: [(&str, Arc<dyn Job>, &str, u64); 2] = [
        (
            "WordCount",
            Arc::new(textmr_apps::WordCount),
            "corpus",
            corpus_bytes,
        ),
        (
            "PageRank",
            Arc::new(textmr_apps::PageRank::new(pages as u64)),
            "graph",
            graph_bytes,
        ),
    ];
    for (app, job, input, input_bytes) in apps {
        let mut cfg = JobConfig::default().with_reducers(REDUCERS);
        // The WordCount streamed run ships its trace through the
        // streaming writer: span events spool to disk as attempts retire.
        if app == "WordCount" {
            cfg = cfg.with_trace_stream(trace_path.clone());
        }
        eprintln!("{app}: streamed run …");
        let streamed = run_job(&streamed_cluster, &cfg, job.clone(), &dfs, &[(input, 0)])
            .unwrap_or_else(|e| panic!("{app} streamed run failed: {e}"));
        eprintln!("{app}: materialized reference …");
        let materialized = run_job(
            &materialized_cluster,
            &JobConfig::default().with_reducers(REDUCERS),
            job.clone(),
            &dfs,
            &[(input, 0)],
        )
        .unwrap_or_else(|e| panic!("{app} materialized run failed: {e}"));

        // The whole point: identical results and identical timing-free
        // signatures at opposite residency extremes…
        assert_eq!(
            streamed.sorted_pairs(),
            materialized.sorted_pairs(),
            "{app}: streamed and materialized outputs diverged"
        );
        assert_eq!(
            streamed.profile.signature(),
            materialized.profile.signature(),
            "{app}: streamed and materialized signatures diverged"
        );
        // …with the streamed map tasks under budget.
        for (i, t) in streamed.profile.map_tasks.iter().enumerate() {
            assert!(
                t.peak_buffer_bytes <= budget as u64,
                "{app}: map task {i} peak {} B exceeds the {budget} B budget",
                t.peak_buffer_bytes
            );
        }
        let sm = measure(&streamed_cluster, &streamed, input_bytes);
        let mm = measure(&materialized_cluster, &materialized, input_bytes);
        headline_row(&mut table, app, "streamed", input_bytes, budget, &sm);
        headline_row(&mut table, app, "materialized", input_bytes, budget, &mm);
    }

    let trace_text = std::fs::read_to_string(&trace_path).expect("streamed trace file");
    let summary = validate_chrome_trace(&trace_text).expect("streamed trace validates");
    assert!(summary.complete_events > 0);

    table.print();
    let path = table.write_csv("oocore").expect("write oocore.csv");
    println!(
        "\nwrote {}\nwrote {} ({} events)",
        path.display(),
        trace_path.display(),
        summary.events
    );

    // ---- frequency-buffering × budget sweep ----------------------------
    // Under the adaptive spill controller, how much of the freq-buffering
    // win survives as the budget shrinks? Absorbed records shrink spill
    // volume, which matters *more* when the buffer is small.
    println!("\nfrequency-buffering × budget sweep (adaptive controller, WordCount):\n");
    let budgets: &[usize] = if smoke {
        &[64 << 10, 128 << 10]
    } else {
        &[64 << 10, 128 << 10, 256 << 10, 512 << 10]
    };
    let mut sweep = Table::new(&[
        "freq",
        "budget_kb",
        "wall_ms",
        "spills",
        "absorbed_records",
        "peak_map_kb",
        "mbps_per_slot",
    ]);
    for &b in budgets {
        for freq in [false, true] {
            let cluster = base.clone().with_map_budget(b);
            let mut cfg = optimized(
                JobConfig::default().with_reducers(REDUCERS),
                if freq {
                    OptimizationConfig::freq_only(FreqBufferConfig::default())
                } else {
                    OptimizationConfig::baseline()
                },
            );
            cfg.spill_controller = adaptive_budget_factory();
            eprintln!("sweep: freq={freq} budget={}KiB …", b >> 10);
            let run = run_job(
                &cluster,
                &cfg,
                Arc::new(textmr_apps::WordCount),
                &dfs,
                &[("corpus", 0)],
            )
            .unwrap_or_else(|e| panic!("sweep run (freq={freq}, budget={b}) failed: {e}"));
            let m = measure(&cluster, &run, corpus_bytes);
            assert!(
                m.peak_map <= b as u64,
                "sweep freq={freq} budget={b}: peak {} B over budget",
                m.peak_map
            );
            let absorbed: u64 = run
                .profile
                .map_tasks
                .iter()
                .map(|t| t.freq_absorbed_records)
                .sum();
            sweep.row(&[
                if freq { "on" } else { "off" }.to_string(),
                (b >> 10).to_string(),
                format!("{:.3}", m.wall_ms),
                m.spills.to_string(),
                absorbed.to_string(),
                kb(m.peak_map),
                format!("{:.2}", m.mbps_per_slot),
            ]);
        }
    }
    sweep.print();
    let sweep_path = sweep
        .write_csv("oocore_sweep")
        .expect("write oocore_sweep.csv");
    println!("\nwrote {}", sweep_path.display());

    let _ = std::fs::remove_dir_all(&gen_dir);
    if smoke {
        println!("\nsmoke OK: streamed == materialized, every streamed map task under budget");
    }
}
