//! Chaos sweep — seeded fault plans through the recovery machinery.
//!
//! Generates a deterministic [`FaultPlan`] per seed (map/reduce record
//! faults, spill-write faults, transient shuffle-fetch faults, straggler
//! nodes), runs WordCount under each, and re-checks the recovery contract
//! at every point: output pairs and the timing-free signature are
//! byte-identical to the fault-free run, while the virtual makespan pays
//! for dead attempts, retried fetches (backoff charged in virtual time)
//! and stretched straggler nodes. A final section shows speculative
//! execution clawing back a straggler's tail latency.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin chaos [-- --scale paper]
//! cargo run --release -p textmr-bench --bin chaos -- --smoke   # CI
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{local_cluster, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::JobConfig;
use textmr_engine::fault::{ChaosShape, FaultPlan, SpeculationConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::prelude::run_job;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let lines = if smoke { 1_500 } else { scale.corpus_lines };
    // Small blocks force many map tasks: more fault sites per plan.
    let block = if smoke {
        8 << 10
    } else {
        scale.block_size.min(128 << 10)
    };
    let seeds: u64 = if smoke { 6 } else { 24 };

    let cluster = local_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, block);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines,
            vocab_size: scale.vocab,
            ..Default::default()
        }
        .generate_bytes(),
    );
    let job: Arc<dyn textmr_engine::job::Job> = Arc::new(textmr_apps::WordCount);
    let job_cfg = JobConfig::default().with_reducers(REDUCERS);

    eprintln!("running fault-free reference …");
    let clean = run_job(&cluster, &job_cfg, job.clone(), &dfs, &[("corpus", 0)])
        .expect("fault-free reference failed");
    let clean_pairs = clean.sorted_pairs();
    let clean_sig = clean.profile.signature();
    let shape = ChaosShape {
        map_tasks: clean.profile.map_tasks.len(),
        reducers: REDUCERS,
        nodes: cluster.nodes,
        ..ChaosShape::default()
    };

    println!(
        "Chaos sweep — {} seeded plans over {} map tasks × {} reducers (WordCount)\n",
        seeds, shape.map_tasks, shape.reducers
    );
    let mut table = Table::new(&[
        "seed",
        "map_faults",
        "reduce_faults",
        "shuffle_faults",
        "spill_faults",
        "slow_nodes",
        "fetch_retries",
        "backoff_ms",
        "wall_ms",
        "overhead",
    ]);
    for seed in 0..seeds {
        let plan = FaultPlan::generate(seed, &shape);
        let (maps, reduces, shuffles, spills, slow) = plan.counts();
        eprintln!("running plan {seed} ({maps}m/{reduces}r/{shuffles}sh/{spills}sp/{slow}sn) …");
        let run = run_job(
            &cluster,
            &job_cfg.clone().with_fault_plan(plan),
            job.clone(),
            &dfs,
            &[("corpus", 0)],
        )
        .expect("survivable plan aborted the job");
        // The recovery contract, re-checked on every plan.
        assert_eq!(
            run.sorted_pairs(),
            clean_pairs,
            "plan {seed}: outputs diverged from the fault-free run"
        );
        assert_eq!(
            run.profile.signature(),
            clean_sig,
            "plan {seed}: timing-free signature diverged"
        );
        let agg = run.profile.shuffle_stats();
        table.row(&[
            seed.to_string(),
            maps.to_string(),
            reduces.to_string(),
            shuffles.to_string(),
            spills.to_string(),
            slow.to_string(),
            agg.retries.to_string(),
            format!("{:.3}", agg.backoff_ns as f64 / 1e6),
            format!("{:.3}", run.profile.wall as f64 / 1e6),
            format!(
                "{:.3}x",
                run.profile.wall as f64 / clean.profile.wall.max(1) as f64
            ),
        ]);
    }
    table.print();
    match table.write_csv("chaos") {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }

    // ---- speculation vs one straggler node --------------------------------
    println!("\nSpeculation vs a straggler node (factor 24 on node 0)\n");
    let plan = FaultPlan::new().slow_node(0, 24);
    let slow = run_job(
        &cluster,
        &job_cfg.clone().with_fault_plan(plan.clone()),
        job.clone(),
        &dfs,
        &[("corpus", 0)],
    )
    .expect("straggler run failed");
    let spec = run_job(
        &cluster,
        &job_cfg
            .clone()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default()),
        job.clone(),
        &dfs,
        &[("corpus", 0)],
    )
    .expect("speculative run failed");
    assert_eq!(
        slow.sorted_pairs(),
        spec.sorted_pairs(),
        "speculation changed the output"
    );
    assert!(
        spec.profile.wall < slow.profile.wall,
        "speculation did not beat the straggler: {} !< {}",
        spec.profile.wall,
        slow.profile.wall
    );
    let stats = spec.profile.speculation;
    let mut spec_table = Table::new(&["config", "wall_ms", "backups", "wins"]);
    spec_table.row(&[
        "straggler".into(),
        ms(slow.profile.wall),
        "0".into(),
        "0".into(),
    ]);
    spec_table.row(&[
        "straggler+spec".into(),
        ms(spec.profile.wall),
        stats.backups().to_string(),
        stats.wins().to_string(),
    ]);
    spec_table.print();
    println!(
        "\nspeculation recovers {:.2}x of the straggler makespan",
        slow.profile.wall as f64 / spec.profile.wall.max(1) as f64
    );

    if smoke {
        println!("\nsmoke OK: all plans recovered to identical outputs and signatures; speculation beat the straggler");
    }
}
