//! Figure 7 — percentage of intermediate data values removed as a function
//! of the frequent-key buffer size k, for three prediction schemes:
//! the paper's Space-Saving profiler (s = 0.1), an Ideal oracle, and LRU.
//! Evaluated on both key streams the paper uses: corpus words (WordCount's
//! map output) and access-log URLs (AccessLogSum's map output).
//!
//! Paper shape to reproduce: Space-Saving tracks Ideal within a few
//! percent (~6% on text, ~10% on logs) and clearly dominates LRU at small
//! k; all curves grow with k.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig7_prediction [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::{pct, Table};
use textmr_bench::scale::Scale;
use textmr_core::predictors::{
    removed_fraction_ideal, removed_fraction_lru, removed_fraction_space_saving,
};
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::{UserVisit, WeblogConfig};
use textmr_nlp::tokenizer;

fn sweep(name: &str, stream: &[Vec<u8>], ks: &[usize], table: &mut Table) {
    for &k in ks {
        let ss = removed_fraction_space_saving(stream.iter().map(|v| v.as_slice()), k, 0.1);
        let ideal = removed_fraction_ideal(stream.iter().map(|v| v.as_slice()), k, 0.1);
        let lru = removed_fraction_lru(stream.iter().map(|v| v.as_slice()), k, 0.1);
        table.row(&[
            name.to_string(),
            k.to_string(),
            pct(ss),
            pct(ideal),
            pct(lru),
        ]);
        eprintln!(
            "{name} k={k}: ss={:.3} ideal={:.3} lru={:.3}",
            ss, ideal, lru
        );
    }
}

fn main() {
    let scale = Scale::from_args();

    // Key stream 1: corpus words.
    let corpus = CorpusConfig {
        lines: scale.corpus_lines / 2,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    eprintln!("generating corpus …");
    let words: Vec<Vec<u8>> = corpus
        .generate()
        .iter()
        .flat_map(|l| {
            tokenizer::words(l)
                .map(|w| w.into_bytes())
                .collect::<Vec<_>>()
        })
        .collect();

    // Key stream 2: access-log destination URLs.
    eprintln!("generating access log …");
    let weblog = WeblogConfig {
        num_urls: scale.urls,
        num_visits: scale.visits / 2,
        ..Default::default()
    };
    let urls: Vec<Vec<u8>> = weblog
        .generate_visits()
        .iter()
        .filter_map(|l| UserVisit::parse(l).map(|v| v.dest_url.as_bytes().to_vec()))
        .collect();

    let ks = [30usize, 100, 300, 1000, 3000, 10_000];
    let mut table = Table::new(&["stream", "k", "space_saving_pct", "ideal_pct", "lru_pct"]);
    println!("Figure 7 reproduction — intermediate values removed vs buffer size (s = 0.1)\n");
    sweep("text_corpus", &words, &ks, &mut table);
    sweep("access_log", &urls, &ks, &mut table);
    table.print();
    let path = table.write_csv("fig7_prediction").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: space-saving within ~6% of ideal on text and ~10%\n\
         on the access log; LRU trails at small k."
    );
}
