//! Table IV — cloud-cluster results: WordCount, InvertedIndex and PageRank
//! on the 20-node EC2-like configuration with proportionally scaled
//! inputs and a weaker per-flow shuffle network.
//!
//! Paper shape to reproduce: WordCount and PageRank keep savings similar
//! to the local cluster; InvertedIndex's improvement shrinks because its
//! large shuffle volume costs relatively more on the cloud network.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin table4_ec2 [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{ec2_cluster, run_all_configs, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::{KeyClass, Workload};
use textmr_data::graph::GraphConfig;
use textmr_data::text::CorpusConfig;
use textmr_engine::io::dfs::SimDfs;

fn main() {
    let scale = Scale::from_args();
    // Scale inputs up for the larger cluster, as the paper does (50 GB /
    // 145 GB inputs on EC2 vs 8.5 GB / 23 GB locally ⇒ roughly 6×; we use
    // 4× to keep the harness quick).
    let factor = 4usize;
    let cluster = ec2_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, scale.block_size);

    eprintln!("generating scaled datasets …");
    let corpus = CorpusConfig {
        lines: scale.corpus_lines * factor,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    dfs.put("corpus", corpus.generate_bytes());
    let graph = GraphConfig {
        pages: scale.pages * factor,
        ..Default::default()
    };
    dfs.put("graph", graph.generate_bytes());

    let workloads = [
        Workload {
            name: "WordCount",
            job: Arc::new(textmr_apps::WordCount),
            inputs: vec![("corpus", 0)],
            class: KeyClass::Text,
            text_centric: true,
        },
        Workload {
            name: "InvertedIndex",
            job: Arc::new(textmr_apps::InvertedIndex),
            inputs: vec![("corpus", 0)],
            class: KeyClass::Text,
            text_centric: true,
        },
        Workload {
            name: "PageRank",
            job: Arc::new(textmr_apps::PageRank::new((scale.pages * factor) as u64)),
            inputs: vec![("graph", 0)],
            class: KeyClass::Log,
            text_centric: false,
        },
    ];

    let mut table = Table::new(&["app", "config", "wall_ms", "vs_baseline_pct", "shuffle_mb"]);
    println!(
        "Table IV reproduction — EC2-like cluster ({} nodes)\n",
        cluster.nodes
    );
    for w in &workloads {
        eprintln!("running {} …", w.name);
        let runs = run_all_configs(&cluster, &dfs, w, REDUCERS * 2);
        let base = runs[0].1.profile.wall as f64;
        for (config, run) in &runs {
            table.row(&[
                w.name.to_string(),
                config.name().to_string(),
                ms(run.profile.wall),
                format!("{:.1}", 100.0 * run.profile.wall as f64 / base),
                format!(
                    "{:.1}",
                    run.profile.shuffled_bytes as f64 / (1 << 20) as f64
                ),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("table4_ec2").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: WordCount/PageRank savings track the local cluster;\n\
         InvertedIndex improves less — its big shuffle pays the cloud\n\
         network's toll regardless of map-side wins."
    );
}
