//! Figure 10 — SynText sweep: percentage of execution time saved by the
//! combined optimizations across the (CPU-intensity × storage-intensity)
//! plane.
//!
//! Paper shape to reproduce: the optimizations help most at moderate CPU
//! intensity and strong combine effectiveness (low β); gains fade when the
//! map function dominates (high CPU — WordPOSTag's corner) and shrink when
//! combining cannot reduce data (high β — InvertedIndex's corner, which
//! still profits via fewer records to sort).
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig10_syntext [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::Table;
use textmr_bench::runner::{local_cluster, run_config, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::{KeyClass, Workload};
use textmr_data::text::CorpusConfig;
use textmr_engine::io::dfs::SimDfs;

fn main() {
    let scale = Scale::from_args();
    let cluster = local_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, scale.block_size);
    let corpus = CorpusConfig {
        lines: scale.corpus_lines / 2,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    eprintln!("generating corpus …");
    dfs.put("corpus", corpus.generate_bytes());

    // CPU-intensity as a multiple of WordCount's map cost; storage β.
    // (256 already pushes user code far past 80% of the job — the regime
    // where, as the paper shows, the optimizations stop mattering.)
    let cpu_factors = [0u32, 8, 64, 256];
    let betas = [0.0f64, 0.33, 0.66, 1.0];

    let mut table = Table::new(&[
        "cpu_factor",
        "storage_beta",
        "baseline_ms",
        "combined_ms",
        "time_saved_pct",
    ]);
    println!("Figure 10 reproduction — SynText time saved, combined optimizations\n");
    for &cpu in &cpu_factors {
        for &beta in &betas {
            let w = Workload {
                name: "SynText",
                job: Arc::new(textmr_apps::SynText::new(cpu, beta)),
                inputs: vec![("corpus", 0)],
                class: KeyClass::Text,
                text_centric: true,
            };
            let base = run_config(&cluster, &dfs, &w, Config::Baseline, REDUCERS);
            let comb = run_config(&cluster, &dfs, &w, Config::Combined, REDUCERS);
            let saved = 100.0 * (1.0 - comb.profile.wall as f64 / base.profile.wall.max(1) as f64);
            eprintln!("cpu={cpu:<4} beta={beta:.2}: saved {saved:.1}%");
            table.row(&[
                cpu.to_string(),
                format!("{beta:.2}"),
                format!("{:.1}", base.profile.wall as f64 / 1e6),
                format!("{:.1}", comb.profile.wall as f64 / 1e6),
                format!("{saved:.1}"),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig10_syntext").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: savings peak at low-to-moderate CPU intensity with\n\
         effective combining, and fall toward zero as map CPU dominates."
    );
}
