//! Trace harness — Chrome-trace/Perfetto exports of the virtual schedule.
//!
//! Runs WordCount with tracing enabled under the paper's four
//! configurations (baseline, each optimization alone, both combined) plus
//! a seeded fault + straggler + speculation plan, and for every run:
//!
//! * validates the trace against the job profile (per-lane tiling, no
//!   slot double-booking, op spans summing to the profile's op totals);
//! * validates the exported JSON against the Chrome trace event schema;
//! * writes `results/trace_<config>.json` — open it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The fault run's ASCII timeline is printed so recovery (failed attempt,
//! straggler stretch, speculative backup) is visible without a browser.
//!
//! A diff mode aligns two exported traces lane-by-lane and prints the
//! Fig. 9-style wait-delta table (plus `results/wait_delta.json`):
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin trace [-- --scale paper]
//! cargo run --release -p textmr-bench --bin trace -- --smoke   # CI
//! cargo run --release -p textmr-bench --bin trace -- --diff a.json b.json
//! ```
//!
//! The normal run also diffs baseline against the combined optimization
//! automatically, so the wait-migration table ships with the traces.

#![forbid(unsafe_code)]

use std::path::Path;
use std::sync::Arc;
use textmr_bench::report::{results_dir, Table};
use textmr_bench::runner::{local_cluster, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::{KeyClass, Workload};
use textmr_core::optimized;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{JobConfig, JobRun};
use textmr_engine::fault::{FaultPlan, SpeculationConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::prelude::{run_job, validate_chrome_trace, JobTrace};
use textmr_engine::trace::diff::diff_traces;

/// `--diff A B`: load two exported traces, print the wait-delta table,
/// write `results/wait_delta.json`.
fn diff_mode(files: &[String]) {
    let [a, b] = files else {
        eprintln!("usage: trace --diff <a.json> <b.json>");
        std::process::exit(2);
    };
    let load = |path: &String| -> JobTrace {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read trace {path}: {e}"));
        JobTrace::from_chrome_json(&text).unwrap_or_else(|e| panic!("parse trace {path}: {e}"))
    };
    let name = |path: &String| {
        Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone())
    };
    let diff = diff_traces(&name(a), &load(a), &name(b), &load(b));
    print!("{}", diff.render_text());
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let out = dir.join("wait_delta.json");
    std::fs::write(&out, diff.to_json()).expect("write wait_delta.json");
    println!("\nwrote {}", out.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        diff_mode(&args[i + 1..]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let lines = if smoke { 1_500 } else { scale.corpus_lines };
    // Small blocks force several map tasks so the timeline has texture.
    let block = if smoke {
        8 << 10
    } else {
        scale.block_size.min(128 << 10)
    };

    let cluster = local_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, block);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines,
            vocab_size: scale.vocab,
            ..Default::default()
        }
        .generate_bytes(),
    );
    let workload = Workload {
        name: "WordCount",
        job: Arc::new(textmr_apps::WordCount),
        inputs: vec![("corpus", 0)],
        class: KeyClass::Text,
        text_centric: true,
    };

    println!(
        "Trace harness — WordCount across {} configs + a fault plan ({} lines)\n",
        Config::ALL.len(),
        lines
    );
    let mut table = Table::new(&[
        "config",
        "entries",
        "events",
        "span_events",
        "nodes",
        "wall_ms",
        "file",
    ]);

    // Multi-fetcher runs (dynamic event-loop shuffle with recorded
    // happens-before edges) get their own file names, so the shipped
    // 1-fetcher legacy figures are never clobbered.
    let fsuffix = if cluster.shuffle_fetchers > 1 {
        format!("_f{}", cluster.shuffle_fetchers)
    } else {
        String::new()
    };

    // The paper's four configurations, traced.
    let mut kept: Vec<(String, JobTrace)> = Vec::new();
    for config in Config::ALL {
        let job_cfg = optimized(
            JobConfig::default().with_reducers(REDUCERS),
            config.optimization(&workload),
        )
        .with_trace();
        let name = format!("{}{fsuffix}", config.name().to_lowercase());
        eprintln!("tracing {name} …");
        let run = run_job(
            &cluster,
            &job_cfg,
            workload.job.clone(),
            &dfs,
            &workload.inputs,
        )
        .unwrap_or_else(|e| panic!("{name} run failed: {e}"));
        export(&mut table, &name, &run);
        kept.push((name, run.trace.expect("trace requested")));
    }

    // Recovery machinery in one plan: a record fault (retry), a transient
    // fetch fault (backoff), a straggler node, and speculation racing it.
    let plan = FaultPlan::new()
        .map_fail_after(0, 3)
        .shuffle_fail(1, 0)
        .slow_node(0, 8);
    let job_cfg = JobConfig::default()
        .with_reducers(REDUCERS)
        .with_fault_plan(plan)
        .with_speculation(SpeculationConfig::default())
        .with_trace();
    eprintln!("tracing faults …");
    let faulty = run_job(
        &cluster,
        &job_cfg,
        workload.job.clone(),
        &dfs,
        &workload.inputs,
    )
    .expect("fault run failed");
    export(&mut table, &format!("faults{fsuffix}"), &faulty);

    table.print();

    // Where did the waiting move? Baseline vs. the combined optimization.
    let (first, last) = (&kept[0], &kept[kept.len() - 1]);
    let diff = diff_traces(&first.0, &first.1, &last.0, &last.1);
    println!("\nwait-delta table ({} → {}):\n", first.0, last.0);
    print!("{}", diff.render_text());
    let diff_path = results_dir().join("wait_delta.json");
    std::fs::write(&diff_path, diff.to_json()).expect("write wait_delta.json");
    println!("\nwrote {}", diff_path.display());

    println!("\nfault-run timeline (failed attempt x, straggler stretch, backups):\n");
    print!(
        "{}",
        faulty
            .trace
            .as_ref()
            .expect("trace requested")
            .render_text(100)
    );
    println!("\nopen any results/trace_*.json in https://ui.perfetto.dev");
    if smoke {
        println!("\nsmoke OK: all traces tiled, matched their profiles, and validated");
    }
}

/// Cross-check one run's trace, write its Chrome JSON, add a table row.
fn export(table: &mut Table, name: &str, run: &JobRun) {
    let trace = run.trace.as_ref().expect("trace requested");
    trace
        .check()
        .unwrap_or_else(|e| panic!("{name}: trace invariants violated: {e}"));
    assert_eq!(
        trace.op_times(),
        run.profile.total_ops(),
        "{name}: trace op spans diverged from the profile totals"
    );
    let json = trace.to_chrome_json();
    let summary =
        validate_chrome_trace(&json).unwrap_or_else(|e| panic!("{name}: invalid trace JSON: {e}"));
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("trace_{name}.json"));
    std::fs::write(&path, &json).expect("write trace json");
    table.row(&[
        name.to_string(),
        trace.entries.len().to_string(),
        summary.events.to_string(),
        summary.complete_events.to_string(),
        summary.pids.to_string(),
        format!("{:.3}", run.profile.wall as f64 / 1e6),
        format!("results/trace_{name}.json"),
    ]);
}
