//! Ablation: validate the spill-size recurrence (paper Eq. 2) against the
//! engine's real execution.
//!
//! Runs a real WordCount map workload at several fixed spill fractions,
//! extracts the measured per-spill sizes and produce/consume rates from the
//! task profiles, and compares the measured steady-state spill size with
//! the recurrence `m_i = max{xM, min{(p/c)·m_{i−1}, M − m_{i−1}}}`
//! evaluated at the measured rates.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin eq2_spillsizes [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::Table;
use textmr_bench::runner::local_cluster;
use textmr_bench::scale::Scale;
use textmr_core::model::RateModel;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, JobConfig};
use textmr_engine::controller::fixed_spill_factory;
use textmr_engine::io::dfs::SimDfs;

fn main() {
    let scale = Scale::from_args();
    let cluster = local_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, scale.block_size);
    let corpus = CorpusConfig {
        lines: scale.corpus_lines / 2,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    eprintln!("generating corpus …");
    dfs.put("corpus", corpus.generate_bytes());

    let mut table = Table::new(&[
        "fraction",
        "spills",
        "measured_steady_kb",
        "model_steady_kb",
        "rel_err_pct",
        "p_mb_s",
        "c_mb_s",
    ]);
    println!("Eq. 2 validation — measured vs modelled steady-state spill size\n");
    for tenths in [2u32, 4, 5, 6, 8] {
        let x = tenths as f64 / 10.0;
        let mut cfg = JobConfig::default().with_reducers(6);
        cfg.spill_controller = fixed_spill_factory(x);
        let run = run_job(
            &cluster,
            &cfg,
            Arc::new(textmr_apps::WordCount),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        // Use the task with the most spills for a clean steady state.
        let task = run
            .profile
            .map_tasks
            .iter()
            .max_by_key(|t| t.spills.len())
            .expect("at least one task");
        let spills = &task.spills;
        if spills.len() < 4 {
            eprintln!("x={x}: only {} spills; skipping", spills.len());
            continue;
        }
        // Measured steady state: median of the non-final spills after
        // ramp-up (the final spill is the drain remainder).
        let mut steady: Vec<usize> = spills[1..spills.len() - 1]
            .iter()
            .map(|s| s.bytes)
            .collect();
        steady.sort_unstable();
        let measured = steady[steady.len() / 2] as f64;
        // Rates from totals (bytes per ns).
        let bytes: f64 = spills.iter().map(|s| s.bytes as f64).sum();
        let p = bytes / spills.iter().map(|s| s.produce_ns as f64).sum::<f64>();
        let c = bytes / spills.iter().map(|s| s.consume_ns as f64).sum::<f64>();
        let capacity = cluster.spill_buffer_bytes as f64;
        let model = RateModel { p, c, capacity };
        let predicted = *model.spill_sizes(x, 40).last().unwrap();
        let rel = (measured - predicted).abs() / predicted * 100.0;
        table.row(&[
            format!("{x:.1}"),
            spills.len().to_string(),
            format!("{:.1}", measured / 1024.0),
            format!("{:.1}", predicted / 1024.0),
            format!("{rel:.1}"),
            format!("{:.1}", p * 1e9 / (1 << 20) as f64),
            format!("{:.1}", c * 1e9 / (1 << 20) as f64),
        ]);
    }
    table.print();
    let path = table.write_csv("eq2_spillsizes").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\ncheck: measured steady-state spill sizes should track the Eq. 2\n\
         fixed point within record-granularity error across fractions."
    );
}
