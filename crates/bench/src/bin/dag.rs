//! Multi-round DAG harness — iterative PageRank and a three-round scan
//! through the round-generic DAG executor.
//!
//! Drives [`textmr_apps::pagerank_to_convergence`] over a synthetic link
//! graph, validates the whole-DAG trace (per-round lanes, cross-round
//! hand-off edges, op totals against the cumulative profile), exports it
//! as `results/trace_dag_pagerank.json` for Perfetto and for the CI
//! happens-before race audit, and prints the per-round profile table.
//! A Goodrich-style three-round prefix-sums scan runs alongside and is
//! checked against the sequential reference.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin dag              # to convergence
//! cargo run --release -p textmr-bench --bin dag -- --smoke   # CI: 3 rounds
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_apps::{pagerank_to_convergence, PrefixApply, PrefixLocal, PrefixScan};
use textmr_bench::report::{results_dir, Table};
use textmr_bench::runner::local_cluster;
use textmr_bench::scale::Scale;
use textmr_engine::cluster::JobConfig;
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::prelude::{decode_u64, run_dag, validate_chrome_trace, JobDag, StageInput};

/// A closed synthetic link graph: every page links out, every page is
/// reachable, no rank mass leaks. Every third page drops its second
/// out-link so the graph is irregular — on a regular graph the uniform
/// initial ranks are already stationary and the residual is 0 after one
/// round, which makes for a vacuous convergence demo.
fn graph_lines(pages: u64) -> Vec<u8> {
    let mut buf = String::new();
    let init = 1.0 / pages as f64;
    for p in 0..pages {
        let a = (p + 1) % pages;
        let b = (3 * p + 1) % pages;
        if a == b || p % 3 == 0 {
            buf.push_str(&format!("{p}|{init}|{a}\n"));
        } else {
            buf.push_str(&format!("{p}|{init}|{a},{b}\n"));
        }
    }
    buf.into_bytes()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let pages: u64 = if smoke { 24 } else { 64 };
    // Smoke pins exactly three rounds (tolerance 0 never stops early);
    // the full run iterates to a 1e-6 L1 residual.
    let (tol_atto, max_rounds) = if smoke {
        (0, 3)
    } else {
        (1_000_000_000_000, 120)
    };

    let cluster = local_cluster(scale);
    let mut dfs = SimDfs::new(cluster.nodes, 256);
    dfs.put("graph", graph_lines(pages));
    let cfg = JobConfig::default().with_reducers(4).with_trace();

    println!("DAG harness — iterative PageRank over {pages} pages (≤{max_rounds} rounds)\n");
    let pr = pagerank_to_convergence(&cluster, &cfg, &dfs, "graph", pages, tol_atto, max_rounds)
        .expect("pagerank run failed");
    assert_eq!(pr.run.profile.num_rounds(), pr.rounds);
    if smoke {
        assert_eq!(pr.rounds, 3, "smoke must run exactly three rounds");
    }

    // ---- per-round profile table ------------------------------------------
    let mut table = Table::new(&[
        "round",
        "maps",
        "reduces",
        "round_ms",
        "end_ms",
        "shuffle_kb",
    ]);
    let mut prev_wall = 0;
    for (r, p) in pr.run.profile.rounds.iter().enumerate() {
        table.row(&[
            r.to_string(),
            p.map_tasks.len().to_string(),
            p.reduce_tasks.len().to_string(),
            format!("{:.3}", (p.wall - prev_wall) as f64 / 1e6),
            format!("{:.3}", p.wall as f64 / 1e6),
            format!("{:.1}", p.shuffled_bytes as f64 / 1024.0),
        ]);
        prev_wall = p.wall;
    }
    table.print();
    println!(
        "\n{} rounds, final L1 residual {:.9} rank mass, DAG wall {:.3} ms",
        pr.rounds,
        pr.residual_atto as f64 / 1e18,
        pr.run.profile.wall as f64 / 1e6
    );

    // ---- whole-DAG trace: validate and export -----------------------------
    let trace = pr.run.trace.as_ref().expect("trace requested");
    trace.check().expect("trace invariants violated");
    assert_eq!(
        trace.op_times(),
        pr.run.profile.total_ops(),
        "trace op spans diverged from the cumulative profile"
    );
    for r in 0..pr.rounds {
        assert!(
            trace.entries.iter().any(|e| e.round == r),
            "round {r} missing from the trace"
        );
    }
    let json = trace.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("invalid trace JSON");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("trace_dag_pagerank.json");
    std::fs::write(&path, &json).expect("write trace json");
    println!(
        "trace: {} entries, {} events, {} nodes → {}",
        trace.entries.len(),
        summary.events,
        summary.pids,
        path.display()
    );

    // ---- three-round prefix-sums scan, checked against the reference ------
    let elems: u64 = if smoke { 64 } else { 512 };
    let block_size = 8;
    let mut lines = String::new();
    let mut reference = Vec::new();
    let mut acc = 0u64;
    for i in 0..elems {
        let v = (i * i * 31 + 7) % 1000;
        lines.push_str(&format!("{i} {v}\n"));
        acc += v;
        reference.push((i, acc));
    }
    dfs.put("elems", lines.into_bytes());
    let num_blocks = elems.div_ceil(block_size);
    let scan_cfg = JobConfig::default().with_reducers(3);
    let dag = JobDag::new()
        .stage(
            Arc::new(PrefixLocal { block_size }),
            scan_cfg.clone(),
            StageInput::dfs("elems"),
        )
        .then(Arc::new(PrefixScan { num_blocks }), scan_cfg.clone())
        .then(Arc::new(PrefixApply), scan_cfg);
    let scan = run_dag(&cluster, &dag, &dfs).expect("prefix-sums run failed");
    let got: Vec<(u64, u64)> = scan
        .sorted_pairs()
        .into_iter()
        .map(|(k, v)| (decode_u64(&k).unwrap(), decode_u64(&v).unwrap()))
        .collect();
    assert_eq!(
        got, reference,
        "prefix-sums diverged from the sequential scan"
    );
    println!(
        "prefix sums: {elems} elements, {num_blocks} blocks, 3 rounds, matches the sequential scan"
    );

    if smoke {
        println!("\nsmoke OK: 3-round PageRank traced and validated, prefix-sums verified");
    }
}
