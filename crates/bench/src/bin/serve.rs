//! Multi-tenant serve harness — a Zipfian job-arrival workload swept
//! across S3-FIFO map-output cache budgets.
//!
//! Admits a queue of heterogeneous jobs (WordCount, grep, inverted
//! index, access-log aggregation, three-round prefix sums) from three
//! weighted tenants onto the shared serve cluster, once with the cache
//! off and once per byte budget, and reports cache hit-rate, virtual
//! makespan, per-tenant mean turnaround, and per-tenant slot share.
//! Along the way it pins the serve invariants:
//!
//! * every job's outputs are byte-identical across all cache budgets
//!   (the cache must be transparent to data);
//! * re-multiplexing the recorded solo traces reproduces the schedule
//!   and the merged trace byte for byte (the multiplexer is pure);
//! * the merged multi-job trace validates, race-checks clean, and
//!   round-trips through the Chrome JSON export — written to
//!   `results/trace_serve.json` for Perfetto and the CI
//!   `textmr-lint --trace` audit.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin serve             # full sweep
//! cargo run --release -p textmr-bench --bin serve -- --smoke  # CI sizing
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{results_dir, Table};
use textmr_bench::runner::local_cluster;
use textmr_bench::scale::Scale;
use textmr_engine::prelude::validate_chrome_trace;
use textmr_engine::trace::race::check_races;
use textmr_serve::sched::{merge_traces, multiplex, JobPlan};
use textmr_serve::workload::{self, WorkloadConfig};
use textmr_serve::{serve, S3FifoCache, ServeCacheConfig, ServeConfig, ServeRun};

fn ms(vns: u64) -> String {
    format!("{:.2}", vns as f64 / 1e6)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let cluster = local_cluster(scale);

    let wl_cfg = WorkloadConfig {
        jobs: if smoke { 20 } else { 40 },
        tenants: 3,
        lines: if smoke { 150 } else { 600 },
        alpha: 1.2,
        ..Default::default()
    };
    // One cache-off baseline plus the budget sweep.
    let budgets: &[u64] = &[0, 8 << 10, 64 << 10, 1 << 20];

    println!(
        "serve harness — {} Zipfian jobs, {} tenants, {} cache budgets\n",
        wl_cfg.jobs,
        wl_cfg.tenants,
        budgets.len() - 1
    );

    let mut table = Table::new(&[
        "budget_bytes",
        "hits",
        "misses",
        "hit_rate_pct",
        "wall_ms",
        "t0_turnaround_ms",
        "t1_turnaround_ms",
        "t2_turnaround_ms",
        "t0_share_pct",
        "t1_share_pct",
        "t2_share_pct",
    ]);

    let mut runs: Vec<ServeRun> = Vec::new();
    let mut tenants_roster = Vec::new();
    for &budget in budgets {
        let wl = workload::generate(cluster.nodes, &wl_cfg);
        tenants_roster = wl.tenants.clone();
        let serve_cfg = if budget == 0 {
            ServeConfig::default()
        } else {
            ServeConfig {
                cache: Some(ServeCacheConfig {
                    cache: Arc::new(S3FifoCache::new(budget)),
                    lookup_cost_ns: 50_000,
                }),
            }
        };
        let run = serve(&cluster, &wl.tenants, wl.requests, &wl.dfs, &serve_cfg)
            .expect("serve run failed");
        assert!(run.rejected.is_empty(), "workload must admit fully");
        assert_eq!(run.jobs.len(), wl_cfg.jobs);

        let (hits, misses) = run.jobs.iter().fold((0u64, 0u64), |(h, m), j| {
            (h + j.cache_hits, m + j.cache_misses)
        });
        let hit_rate = if hits + misses > 0 {
            100.0 * hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let mut turn = vec![(0u64, 0u64); wl.tenants.len()]; // (sum, count)
        for j in &run.jobs {
            turn[j.tenant].0 += j.finish - j.arrival;
            turn[j.tenant].1 += 1;
        }
        let mean_turn: Vec<u64> = turn
            .iter()
            .map(|&(sum, n)| sum.checked_div(n).unwrap_or(0))
            .collect();
        let total_busy: u64 = run
            .profile
            .tenants
            .iter()
            .map(|t| t.map_busy + t.reduce_busy)
            .sum();
        let share = |t: usize| {
            let mine = run.profile.tenants[t].map_busy + run.profile.tenants[t].reduce_busy;
            format!("{:.1}", 100.0 * mine as f64 / total_busy.max(1) as f64)
        };
        table.row(&[
            budget.to_string(),
            hits.to_string(),
            misses.to_string(),
            format!("{hit_rate:.1}"),
            ms(run.profile.wall),
            ms(mean_turn[0]),
            ms(mean_turn[1]),
            ms(mean_turn[2]),
            share(0),
            share(1),
            share(2),
        ]);
        runs.push(run);
    }
    table.print();
    let csv = table.write_csv("serve_zipf").expect("write csv");
    println!("\ncsv: {}", csv.display());

    // ---- cache transparency: outputs identical across every budget --------
    for run in &runs[1..] {
        for (a, b) in runs[0].jobs.iter().zip(&run.jobs) {
            assert_eq!(
                a.outputs, b.outputs,
                "cache changed the data of job {}",
                a.name
            );
        }
    }
    let largest = runs.last().expect("at least one run");
    let largest_hits: u64 = largest.jobs.iter().map(|j| j.cache_hits).sum();
    assert!(
        largest_hits > 0,
        "the largest budget must score hits on a Zipfian class mix"
    );
    println!(
        "cache transparency: outputs byte-identical across all {} budgets",
        budgets.len()
    );

    // ---- multiplexer purity: re-multiplexing is byte-identical ------------
    let plans: Vec<JobPlan> = largest
        .jobs
        .iter()
        .map(|j| {
            JobPlan::from_trace(j.job, j.tenant, j.arrival, &j.solo_trace)
                .expect("solo trace must replay")
        })
        .collect();
    let solos: Vec<_> = largest.jobs.iter().map(|j| j.solo_trace.clone()).collect();
    let remux = multiplex(
        cluster.nodes,
        cluster.map_slots_per_node,
        cluster.reduce_slots_per_node,
        &tenants_roster,
        &plans,
    );
    assert_eq!(remux, largest.schedule, "re-multiplexing diverged");
    let remerged = merge_traces(&plans, &solos, &remux);
    assert_eq!(remerged, largest.trace, "re-merged trace diverged");
    println!("replay: re-multiplexed schedule and merged trace are byte-identical");

    // ---- merged multi-job trace: validate, race-check, export ------------
    largest
        .trace
        .check()
        .expect("merged trace invariants violated");
    let report = check_races(&largest.trace);
    assert!(report.is_clean(), "{}", report.render());
    let json = largest.trace.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("invalid trace JSON");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("trace_serve.json");
    std::fs::write(&path, &json).expect("write trace json");
    println!(
        "trace: {} entries across {} jobs, {} events, race check clean → {}",
        largest.trace.entries.len(),
        largest.jobs.len(),
        summary.events,
        path.display()
    );

    if smoke {
        println!(
            "\nsmoke OK: {} jobs × {} tenants × {} budgets served, replayed, race-checked",
            wl_cfg.jobs,
            wl_cfg.tenants,
            budgets.len() - 1
        );
    }
}
