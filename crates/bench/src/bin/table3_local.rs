//! Table III — overall local-cluster timing results after applying the
//! optimizations: Baseline / FreqOpt / SpillOpt / Combined × six apps.
//!
//! Paper shape to reproduce: text-centric apps improve the most (tens of
//! percent; Combined ≥ either alone), WordPOSTag improves little in
//! *percentage* (its map CPU dominates) though its absolute saving is
//! real, relational apps change only modestly, PageRank sits in between.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin table3_local [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{local_cluster, run_all_configs, Config, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;

fn main() {
    let scale = Scale::from_args();
    let (dfs, workloads) = standard_suite(scale);
    let cluster = local_cluster(scale);

    let mut table = Table::new(&["app", "config", "wall_ms", "vs_baseline_pct"]);
    println!(
        "Table III reproduction — local cluster ({} nodes)\n",
        cluster.nodes
    );
    for w in &workloads {
        eprintln!("running {} …", w.name);
        let runs = run_all_configs(&cluster, &dfs, w, REDUCERS);
        let base = runs[0].1.profile.wall as f64;
        for (config, run) in &runs {
            let wall = run.profile.wall;
            table.row(&[
                w.name.to_string(),
                config.name().to_string(),
                ms(wall),
                format!("{:.1}", 100.0 * wall as f64 / base),
            ]);
            if *config == Config::Combined {
                table.row(&[String::new(), String::new(), String::new(), String::new()]);
            }
        }
    }
    table.print();
    let path = table.write_csv("table3_local").unwrap();
    println!("\nwrote {}", path.display());
}
