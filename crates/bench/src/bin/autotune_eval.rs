//! Ablation: does the auto-tuner (paper Sec. III-C) pick a good sampling
//! fraction `s` without being told the key distribution?
//!
//! For corpora with different true Zipf exponents, runs frequency-buffering
//! with a sweep of fixed `s` values and with the auto-tuner (pre-profile →
//! α̂ → `n·s ≥ k^α·H_{m,α}`), reporting absorbed records and virtual wall
//! time. The auto-tuned run should land near the best fixed `s` for every
//! α — the paper's claim that neither the user nor the system needs to
//! know the distribution in advance.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin autotune_eval [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use textmr_bench::report::{ms, Table};
use textmr_bench::runner::local_cluster;
use textmr_bench::scale::Scale;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;

fn absorbed_pct(run: &JobRun) -> f64 {
    let absorbed: u64 = run
        .profile
        .map_tasks
        .iter()
        .map(|t| t.freq_absorbed_records)
        .sum();
    let emitted: u64 = run
        .profile
        .map_tasks
        .iter()
        .map(|t| t.emitted_records)
        .sum();
    100.0 * absorbed as f64 / emitted.max(1) as f64
}

fn main() {
    let scale = Scale::from_args();
    let cluster = local_cluster(scale);

    let mut table = Table::new(&["true_alpha", "s", "absorbed_pct", "wall_ms"]);
    println!("Auto-tuner evaluation — fixed s sweep vs auto-tuned s per key skew\n");
    for &alpha in &[0.6f64, 0.8, 1.0, 1.2] {
        let mut dfs = SimDfs::new(cluster.nodes, scale.block_size);
        let corpus = CorpusConfig {
            lines: scale.corpus_lines / 2,
            vocab_size: scale.vocab,
            alpha,
            ..Default::default()
        };
        eprintln!("generating corpus alpha={alpha} …");
        dfs.put("corpus", corpus.generate_bytes());

        let run_s = |s: Option<f64>| -> JobRun {
            let cfg = optimized(
                JobConfig::default().with_reducers(6),
                OptimizationConfig::freq_only(FreqBufferConfig {
                    k: 3000,
                    sampling_fraction: s,
                    ..Default::default()
                }),
            );
            run_job(
                &cluster,
                &cfg,
                Arc::new(textmr_apps::WordCount),
                &dfs,
                &[("corpus", 0)],
            )
            .unwrap()
        };

        for s in [0.005f64, 0.02, 0.1, 0.3] {
            let run = run_s(Some(s));
            table.row(&[
                format!("{alpha:.1}"),
                format!("{s:.3}"),
                format!("{:.1}", absorbed_pct(&run)),
                ms(run.profile.wall),
            ]);
        }
        let auto = run_s(None);
        table.row(&[
            format!("{alpha:.1}"),
            "auto".to_string(),
            format!("{:.1}", absorbed_pct(&auto)),
            ms(auto.profile.wall),
        ]);
    }
    table.print();
    let path = table.write_csv("autotune_eval").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\ncheck: 'auto' should absorb within a few points of the best\n\
         fixed s at every skew — steeper distributions tolerate (and get)\n\
         shorter profiling."
    );
}
