//! Figure 9 — map-thread and support-thread busy/wait time per map task
//! under the four configurations (Baseline / SpillOpt / FreqOpt /
//! Combined).
//!
//! Paper shape to reproduce: spill-matcher removes most of the slower
//! thread's wait (paper: ~90% WordCount, 89% InvertedIndex, 77%
//! AccessLogSum, 83% AccessLogJoin); WordPOSTag has near-zero slower-side
//! wait to begin with; PageRank improves least (p ≈ c leaves no margin).
//! Frequency-buffering alone also reduces map-thread wait by lightening
//! the support thread's sorting load.
//!
//! ```sh
//! cargo run --release -p textmr-bench --bin fig9_wait [-- --scale paper]
//! ```

#![forbid(unsafe_code)]

use textmr_bench::report::{ms, Table};
use textmr_bench::runner::{local_cluster, run_all_configs, REDUCERS};
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;
use textmr_engine::cluster::JobRun;

fn sums(run: &JobRun) -> (u64, u64, u64, u64, u64) {
    let p = &run.profile;
    let pb: u64 = p.map_tasks.iter().map(|t| t.produce_busy).sum();
    let pw: u64 = p.map_tasks.iter().map(|t| t.producer_wait).sum();
    let cb: u64 = p.map_tasks.iter().map(|t| t.consume_busy).sum();
    let cw: u64 = p.map_tasks.iter().map(|t| t.consumer_wait).sum();
    // The slower side of each task, summed.
    let slower: u64 = p
        .map_tasks
        .iter()
        .map(|t| {
            if t.produce_busy >= t.consume_busy {
                t.producer_wait
            } else {
                t.consumer_wait
            }
        })
        .sum();
    (pb, pw, cb, cw, slower)
}

fn main() {
    let scale = Scale::from_args();
    let (dfs, workloads) = standard_suite(scale);
    let cluster = local_cluster(scale);

    let mut table = Table::new(&[
        "app",
        "config",
        "map_busy_ms",
        "map_wait_ms",
        "support_busy_ms",
        "support_wait_ms",
        "slower_wait_ms",
        "slower_wait_vs_baseline_pct",
    ]);
    println!("Figure 9 reproduction — per-thread busy/wait under four configs\n");
    for w in &workloads {
        eprintln!("running {} …", w.name);
        let runs = run_all_configs(&cluster, &dfs, w, REDUCERS);
        let (_, _, _, _, base_slower) = sums(&runs[0].1);
        for (config, run) in &runs {
            let (pb, pw, cb, cw, slower) = sums(run);
            // A baseline slower-wait under 1 ms (WordPOSTag) makes the
            // ratio meaningless; the paper likewise reports "near-zero
            // wait, no improvement" for that case.
            let vs_base = if base_slower < 1_000_000 {
                "-".to_string()
            } else {
                format!("{:.0}", 100.0 * slower as f64 / base_slower as f64)
            };
            table.row(&[
                w.name.to_string(),
                config.name().to_string(),
                ms(pb),
                ms(pw),
                ms(cb),
                ms(cw),
                ms(slower),
                vs_base,
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig9_wait").unwrap();
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check: SpillOpt removes most of the slower thread's wait\n\
         for WordCount/InvertedIndex/AccessLog*; little change for\n\
         WordPOSTag (already ≈0) and a smaller cut for PageRank (p ≈ c)."
    );
}
