//! The six benchmark workloads, assembled over generated datasets.

use crate::scale::Scale;
use std::sync::Arc;
use textmr_apps::{
    AccessLogJoin, AccessLogSum, InvertedIndex, PageRank, WordCount, WordPosTag, SOURCE_RANKINGS,
    SOURCE_VISITS,
};
use textmr_core::FreqBufferConfig;
use textmr_data::graph::GraphConfig;
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::WeblogConfig;
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::Job;

/// Which frequency-buffering parameters the paper uses for this workload
/// class (Sec. V-B2: k=3000, s=0.01 for text; k=10000, s=0.1 for logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Word-keyed text application.
    Text,
    /// URL-keyed log/graph application.
    Log,
}

impl KeyClass {
    /// The paper's frequency-buffering parameters for this class.
    pub fn freq_config(self) -> FreqBufferConfig {
        match self {
            KeyClass::Text => FreqBufferConfig {
                k: 3000,
                sampling_fraction: Some(0.01),
                ..Default::default()
            },
            KeyClass::Log => FreqBufferConfig {
                k: 10_000,
                sampling_fraction: Some(0.1),
                ..Default::default()
            },
        }
    }
}

/// One benchmark application bound to its inputs.
pub struct Workload {
    /// Display name (the paper's).
    pub name: &'static str,
    /// The job.
    pub job: Arc<dyn Job>,
    /// `(dfs file, source tag)` inputs.
    pub inputs: Vec<(&'static str, u8)>,
    /// Parameter class for frequency-buffering.
    pub class: KeyClass,
    /// Is this one of the paper's three text-centric applications?
    pub text_centric: bool,
}

/// Build the DFS (all datasets) and the six workloads at `scale`.
pub fn standard_suite(scale: Scale) -> (SimDfs, Vec<Workload>) {
    let mut dfs = SimDfs::new(6, scale.block_size);

    let corpus = CorpusConfig {
        lines: scale.corpus_lines,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    dfs.put("corpus", corpus.generate_bytes());

    let pos_corpus = CorpusConfig {
        lines: scale.pos_corpus_lines,
        vocab_size: scale.vocab,
        ..Default::default()
    };
    dfs.put("pos_corpus", pos_corpus.generate_bytes());

    let weblog = WeblogConfig {
        num_urls: scale.urls,
        num_visits: scale.visits,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    dfs.put("rankings", weblog.rankings_bytes());

    let graph = GraphConfig {
        pages: scale.pages,
        ..Default::default()
    };
    dfs.put("graph", graph.generate_bytes());

    let workloads = vec![
        Workload {
            name: "WordCount",
            job: Arc::new(WordCount),
            inputs: vec![("corpus", 0)],
            class: KeyClass::Text,
            text_centric: true,
        },
        Workload {
            name: "InvertedIndex",
            job: Arc::new(InvertedIndex),
            inputs: vec![("corpus", 0)],
            class: KeyClass::Text,
            text_centric: true,
        },
        Workload {
            name: "WordPOSTag",
            job: Arc::new(WordPosTag::new()),
            inputs: vec![("pos_corpus", 0)],
            class: KeyClass::Text,
            text_centric: true,
        },
        Workload {
            name: "AccessLogSum",
            job: Arc::new(AccessLogSum),
            inputs: vec![("visits", SOURCE_VISITS)],
            class: KeyClass::Log,
            text_centric: false,
        },
        Workload {
            name: "AccessLogJoin",
            job: Arc::new(AccessLogJoin),
            inputs: vec![("visits", SOURCE_VISITS), ("rankings", SOURCE_RANKINGS)],
            class: KeyClass::Log,
            text_centric: false,
        },
        Workload {
            name: "PageRank",
            job: Arc::new(PageRank::new(scale.pages as u64)),
            inputs: vec![("graph", 0)],
            class: KeyClass::Log,
            text_centric: false,
        },
    ];
    (dfs, workloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_the_papers_six() {
        let (dfs, ws) = standard_suite(Scale::small());
        assert_eq!(ws.len(), 6);
        assert_eq!(ws.iter().filter(|w| w.text_centric).count(), 3);
        for w in &ws {
            for (name, _) in &w.inputs {
                assert!(dfs.get(name).is_some(), "missing dataset {name}");
            }
        }
    }

    #[test]
    fn class_parameters_match_the_paper() {
        let t = KeyClass::Text.freq_config();
        assert_eq!(t.k, 3000);
        assert_eq!(t.sampling_fraction, Some(0.01));
        let l = KeyClass::Log.freq_config();
        assert_eq!(l.k, 10_000);
        assert_eq!(l.sampling_fraction, Some(0.1));
    }
}
