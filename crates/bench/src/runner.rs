//! Running workloads under the paper's four configurations.

use crate::scale::Scale;
use crate::workloads::Workload;
use textmr_core::{optimized, OptimizationConfig, SpillMatcherConfig};
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;

/// The four experimental configurations of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Stock engine: fixed spill fraction 0.8, no filter.
    Baseline,
    /// Frequency-buffering only.
    FreqOpt,
    /// Spill-matcher only.
    SpillOpt,
    /// Both optimizations.
    Combined,
}

impl Config {
    /// All four, in the paper's row order.
    pub const ALL: [Config; 4] = [
        Config::Baseline,
        Config::FreqOpt,
        Config::SpillOpt,
        Config::Combined,
    ];

    /// Display name (the paper's row label).
    pub fn name(self) -> &'static str {
        match self {
            Config::Baseline => "Baseline",
            Config::FreqOpt => "FreqOpt",
            Config::SpillOpt => "SpillOpt",
            Config::Combined => "Combined",
        }
    }

    /// Build the optimization config for `workload`'s parameter class.
    pub fn optimization(self, workload: &Workload) -> OptimizationConfig {
        let freq = workload.class.freq_config();
        match self {
            Config::Baseline => OptimizationConfig::baseline(),
            Config::FreqOpt => OptimizationConfig::freq_only(freq),
            Config::SpillOpt => OptimizationConfig::spill_only(SpillMatcherConfig::default()),
            Config::Combined => OptimizationConfig {
                frequency_buffering: Some(freq),
                spill_matcher: Some(SpillMatcherConfig::default()),
                share_frequent_keys: true,
            },
        }
    }
}

/// Worker threads for real task execution, from the command line or the
/// environment: `--parallel` (all hardware threads), `--parallel=N`, or
/// `TEXTMR_PARALLEL=N`. Defaults to 1 — the sequential legacy mode. The
/// knob only changes real wall-clock time; every virtual-time result
/// (makespans, profiles, all paper figures) is identical at any setting.
pub fn worker_threads() -> usize {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "worker count only changes real wall time; virtual results are asserted identical at any setting")
    let mut n: Option<usize> = None;
    for arg in std::env::args() {
        if arg == "--parallel" {
            n = Some(available_parallelism());
        } else if let Some(v) = arg.strip_prefix("--parallel=") {
            n = v.parse().ok();
        }
    }
    let n = n.or_else(|| {
        std::env::var("TEXTMR_PARALLEL")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    n.unwrap_or(1).max(1)
}

/// Shuffle fetchers per reduce task, from the command line or the
/// environment: `--fetchers=N` or `TEXTMR_FETCHERS=N`. Defaults to 1 — the
/// sequential legacy shuffle with independent-flow network accounting.
/// With `N > 1` fetches run on a bounded pool and shuffle virtual time
/// comes from the contention-aware NIC model; outputs and signatures are
/// identical at any setting (see `textmr_engine::shuffle`).
pub fn shuffle_fetchers() -> usize {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "fetcher count only changes real wall time; outputs and signatures are asserted identical at any setting")
    let mut n: Option<usize> = None;
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--fetchers=") {
            n = v.parse().ok();
        }
    }
    let n = n.or_else(|| {
        std::env::var("TEXTMR_FETCHERS")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    n.unwrap_or(1).max(1)
}

/// Hardware threads available to this process (fallback 4).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The paper's local cluster, with the spill buffer scaled to the input
/// regime and the worker pool sized by [`worker_threads`].
pub fn local_cluster(scale: Scale) -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = scale.spill_buffer;
    c.worker_threads = worker_threads();
    c.shuffle_fetchers = shuffle_fetchers();
    c
}

/// The paper's EC2 cluster at the same buffer regime (worker pool sized by
/// [`worker_threads`], like [`local_cluster`]).
pub fn ec2_cluster(scale: Scale) -> ClusterConfig {
    let mut c = ClusterConfig::ec2();
    c.spill_buffer_bytes = scale.spill_buffer;
    c.worker_threads = worker_threads();
    c.shuffle_fetchers = shuffle_fetchers();
    c
}

/// Repetitions per (workload, config) measurement; the median-wall run is
/// reported. Override with `TEXTMR_REPS`.
pub fn reps() -> usize {
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "rep count only picks how many identical runs to take the median of; results are bit-identical across reps")
    std::env::var("TEXTMR_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Run one workload under one configuration, `reps()` times, returning the
/// run with the median virtual wall time (work is measured from real
/// execution, so repetition tames scheduler/cache noise).
pub fn run_config(
    cluster: &ClusterConfig,
    dfs: &SimDfs,
    workload: &Workload,
    config: Config,
    reducers: usize,
) -> JobRun {
    let job_cfg = optimized(
        JobConfig::default().with_reducers(reducers),
        config.optimization(workload),
    );
    let mut runs: Vec<JobRun> = (0..reps().max(1))
        .map(|_| {
            run_job(
                cluster,
                &job_cfg,
                workload.job.clone(),
                dfs,
                &workload.inputs,
            )
            .unwrap_or_else(|e| panic!("{} under {:?} failed: {e}", workload.name, config))
        })
        .collect();
    runs.sort_by_key(|r| r.profile.wall);
    runs.swap_remove(runs.len() / 2)
}

/// Run one workload under all four configurations; asserts the outputs are
/// identical across configurations (the reproduction's correctness gate).
pub fn run_all_configs(
    cluster: &ClusterConfig,
    dfs: &SimDfs,
    workload: &Workload,
    reducers: usize,
) -> Vec<(Config, JobRun)> {
    let runs: Vec<(Config, JobRun)> = Config::ALL
        .iter()
        .map(|&c| (c, run_config(cluster, dfs, workload, c, reducers)))
        .collect();
    let baseline = runs[0].1.sorted_pairs();
    for (c, run) in &runs[1..] {
        assert_eq!(
            run.sorted_pairs(),
            baseline,
            "{} output changed under {:?}",
            workload.name,
            c
        );
    }
    runs
}

/// Default reducer count used by the harnesses (the paper runs 12 across
/// 6 nodes; we keep 2 per node).
pub const REDUCERS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::standard_suite;

    #[test]
    fn wordcount_runs_under_all_configs() {
        let mut scale = Scale::small();
        scale.corpus_lines = 1500;
        let (dfs, ws) = standard_suite(scale);
        let cluster = local_cluster(scale);
        let runs = run_all_configs(&cluster, &dfs, &ws[0], 4);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|(_, r)| !r.sorted_pairs().is_empty()));
    }
}
