//! # textmr-bench — harness infrastructure for reproducing the paper's
//! tables and figures
//!
//! One binary per table/figure lives in `src/bin/`; this library provides
//! what they share: dataset construction at a configurable scale
//! ([`scale`]), the benchmark workload definitions ([`workloads`]), the
//! four-configuration runner ([`runner`]), and table/CSV reporting
//! ([`report`]).
//!
//! Scale is chosen with `--scale small|paper` (default `small`); `small`
//! keeps every harness under a couple of minutes on a laptop, `paper`
//! stretches inputs for smoother numbers. Neither reproduces the paper's
//! absolute seconds (their testbed was a physical Hadoop cluster); the
//! *shapes* — who wins, by roughly what factor, where crossovers sit — are
//! the reproduction targets (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod report;
pub mod runner;
pub mod scale;
pub mod workloads;
