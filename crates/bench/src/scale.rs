//! Input scales and CLI parsing shared by the harness binaries.

/// Dataset sizes for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Text-corpus lines (WordCount, InvertedIndex, SynText).
    pub corpus_lines: usize,
    /// Text-corpus lines for WordPOSTag (HMM tagging is ~30× costlier per
    /// line, so its corpus is scaled down exactly as the paper ran it far
    /// longer instead).
    pub pos_corpus_lines: usize,
    /// Corpus vocabulary size.
    pub vocab: usize,
    /// UserVisits records.
    pub visits: usize,
    /// Distinct URLs.
    pub urls: usize,
    /// Web-graph pages.
    pub pages: usize,
    /// DFS block size (bytes) — one map task per block.
    pub block_size: usize,
    /// Map-side spill buffer (bytes). Deliberately well below a split's
    /// intermediate output so tasks spill several times, like Hadoop with
    /// io.sort.mb ≪ map output.
    pub spill_buffer: usize,
}

impl Scale {
    /// Quick runs (seconds per job).
    pub fn small() -> Self {
        Scale {
            corpus_lines: 30_000,
            pos_corpus_lines: 4_000,
            vocab: 30_000,
            visits: 120_000,
            urls: 20_000,
            pages: 30_000,
            block_size: 1 << 20,
            spill_buffer: 256 << 10,
        }
    }

    /// Larger runs for smoother numbers (a few minutes per harness).
    pub fn paper() -> Self {
        Scale {
            corpus_lines: 120_000,
            pos_corpus_lines: 10_000,
            vocab: 100_000,
            visits: 400_000,
            urls: 60_000,
            pages: 100_000,
            block_size: 2 << 20,
            spill_buffer: 256 << 10,
        }
    }

    /// Parse `--scale small|paper` from `std::env::args` (default small).
    pub fn from_args() -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                match args.next().as_deref() {
                    Some("paper") => return Scale::paper(),
                    Some("small") | None => return Scale::small(),
                    Some(other) => {
                        eprintln!("unknown scale '{other}', using small");
                        return Scale::small();
                    }
                }
            }
        }
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_larger() {
        let s = Scale::small();
        let p = Scale::paper();
        assert!(p.corpus_lines > s.corpus_lines);
        assert!(p.visits > s.visits);
        assert!(p.pages > s.pages);
    }
}
