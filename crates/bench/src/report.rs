//! Table printing and CSV output for the harness binaries.
//!
//! Every harness prints the paper's rows/series to stdout and mirrors them
//! into `results/<name>.csv` so EXPERIMENTS.md can cite stable artifacts.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table that also serializes to CSV.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        let row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as CSV under `results/<name>.csv` (created if needed). Returns
    /// the path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// The results directory: `results/` at the workspace root when run from
/// there, else the current directory's `results/`.
pub fn results_dir() -> PathBuf {
    // The harness binaries are normally run via `cargo run` from the
    // workspace root; CARGO_MANIFEST_DIR points at crates/bench.
    // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "the env read only picks where report files land, never what goes in them")
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let root = PathBuf::from(manifest).join("../..");
        if root.join("Cargo.toml").exists() {
            return root.join("results");
        }
    }
    PathBuf::from("results")
}

/// Format nanoseconds as milliseconds with one decimal.
pub fn ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrips_to_csv() {
        let mut t = Table::new(&["app", "ms"]);
        t.row(&["WordCount", "12.5"]);
        t.row(&["PageRank", "40.0"]);
        let path = t.write_csv("_test_table").unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("app,ms\n"));
        assert!(content.contains("PageRank,40.0"));
        fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1_500_000), "1.5");
        assert_eq!(pct(0.391), "39.1");
    }
}
