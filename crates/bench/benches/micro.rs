//! Criterion micro-benchmarks for the core data structures: the costs
//! that decide whether frequency-buffering's bookkeeping pays for itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use textmr_core::space_saving::SpaceSaving;
use textmr_data::words::word_for_rank;
use textmr_data::zipf::{ZipfRejection, ZipfTable};
use textmr_engine::codec::{encode_u64, read_record, write_record};
use textmr_engine::job::{Emit, Job, Record, ValueCursor};
use textmr_engine::task::segment::Segment;
use textmr_engine::task::spill::sort_indices;
use textmr_nlp::tokenizer;

/// A Zipf(1.0) word-key stream for sketch/sort benchmarks.
fn zipf_keys(n: usize, universe: usize) -> Vec<Vec<u8>> {
    let table = ZipfTable::new(universe, 1.0);
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| word_for_rank(table.sample(&mut rng)).into_bytes())
        .collect()
}

fn bench_space_saving(c: &mut Criterion) {
    let keys = zipf_keys(100_000, 50_000);
    let mut g = c.benchmark_group("space_saving");
    g.throughput(Throughput::Elements(keys.len() as u64));
    for k in [100usize, 1000, 10_000] {
        g.bench_with_input(BenchmarkId::new("offer", k), &k, |b, &k| {
            b.iter(|| {
                let mut ss = SpaceSaving::new(k);
                for key in &keys {
                    ss.offer(black_box(key));
                }
                black_box(ss.len())
            })
        });
    }
    // Exact counting baseline: what the sketch's bounded memory buys.
    g.bench_function("exact_hashmap", |b| {
        b.iter(|| {
            let mut m: HashMap<&[u8], u64> = HashMap::new();
            for key in &keys {
                *m.entry(black_box(key.as_slice())).or_default() += 1;
            }
            black_box(m.len())
        })
    });
    g.finish();
}

fn bench_zipf_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_sampler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("table_m1e5", |b| {
        let t = ZipfTable::new(100_000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += t.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    g.bench_function("rejection_m1e5", |b| {
        let t = ZipfRejection::new(100_000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += t.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Minimal job for sort benchmarking (bytewise comparator).
struct PlainJob;
impl Job for PlainJob {
    fn name(&self) -> &str {
        "plain"
    }
    fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
    fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("spill_sort");
    for &dup in &["zipf", "unique"] {
        let keys = if dup == "zipf" {
            zipf_keys(50_000, 5_000)
        } else {
            (0..50_000)
                .map(|i| format!("key{i:08}").into_bytes())
                .collect()
        };
        let mut seg = Segment::new();
        for k in &keys {
            seg.push(0, k, &encode_u64(1));
        }
        g.throughput(Throughput::Elements(keys.len() as u64));
        g.bench_function(BenchmarkId::new("sort_indices", dup), |b| {
            b.iter(|| black_box(sort_indices(&seg, &PlainJob)))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("record_roundtrip", |b| {
        let key = b"some-word-key";
        let val = encode_u64(123_456);
        b.iter(|| {
            let mut buf = Vec::with_capacity(32 * 10_000);
            for _ in 0..10_000 {
                write_record(&mut buf, black_box(key), black_box(&val));
            }
            let mut pos = 0;
            let mut n = 0;
            while read_record(&buf, &mut pos).is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let line = "The quick brown fox, which jumped over the lazy dog's back, ran quickly.";
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(line.len() as u64));
    g.bench_function("words", |b| {
        b.iter(|| black_box(tokenizer::words(black_box(line)).count()))
    });
    g.bench_function("tokenize_full", |b| {
        b.iter(|| black_box(tokenizer::tokenize(black_box(line)).len()))
    });
    g.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_space_saving, bench_zipf_samplers, bench_sort, bench_codec, bench_tokenizer
}
criterion_main!(micro);
