//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * spill fraction sweep on the virtual pipeline — validates that Eq. 1's
//!   `x* = max{c/(p+c), ½}` minimizes pipeline span across rate regimes;
//! * frequency-buffer `k` sweep — absorption and end-to-end cost vs table
//!   size;
//! * spill-matcher smoothing — last-spill-only (the paper) vs EWMA under
//!   noisy rates;
//! * frequent-key registry — the cost of re-profiling in every task vs
//!   sharing the first task's frozen top-k.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use textmr_core::model::RateModel;
use textmr_core::{
    optimized, FreqBufferConfig, FrequentKeyRegistry, OptimizationConfig, SpillMatcherConfig,
};
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::task::pipeline::{Admission, Pipeline};

/// Drive the engine's discrete pipeline at constant rates; return the
/// virtual span.
fn pipeline_span(x: f64, produce_ns: u64, consume_per_byte: u64, records: usize) -> u64 {
    let mut p = Pipeline::new(64 << 10, x);
    let rec = 128usize;
    for _ in 0..records {
        if p.admit(rec) == Admission::SpillThenAppend {
            let b = p.active_bytes();
            p.handover(b as u64 * consume_per_byte);
        }
        p.appended(rec);
        p.produce(produce_ns);
        if p.should_spill() {
            let b = p.active_bytes();
            p.handover(b as u64 * consume_per_byte);
        }
    }
    p.drain_barrier();
    if p.active_bytes() > 0 {
        let b = p.active_bytes();
        p.handover(b as u64 * consume_per_byte);
    }
    p.pipeline_end()
}

/// Not a timing benchmark: prints the fraction sweep next to Eq. 1's
/// prediction once, then benchmarks the pipeline state machine's own
/// overhead at the optimum.
fn ablation_spill_fraction(c: &mut Criterion) {
    println!("\n== ablation: spill fraction sweep (virtual span, lower is better) ==");
    for (produce_ns, consume_per_byte, label) in [
        (64u64, 2u64, "consumer-slower"),
        (512, 1, "producer-slower"),
        (128, 1, "balanced"),
    ] {
        let model = RateModel {
            p: 128.0 / produce_ns as f64,
            c: 1.0 / consume_per_byte as f64,
            capacity: (64 << 10) as f64,
        };
        let x_star = model.optimal_fraction();
        print!("{label:<16} x*={x_star:.2} | spans: ");
        let mut best = (0.0, u64::MAX);
        for tenths in 1..=9 {
            let x = tenths as f64 / 10.0;
            let span = pipeline_span(x, produce_ns, consume_per_byte, 20_000);
            if span < best.1 {
                best = (x, span);
            }
            print!("{x:.1}:{:.1}ms ", span as f64 / 1e6);
        }
        println!("| empirical best x={:.1}", best.0);
    }
    let mut g = c.benchmark_group("pipeline_overhead");
    g.bench_function("state_machine_20k_records", |b| {
        b.iter(|| black_box(pipeline_span(0.5, 128, 1, 20_000)))
    });
    g.finish();
}

fn corpus_dfs(nodes: usize) -> SimDfs {
    let mut dfs = SimDfs::new(nodes, 512 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 6_000,
            vocab_size: 20_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn bench_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = 64 << 10;
    c
}

fn ablation_freq_k(c: &mut Criterion) {
    let cluster = bench_cluster();
    let dfs = corpus_dfs(cluster.nodes);
    let mut g = c.benchmark_group("freq_buffer_k");
    g.sample_size(10);
    for k in [100usize, 1000, 5000] {
        g.bench_with_input(BenchmarkId::new("wordcount", k), &k, |b, &k| {
            let cfg = optimized(
                JobConfig::default().with_reducers(6),
                OptimizationConfig::freq_only(FreqBufferConfig {
                    k,
                    sampling_fraction: Some(0.05),
                    ..Default::default()
                }),
            );
            b.iter(|| {
                black_box(
                    run_job(
                        &cluster,
                        &cfg,
                        Arc::new(textmr_apps::WordCount),
                        &dfs,
                        &[("corpus", 0)],
                    )
                    .unwrap()
                    .profile
                    .wall,
                )
            })
        });
    }
    g.finish();
}

fn ablation_smoothing(c: &mut Criterion) {
    let cluster = bench_cluster();
    let dfs = corpus_dfs(cluster.nodes);
    let mut g = c.benchmark_group("spill_matcher_smoothing");
    g.sample_size(10);
    for (label, lambda) in [("paper_last_spill", 1.0), ("ewma_0.5", 0.5)] {
        g.bench_function(label, |b| {
            let cfg = optimized(
                JobConfig::default().with_reducers(6),
                OptimizationConfig::spill_only(SpillMatcherConfig {
                    smoothing: lambda,
                    ..Default::default()
                }),
            );
            b.iter(|| {
                black_box(
                    run_job(
                        &cluster,
                        &cfg,
                        Arc::new(textmr_apps::WordCount),
                        &dfs,
                        &[("corpus", 0)],
                    )
                    .unwrap()
                    .profile
                    .wall,
                )
            })
        });
    }
    g.finish();
}

fn ablation_registry(c: &mut Criterion) {
    let cluster = bench_cluster();
    let dfs = corpus_dfs(cluster.nodes);
    let mut g = c.benchmark_group("frequent_key_registry");
    g.sample_size(10);
    for (label, share) in [("shared_per_node", true), ("profile_every_task", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                // The registry is job-scoped: rebuild per iteration.
                let mut cfg = JobConfig::default().with_reducers(6);
                let freq = FreqBufferConfig {
                    k: 2000,
                    sampling_fraction: Some(0.1),
                    ..Default::default()
                };
                let registry = share.then(|| Arc::new(FrequentKeyRegistry::new()));
                cfg.emit_filter = Some(textmr_core::frequency_buffer_factory(freq, registry));
                black_box(
                    run_job(
                        &cluster,
                        &cfg,
                        Arc::new(textmr_apps::WordCount),
                        &dfs,
                        &[("corpus", 0)],
                    )
                    .unwrap()
                    .profile
                    .wall,
                )
            })
        });
    }
    g.finish();
}

fn ablation_compression(c: &mut Criterion) {
    // Compression trades map CPU for shuffle bytes; on the EC2-like
    // network the trade should pay off for shuffle-heavy jobs.
    let mut cluster = ClusterConfig::ec2();
    cluster.spill_buffer_bytes = 64 << 10;
    let dfs = corpus_dfs(cluster.nodes);
    let mut g = c.benchmark_group("map_output_compression");
    g.sample_size(10);
    for (label, compress) in [("plain", false), ("compressed", true)] {
        g.bench_function(label, |b| {
            let mut cl = cluster.clone();
            cl.compress_map_output = compress;
            let cfg = JobConfig::default().with_reducers(12);
            b.iter(|| {
                let run = run_job(
                    &cl,
                    &cfg,
                    Arc::new(textmr_apps::InvertedIndex),
                    &dfs,
                    &[("corpus", 0)],
                )
                .unwrap();
                black_box(run.profile.wall)
            })
        });
    }
    g.finish();
}

fn ablation_grouping(c: &mut Criterion) {
    // Sort-merge vs hash grouping on the reduce side (Sec. II-A's
    // alternative): hash grouping skips the merge sort but loses ordered
    // output.
    use textmr_engine::task::reduce_task::Grouping;
    let cluster = bench_cluster();
    let dfs = corpus_dfs(cluster.nodes);
    let mut g = c.benchmark_group("reduce_grouping");
    g.sample_size(10);
    for (label, grouping) in [("sort_merge", Grouping::Sort), ("hash", Grouping::Hash)] {
        g.bench_function(label, |b| {
            let mut cfg = JobConfig::default().with_reducers(6);
            cfg.grouping = grouping;
            b.iter(|| {
                let run = run_job(
                    &cluster,
                    &cfg,
                    Arc::new(textmr_apps::WordCount),
                    &dfs,
                    &[("corpus", 0)],
                )
                .unwrap();
                black_box(run.profile.wall)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = ablation_spill_fraction, ablation_freq_k, ablation_smoothing, ablation_registry,
              ablation_compression, ablation_grouping
}
criterion_main!(ablation);
