use textmr_bench::runner::*;
use textmr_bench::scale::Scale;
use textmr_bench::workloads::standard_suite;

fn main() {
    let scale = Scale::small();
    let (dfs, ws) = standard_suite(scale);
    let cluster = local_cluster(scale);
    for wname in ["AccessLogJoin", "WordCount"] {
        let w = ws.iter().find(|w| w.name == wname).unwrap();
        for cfg in [Config::Baseline, Config::SpillOpt] {
            let run = run_config(&cluster, &dfs, w, cfg, REDUCERS);
            let p = &run.profile;
            let spills: usize = p.map_tasks.iter().map(|t| t.spills.len()).sum();
            let pb: u64 = p.map_tasks.iter().map(|t| t.produce_busy).sum();
            let cb: u64 = p.map_tasks.iter().map(|t| t.consume_busy).sum();
            let pw: u64 = p.map_tasks.iter().map(|t| t.producer_wait).sum();
            let cw: u64 = p.map_tasks.iter().map(|t| t.consumer_wait).sum();
            let merge: u64 = p
                .map_tasks
                .iter()
                .map(|t| t.ops.get(textmr_engine::metrics::Op::Merge))
                .sum();
            let vd: u64 = p.map_tasks.iter().map(|t| t.virtual_duration).sum();
            println!("{wname} {:?}: wall={:.1}ms mapend={:.1}ms tasks={} spills={} pb={:.1} cb={:.1} pw={:.1} cw={:.1} merge={:.1} vdsum={:.1}",
                cfg, p.wall as f64/1e6, p.map_phase_end as f64/1e6, p.map_tasks.len(), spills,
                pb as f64/1e6, cb as f64/1e6, pw as f64/1e6, cw as f64/1e6, merge as f64/1e6, vd as f64/1e6);
            // print first task's fractions
            let t0 = &p.map_tasks[0];
            let fr: Vec<String> = t0
                .spills
                .iter()
                .take(12)
                .map(|s| format!("{:.2}@{}k", s.fraction, s.bytes / 1024))
                .collect();
            println!("  task0: {} spills: {}", t0.spills.len(), fr.join(" "));
        }
    }
}
