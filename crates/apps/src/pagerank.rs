//! PageRank — one iteration of the classic algorithm over a web crawl.
//!
//! Input records are adjacency lines `page|rank|out1,out2,...`. The map
//! function emits two kinds of data, per the paper: `(page, (0, outlinks))`
//! to reconstruct the graph, plus `(target, rank/outdeg)` for every
//! out-link. Combine and reduce sum contributions; reduce re-emits the
//! adjacency line with the new rank so iterations chain.
//!
//! PageRank sits between the text and relational workloads: a large
//! intermediate set with moderately skewed keys (in-link popularity is
//! Zipf α = 1, flatter than word frequencies), plus comparatively more
//! reduce-side shuffle — which is why its gains fall between the two
//! groups in Table III.

use textmr_engine::codec::encode_u64;
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};

/// Intermediate value tags.
const TAG_STRUCTURE: u8 = 0;
const TAG_CONTRIB: u8 = 1;

/// Fixed-point scale for rank arithmetic: 1.0 rank = 10^18 atto-units.
/// Floating-point addition is not associative, and a combiner may group
/// values arbitrarily, so rank contributions are summed in integer
/// atto-units — total rank mass is 1, so a single value never overflows.
const ATTO: u64 = 1_000_000_000_000_000_000;

fn rank_to_atto(rank: f64) -> u64 {
    (rank.clamp(0.0, 1.0) * ATTO as f64).round() as u64
}

fn atto_to_string(atto: u64) -> String {
    // 12 decimal digits, matching the output precision the line format
    // carries between iterations.
    format!("{}.{:012}", atto / ATTO, (atto % ATTO) / 1_000_000)
}

/// The PageRank job (one iteration).
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Total pages N (for the teleport term).
    pub num_pages: u64,
    /// Damping factor d (0.85 is standard).
    pub damping: f64,
}

impl PageRank {
    /// One iteration over a crawl of `num_pages` pages, d = 0.85.
    pub fn new(num_pages: u64) -> Self {
        PageRank {
            num_pages,
            damping: 0.85,
        }
    }
}

/// Parse an adjacency line `page|rank|links`; `None` if malformed.
/// (The same format `textmr_data::graph` generates.)
pub fn parse_page_line(line: &[u8]) -> Option<(u64, f64, &[u8])> {
    let mut it = line.splitn(3, |&b| b == b'|');
    let page: u64 = std::str::from_utf8(it.next()?).ok()?.parse().ok()?;
    let rank: f64 = std::str::from_utf8(it.next()?).ok()?.parse().ok()?;
    let links = it.next().unwrap_or(b"");
    Some((page, rank, links))
}

/// Decode a reduce-output value back into `(rank, links)`.
pub fn decode_output(v: &[u8]) -> Option<(f64, &str)> {
    let s = std::str::from_utf8(v).ok()?;
    let (rank, links) = s.split_once('|')?;
    Some((rank.parse().ok()?, links))
}

impl Job for PageRank {
    fn name(&self) -> &str {
        "PageRank"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let Some((page, rank, links)) = parse_page_line(record.value) else {
            return;
        };
        // Graph structure: (page, TAG_STRUCTURE ++ links).
        let mut v = Vec::with_capacity(links.len() + 1);
        v.push(TAG_STRUCTURE);
        v.extend_from_slice(links);
        emit.emit(&encode_u64(page), &v);
        // Rank contributions.
        let targets = links.split(|&b| b == b',').filter(|s| !s.is_empty());
        let outdeg = links
            .split(|&b| b == b',')
            .filter(|s| !s.is_empty())
            .count();
        if outdeg == 0 {
            return;
        }
        let share = rank_to_atto(rank) / outdeg as u64;
        let mut cv = [0u8; 9];
        cv[0] = TAG_CONTRIB;
        cv[1..].copy_from_slice(&share.to_be_bytes());
        for t in targets {
            let Ok(target) = std::str::from_utf8(t).unwrap_or("").parse::<u64>() else {
                continue;
            };
            emit.emit(&encode_u64(target), &cv);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        // Sum contributions into one value; pass structure through.
        let mut sum = 0u64;
        let mut any_contrib = false;
        while let Some(v) = values.next() {
            match v.first() {
                Some(&TAG_CONTRIB) if v.len() == 9 => {
                    sum += u64::from_be_bytes(v[1..9].try_into().expect("8-byte share"));
                    any_contrib = true;
                }
                Some(&TAG_STRUCTURE) => out.push(v),
                _ => {}
            }
        }
        if any_contrib {
            let mut cv = [0u8; 9];
            cv[0] = TAG_CONTRIB;
            cv[1..].copy_from_slice(&sum.to_be_bytes());
            out.push(&cv);
        }
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut sum = 0u64;
        let mut links: Vec<u8> = Vec::new();
        while let Some(v) = values.next() {
            match v.first() {
                Some(&TAG_CONTRIB) if v.len() == 9 => {
                    sum += u64::from_be_bytes(v[1..9].try_into().expect("8-byte share"));
                }
                Some(&TAG_STRUCTURE) => {
                    links.clear();
                    links.extend_from_slice(&v[1..]);
                }
                _ => {}
            }
        }
        // new = (1−d)/N + d·sum, evaluated in integer atto-units (u128
        // intermediates) so the result is independent of combine grouping.
        let damping_pct = (self.damping * 100.0).round() as u128;
        let teleport = (ATTO as u128 * (100 - damping_pct) / 100) / self.num_pages as u128;
        let new_atto = u64::try_from(teleport + sum as u128 * damping_pct / 100)
            .expect("rank mass is bounded by ATTO and fits u64");
        let mut value = atto_to_string(new_atto).into_bytes();
        value.push(b'|');
        value.extend_from_slice(&links);
        out.emit(key, &value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::codec::decode_u64;
    use textmr_engine::io::dfs::SimDfs;

    fn run_iteration(lines: &[&str], n: u64) -> HashMap<u64, (f64, String)> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("graph", (lines.join("\n") + "\n").into_bytes());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(PageRank::new(n)),
            &dfs,
            &[("graph", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| {
                let (rank, links) = decode_output(&v).unwrap();
                (decode_u64(&k).unwrap(), (rank, links.to_string()))
            })
            .collect()
    }

    #[test]
    fn two_page_cycle_conserves_rank() {
        // 0 → 1, 1 → 0, both start at 0.5: ranks stay 0.5.
        let out = run_iteration(&["0|0.5|1", "1|0.5|0"], 2);
        assert!((out[&0].0 - 0.5).abs() < 1e-9, "{out:?}");
        assert!((out[&1].0 - 0.5).abs() < 1e-9);
        assert_eq!(out[&0].1, "1");
        assert_eq!(out[&1].1, "0");
    }

    #[test]
    fn sink_page_gets_teleport_only() {
        // Page 2 has no in-links: rank = (1-d)/N.
        let out = run_iteration(&["0|0.5|1", "1|0.5|0", "2|0.0|0"], 3);
        assert!((out[&2].0 - 0.15 / 3.0).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn contributions_split_across_outlinks() {
        // 0 → {1,2} with rank 1.0: each target gets d·0.5 + teleport.
        let out = run_iteration(&["0|1.0|1,2", "1|0.0|0", "2|0.0|0"], 3);
        let expect = 0.15 / 3.0 + 0.85 * 0.5;
        assert!((out[&1].0 - expect).abs() < 1e-9, "{out:?}");
        assert!((out[&2].0 - expect).abs() < 1e-9);
    }

    #[test]
    fn output_chains_as_input() {
        let out = run_iteration(&["0|0.5|1", "1|0.5|0"], 2);
        // Rebuild input lines from the output and parse them back.
        for (page, (rank, links)) in out {
            let line = format!("{page}|{rank}|{links}");
            let (p2, r2, l2) = parse_page_line(line.as_bytes()).unwrap();
            assert_eq!(p2, page);
            assert!((r2 - rank).abs() < 1e-9);
            assert_eq!(l2, links.as_bytes());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_page_line(b"x|y|z").is_none());
        assert!(parse_page_line(b"").is_none());
        assert!(parse_page_line(b"1|0.5|").is_some());
    }
}
