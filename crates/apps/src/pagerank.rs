//! PageRank — the classic algorithm over a web crawl, iterated to
//! convergence through the round-generic DAG executor.
//!
//! Round-0 input records are adjacency lines `page|rank|out1,out2,...`.
//! The map function emits two kinds of data, per the paper:
//! `(page, (0, outlinks))` to reconstruct the graph, plus
//! `(target, rank/outdeg)` for every out-link. Combine and reduce sum
//! contributions; reduce re-emits `rank|links` under the page key so
//! iterations chain. Later rounds consume the previous round's reduce
//! partitions through the typed framed hand-off (tagged
//! [`SOURCE_CHAINED`]): the map sees the producer's exact key/value
//! bytes, never a re-parsed text line.
//!
//! [`pagerank_to_convergence`] drives a [`DagExecutor`] round by round
//! and stops when the atto-unit rank residual drops below a tolerance —
//! the residual is integer arithmetic over the same decimal strings the
//! rounds exchange, so convergence is deterministic.
//!
//! PageRank sits between the text and relational workloads: a large
//! intermediate set with moderately skewed keys (in-link popularity is
//! Zipf α = 1, flatter than word frequencies), plus comparatively more
//! reduce-side shuffle — which is why its gains fall between the two
//! groups in Table III.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use textmr_engine::cluster::{ClusterConfig, JobConfig};
use textmr_engine::codec::{decode_u64, encode_u64};
use textmr_engine::dag::{DagExecutor, DagRun};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{Emit, Job, Record, StageInput, ValueCursor, ValueSink};

/// Intermediate value tags.
const TAG_STRUCTURE: u8 = 0;
const TAG_CONTRIB: u8 = 1;

/// Source tag marking a chained round's framed hand-off input: the record
/// key is the 8-byte page id and the value is the previous round's reduce
/// output `rank|links`.
pub const SOURCE_CHAINED: u8 = 1;

/// Fixed-point scale for rank arithmetic: 1.0 rank = 10^18 atto-units.
/// Floating-point addition is not associative, and a combiner may group
/// values arbitrarily, so rank contributions are summed in integer
/// atto-units — total rank mass is 1, so a single value never overflows.
const ATTO: u64 = 1_000_000_000_000_000_000;

fn rank_to_atto(rank: f64) -> u64 {
    (rank.clamp(0.0, 1.0) * ATTO as f64).round() as u64
}

fn atto_to_string(atto: u64) -> String {
    // 12 decimal digits, matching the output precision the line format
    // carries between iterations.
    format!("{}.{:012}", atto / ATTO, (atto % ATTO) / 1_000_000)
}

/// The PageRank job (one iteration).
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Total pages N (for the teleport term).
    pub num_pages: u64,
    /// Damping factor d (0.85 is standard).
    pub damping: f64,
}

impl PageRank {
    /// One iteration over a crawl of `num_pages` pages, d = 0.85.
    pub fn new(num_pages: u64) -> Self {
        PageRank {
            num_pages,
            damping: 0.85,
        }
    }
}

/// Parse an adjacency line `page|rank|links`; `None` if malformed.
/// (The same format `textmr_data::graph` generates.)
pub fn parse_page_line(line: &[u8]) -> Option<(u64, f64, &[u8])> {
    let mut it = line.splitn(3, |&b| b == b'|');
    let page: u64 = std::str::from_utf8(it.next()?).ok()?.parse().ok()?;
    let rank: f64 = std::str::from_utf8(it.next()?).ok()?.parse().ok()?;
    let links = it.next().unwrap_or(b"");
    Some((page, rank, links))
}

/// Decode a reduce-output value back into `(rank, links)`.
pub fn decode_output(v: &[u8]) -> Option<(f64, &str)> {
    let s = std::str::from_utf8(v).ok()?;
    let (rank, links) = s.split_once('|')?;
    Some((rank.parse().ok()?, links))
}

/// Parse a reduce-output value's rank field back into exact atto-units
/// (the inverse of `atto_to_string` up to its 12-digit precision).
/// Residual tests must not go through `f64`, whose rounding could flip a
/// convergence decision.
pub fn parse_rank_atto(v: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(v).ok()?;
    let rank = s.split('|').next()?;
    let (whole, frac) = rank.split_once('.')?;
    if frac.len() != 12 {
        return None;
    }
    let whole: u64 = whole.parse().ok()?;
    let frac: u64 = frac.parse().ok()?;
    Some(whole * ATTO + frac * 1_000_000)
}

impl Job for PageRank {
    fn name(&self) -> &str {
        "PageRank"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        // A chained round's framed record already carries the page key and
        // the `rank|links` value the previous reduce emitted; round 0
        // parses the adjacency line.
        let (page_key, rank, links): ([u8; 8], f64, &[u8]) = if record.source == SOURCE_CHAINED {
            let Some((rank, links)) = decode_output(record.value) else {
                return;
            };
            let Some(page) = decode_u64(record.key) else {
                return;
            };
            (encode_u64(page), rank, links.as_bytes())
        } else {
            let Some((page, rank, links)) = parse_page_line(record.value) else {
                return;
            };
            (encode_u64(page), rank, links)
        };
        // Graph structure: (page, TAG_STRUCTURE ++ links).
        let mut v = Vec::with_capacity(links.len() + 1);
        v.push(TAG_STRUCTURE);
        v.extend_from_slice(links);
        emit.emit(&page_key, &v);
        // Rank contributions.
        let targets = links.split(|&b| b == b',').filter(|s| !s.is_empty());
        let outdeg = links
            .split(|&b| b == b',')
            .filter(|s| !s.is_empty())
            .count();
        if outdeg == 0 {
            return;
        }
        let share = rank_to_atto(rank) / outdeg as u64;
        let mut cv = [0u8; 9];
        cv[0] = TAG_CONTRIB;
        cv[1..].copy_from_slice(&share.to_be_bytes());
        for t in targets {
            let Ok(target) = std::str::from_utf8(t).unwrap_or("").parse::<u64>() else {
                continue;
            };
            emit.emit(&encode_u64(target), &cv);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        // Sum contributions into one value; pass structure through.
        let mut sum = 0u64;
        let mut any_contrib = false;
        while let Some(v) = values.next() {
            match v.first() {
                Some(&TAG_CONTRIB) if v.len() == 9 => {
                    sum += u64::from_be_bytes(v[1..9].try_into().expect("8-byte share"));
                    any_contrib = true;
                }
                Some(&TAG_STRUCTURE) => out.push(v),
                _ => {}
            }
        }
        if any_contrib {
            let mut cv = [0u8; 9];
            cv[0] = TAG_CONTRIB;
            cv[1..].copy_from_slice(&sum.to_be_bytes());
            out.push(&cv);
        }
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut sum = 0u64;
        let mut links: Vec<u8> = Vec::new();
        while let Some(v) = values.next() {
            match v.first() {
                Some(&TAG_CONTRIB) if v.len() == 9 => {
                    sum += u64::from_be_bytes(v[1..9].try_into().expect("8-byte share"));
                }
                Some(&TAG_STRUCTURE) => {
                    links.clear();
                    links.extend_from_slice(&v[1..]);
                }
                _ => {}
            }
        }
        // new = (1−d)/N + d·sum, evaluated in integer atto-units (u128
        // intermediates) so the result is independent of combine grouping.
        let damping_pct = (self.damping * 100.0).round() as u128;
        let teleport = (ATTO as u128 * (100 - damping_pct) / 100) / self.num_pages as u128;
        let new_atto = u64::try_from(teleport + sum as u128 * damping_pct / 100)
            .expect("rank mass is bounded by ATTO and fits u64");
        let mut value = atto_to_string(new_atto).into_bytes();
        value.push(b'|');
        value.extend_from_slice(&links);
        out.emit(key, &value);
    }
}

/// A converged iterative PageRank run.
#[derive(Debug)]
pub struct PageRankRun {
    /// The completed DAG (final ranks in `run.outputs`, per-round
    /// profiles, whole-DAG trace when enabled).
    pub run: DagRun,
    /// Rounds executed.
    pub rounds: usize,
    /// The final round's L1 rank residual in atto-units (`u64::MAX`
    /// after a single round, which has nothing to diff against).
    pub residual_atto: u64,
}

/// Ranks per page, in exact atto-units, from one round's outputs.
fn rank_vector(outputs: &[Vec<(Vec<u8>, Vec<u8>)>]) -> BTreeMap<u64, u64> {
    outputs
        .iter()
        .flatten()
        .filter_map(|(k, v)| Some((decode_u64(k)?, parse_rank_atto(v)?)))
        .collect()
}

/// L1 distance between two rank vectors, in atto-units.
fn residual(prev: &BTreeMap<u64, u64>, next: &BTreeMap<u64, u64>) -> u64 {
    let mut sum = 0u64;
    for (page, &r) in next {
        sum += r.abs_diff(prev.get(page).copied().unwrap_or(0));
    }
    for (page, &r) in prev {
        if !next.contains_key(page) {
            sum += r;
        }
    }
    sum
}

/// Iterate PageRank to convergence through the DAG executor.
///
/// Round 0 reads the adjacency file `input` from the DFS; every later
/// round consumes its predecessor's reduce partitions through the typed
/// framed hand-off. Iteration stops when the L1 atto-unit residual
/// between consecutive rank vectors drops to `tol_atto` or below, or
/// after `max_rounds` rounds. The residual is computed from the exact
/// decimal strings the rounds exchange, so the round count is a pure
/// function of the input — timing never moves it.
pub fn pagerank_to_convergence(
    cluster: &ClusterConfig,
    cfg: &JobConfig,
    dfs: &SimDfs,
    input: &str,
    num_pages: u64,
    tol_atto: u64,
    max_rounds: usize,
) -> io::Result<PageRankRun> {
    assert!(max_rounds > 0, "need at least one round");
    let job: Arc<dyn Job> = Arc::new(PageRank::new(num_pages));
    let mut ex = DagExecutor::new(cluster)?;
    ex.run_stage(Arc::clone(&job), cfg, &StageInput::dfs(input), dfs)?;
    let mut prev = rank_vector(ex.last_outputs());
    let mut residual_atto = u64::MAX;
    let mut rounds = 1;
    while rounds < max_rounds {
        let input = StageInput::Prior {
            stage: rounds - 1,
            source: SOURCE_CHAINED,
        };
        ex.run_stage(Arc::clone(&job), cfg, &input, dfs)?;
        rounds += 1;
        let next = rank_vector(ex.last_outputs());
        residual_atto = residual(&prev, &next);
        prev = next;
        if residual_atto <= tol_atto {
            break;
        }
    }
    Ok(PageRankRun {
        run: ex.finish()?,
        rounds,
        residual_atto,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::codec::decode_u64;
    use textmr_engine::io::dfs::SimDfs;

    fn run_iteration(lines: &[&str], n: u64) -> HashMap<u64, (f64, String)> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("graph", (lines.join("\n") + "\n").into_bytes());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(PageRank::new(n)),
            &dfs,
            &[("graph", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| {
                let (rank, links) = decode_output(&v).unwrap();
                (decode_u64(&k).unwrap(), (rank, links.to_string()))
            })
            .collect()
    }

    #[test]
    fn two_page_cycle_conserves_rank() {
        // 0 → 1, 1 → 0, both start at 0.5: ranks stay 0.5.
        let out = run_iteration(&["0|0.5|1", "1|0.5|0"], 2);
        assert!((out[&0].0 - 0.5).abs() < 1e-9, "{out:?}");
        assert!((out[&1].0 - 0.5).abs() < 1e-9);
        assert_eq!(out[&0].1, "1");
        assert_eq!(out[&1].1, "0");
    }

    #[test]
    fn sink_page_gets_teleport_only() {
        // Page 2 has no in-links: rank = (1-d)/N.
        let out = run_iteration(&["0|0.5|1", "1|0.5|0", "2|0.0|0"], 3);
        assert!((out[&2].0 - 0.15 / 3.0).abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn contributions_split_across_outlinks() {
        // 0 → {1,2} with rank 1.0: each target gets d·0.5 + teleport.
        let out = run_iteration(&["0|1.0|1,2", "1|0.0|0", "2|0.0|0"], 3);
        let expect = 0.15 / 3.0 + 0.85 * 0.5;
        assert!((out[&1].0 - expect).abs() < 1e-9, "{out:?}");
        assert!((out[&2].0 - expect).abs() < 1e-9);
    }

    #[test]
    fn output_chains_as_input() {
        let out = run_iteration(&["0|0.5|1", "1|0.5|0"], 2);
        // Rebuild input lines from the output and parse them back.
        for (page, (rank, links)) in out {
            let line = format!("{page}|{rank}|{links}");
            let (p2, r2, l2) = parse_page_line(line.as_bytes()).unwrap();
            assert_eq!(p2, page);
            assert!((r2 - rank).abs() < 1e-9);
            assert_eq!(l2, links.as_bytes());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_page_line(b"x|y|z").is_none());
        assert!(parse_page_line(b"").is_none());
        assert!(parse_page_line(b"1|0.5|").is_some());
    }

    #[test]
    fn rank_atto_string_round_trips() {
        for atto in [0, 1_000_000, ATTO / 3, ATTO / 2, ATTO] {
            let s = format!("{}|1,2", atto_to_string(atto));
            // atto_to_string truncates to 12 decimals (micro-atto units).
            let back = parse_rank_atto(s.as_bytes()).unwrap();
            assert_eq!(back, atto / 1_000_000 * 1_000_000, "atto={atto}");
        }
        assert!(parse_rank_atto(b"0.5|1").is_none()); // not 12 digits
    }

    /// One in-memory power-iteration round over `(page → (rank string,
    /// links))`, replicating the job's exact arithmetic *including* the
    /// decimal string round-trip between rounds.
    fn reference_round(
        state: &std::collections::BTreeMap<u64, (String, String)>,
        n: u64,
    ) -> std::collections::BTreeMap<u64, (String, String)> {
        let mut contrib: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut structure: std::collections::BTreeMap<u64, String> =
            std::collections::BTreeMap::new();
        for (&page, (rank_str, links)) in state {
            structure.insert(page, links.clone());
            let rank: f64 = rank_str.parse().unwrap();
            let targets: Vec<u64> = links
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            if targets.is_empty() {
                continue;
            }
            let share = rank_to_atto(rank) / targets.len() as u64;
            for t in targets {
                *contrib.entry(t).or_default() += share;
            }
        }
        let mut keys: Vec<u64> = structure
            .keys()
            .copied()
            .chain(contrib.keys().copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|page| {
                let sum = contrib.get(&page).copied().unwrap_or(0);
                let teleport = (ATTO as u128 * 15 / 100) / n as u128;
                let new_atto = u64::try_from(teleport + sum as u128 * 85 / 100).unwrap();
                let links = structure.get(&page).cloned().unwrap_or_default();
                (page, (atto_to_string(new_atto), links))
            })
            .collect()
    }

    #[test]
    fn iterative_pagerank_matches_power_iteration_reference() {
        // A closed 5-page graph (no sinks, so rank mass is conserved).
        let lines = ["0|0.2|1,2", "1|0.2|2", "2|0.2|0,3,4", "3|0.2|0", "4|0.2|0"];
        let n = 5;
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 1 << 16);
        dfs.put("graph", (lines.join("\n") + "\n").into_bytes());
        let cfg = JobConfig::default().with_reducers(3);
        // Power iteration contracts by the damping factor per round, so
        // an L1 tolerance of 1e-6 rank mass (1e12 atto) needs ~90 rounds.
        let tol = 1_000_000_000_000;
        let pr = pagerank_to_convergence(&cluster, &cfg, &dfs, "graph", n, tol, 120).unwrap();
        assert!(pr.rounds >= 3, "converged suspiciously fast: {}", pr.rounds);
        assert!(pr.rounds < 120, "did not converge");
        assert!(pr.residual_atto <= tol);
        assert_eq!(pr.run.profile.num_rounds(), pr.rounds);

        // Replay the same number of rounds in memory; every page's rank
        // *string* must match byte for byte.
        let mut state: std::collections::BTreeMap<u64, (String, String)> = lines
            .iter()
            .map(|l| {
                let (p, r, links) = parse_page_line(l.as_bytes()).unwrap();
                (
                    p,
                    (r.to_string(), String::from_utf8(links.to_vec()).unwrap()),
                )
            })
            .collect();
        for _ in 0..pr.rounds {
            state = reference_round(&state, n);
        }
        let got: std::collections::BTreeMap<u64, (String, String)> = pr
            .run
            .sorted_pairs()
            .into_iter()
            .map(|(k, v)| {
                let (page, s) = (decode_u64(&k).unwrap(), String::from_utf8(v).unwrap());
                let (rank, links) = s.split_once('|').unwrap();
                (page, (rank.to_string(), links.to_string()))
            })
            .collect();
        assert_eq!(got, state);

        // Total rank mass stays ~1 (truncation loses < 1 micro-unit per
        // page per round).
        let total: u64 = got
            .values()
            .map(|(r, _)| parse_rank_atto(format!("{r}|").as_bytes()).unwrap())
            .sum();
        assert!(total <= ATTO && total > ATTO - ATTO / 1000, "mass {total}");
    }

    #[test]
    fn convergence_round_count_is_deterministic() {
        let lines = ["0|0.25|1", "1|0.25|2", "2|0.25|3", "3|0.25|0,1"];
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 1 << 16);
        dfs.put("graph", (lines.join("\n") + "\n").into_bytes());
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let cfg = JobConfig::default().with_reducers(2);
                pagerank_to_convergence(&cluster, &cfg, &dfs, "graph", 4, 10_000_000, 40).unwrap()
            })
            .collect();
        assert_eq!(runs[0].rounds, runs[1].rounds);
        assert_eq!(runs[0].residual_atto, runs[1].residual_atto);
        assert_eq!(runs[0].run.sorted_pairs(), runs[1].run.sorted_pairs());
    }
}
