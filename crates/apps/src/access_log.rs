//! AccessLogSum and AccessLogJoin — the paper's relational-style
//! benchmarks (Pavlo et al.'s queries).
//!
//! ```sql
//! -- AccessLogSum
//! SELECT destURL, SUM(adRevenue) FROM UserVisits GROUP BY destURL;
//!
//! -- AccessLogJoin
//! SELECT sourceIP, adRevenue, pageRank
//! FROM UserVisits AS UV, Rankings AS R
//! WHERE UV.destURL = R.pageURL;
//! ```
//!
//! These exist to show the optimizations do *not* hurt non-text workloads
//! (Table III's "Other" rows): less intermediate data, flatter key skew
//! (Zipf 0.8 URLs vs ~1.0 words), so smaller but non-negative gains.
//!
//! Input lines are the pipe-delimited records of `textmr-data::weblog`;
//! parsing happens in `map()` (allocation-free field splitting), exactly
//! the cost profile of the Hadoop originals.

use textmr_engine::codec::{read_bytes, write_bytes};
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};

/// Logical input tags for the join.
pub const SOURCE_VISITS: u8 = 0;
/// Rankings side of the join.
pub const SOURCE_RANKINGS: u8 = 1;

// ---------------------------------------------------------------------------
// AccessLogSum
// ---------------------------------------------------------------------------

/// `SELECT destURL, SUM(adRevenue) … GROUP BY destURL`.
///
/// Revenue is summed in integer *cents*: floating-point addition is not
/// associative, and a MapReduce combiner may be applied in any grouping, so
/// a correct (configuration-independent) aggregate needs an associative
/// representation — the same reason production systems sum money in fixed
/// point.
#[derive(Debug, Default)]
pub struct AccessLogSum;

fn cents_to_bytes(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

fn cents_from_bytes(b: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(b.try_into().ok()?))
}

fn sum_cents(values: &mut dyn ValueCursor) -> u64 {
    let mut sum = 0u64;
    while let Some(v) = values.next() {
        sum += cents_from_bytes(v).unwrap_or(0);
    }
    sum
}

/// Split a UserVisits line into `(sourceIP, destURL, adRevenue)` without
/// allocating. Returns `None` for malformed lines (skipped, as in Hadoop).
fn parse_visit(line: &[u8]) -> Option<(&[u8], &[u8], f64)> {
    let mut fields = line.split(|&b| b == b'|');
    let ip = fields.next()?;
    let url = fields.next()?;
    let _date = fields.next()?;
    let revenue: f64 = std::str::from_utf8(fields.next()?).ok()?.parse().ok()?;
    Some((ip, url, revenue))
}

impl Job for AccessLogSum {
    fn name(&self) -> &str {
        "AccessLogSum"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        if let Some((_ip, url, revenue)) = parse_visit(record.value) {
            let cents = (revenue * 100.0).round() as u64;
            emit.emit(url, &cents_to_bytes(cents));
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        out.push(&cents_to_bytes(sum_cents(values)));
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        out.emit(key, &cents_to_bytes(sum_cents(values)));
    }
}

/// Decode an AccessLogSum output value into dollars.
pub fn decode_revenue(v: &[u8]) -> Option<f64> {
    Some(cents_from_bytes(v)? as f64 / 100.0)
}

// ---------------------------------------------------------------------------
// AccessLogJoin
// ---------------------------------------------------------------------------

/// Repartition join of UserVisits with Rankings on the URL.
///
/// `map()` tags each record with its side; `reduce()` pairs every visit
/// with the URL's pageRank and emits `(sourceIP, (adRevenue, pageRank))`.
/// No combiner — joins cannot combine — so the map phase's support thread
/// has plenty of sorting to do and spill-matcher still helps (Table III).
#[derive(Debug, Default)]
pub struct AccessLogJoin;

/// Join-side tag bytes inside intermediate values.
const TAG_VISIT: u8 = 0;
const TAG_RANK: u8 = 1;

/// Serialized join output value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinOut {
    /// Ad revenue of the visit.
    pub ad_revenue: f64,
    /// The destination URL's page rank.
    pub page_rank: u64,
}

/// Decode an AccessLogJoin output value.
pub fn decode_join_out(v: &[u8]) -> Option<JoinOut> {
    if v.len() != 16 {
        return None;
    }
    Some(JoinOut {
        ad_revenue: f64::from_be_bytes(v[..8].try_into().ok()?),
        page_rank: u64::from_be_bytes(v[8..].try_into().ok()?),
    })
}

impl Job for AccessLogJoin {
    fn name(&self) -> &str {
        "AccessLogJoin"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        match record.source {
            SOURCE_VISITS => {
                if let Some((ip, url, revenue)) = parse_visit(record.value) {
                    // value = TAG_VISIT ++ len(ip) ip ++ revenue
                    let mut v = Vec::with_capacity(ip.len() + 12);
                    v.push(TAG_VISIT);
                    write_bytes(&mut v, ip);
                    v.extend_from_slice(&revenue.to_be_bytes());
                    emit.emit(url, &v);
                }
            }
            SOURCE_RANKINGS => {
                let mut fields = record.value.split(|&b| b == b'|');
                let (Some(url), Some(rank)) = (fields.next(), fields.next()) else {
                    return;
                };
                let Ok(rank) = std::str::from_utf8(rank).unwrap_or("").parse::<u64>() else {
                    return;
                };
                let mut v = Vec::with_capacity(9);
                v.push(TAG_RANK);
                v.extend_from_slice(&rank.to_be_bytes());
                emit.emit(url, &v);
            }
            other => panic!("AccessLogJoin: unknown input source {other}"),
        }
    }

    fn reduce(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        // One pass: buffer visits until the rank arrives (usually the value
        // set is tiny: one rank + the URL's visits).
        let mut rank: Option<u64> = None;
        let mut visits: Vec<(Vec<u8>, f64)> = Vec::new();
        let emit_joined = |ip: &[u8], revenue: f64, rank: u64, out: &mut dyn Emit| {
            let mut v = Vec::with_capacity(16);
            v.extend_from_slice(&revenue.to_be_bytes());
            v.extend_from_slice(&rank.to_be_bytes());
            out.emit(ip, &v);
        };
        while let Some(v) = values.next() {
            match v.first() {
                Some(&TAG_RANK) if v.len() == 9 => {
                    let r = u64::from_be_bytes(v[1..9].try_into().expect("9-byte rank value"));
                    rank = Some(r);
                    for (ip, revenue) in visits.drain(..) {
                        emit_joined(&ip, revenue, r, out);
                    }
                }
                Some(&TAG_VISIT) => {
                    let mut pos = 1usize;
                    let Some(ip) = read_bytes(v, &mut pos) else {
                        continue;
                    };
                    if v.len() < pos + 8 {
                        continue;
                    }
                    let revenue =
                        f64::from_be_bytes(v[pos..pos + 8].try_into().expect("8-byte revenue"));
                    match rank {
                        Some(r) => emit_joined(ip, revenue, r, out),
                        None => visits.push((ip.to_vec(), revenue)),
                    }
                }
                _ => {}
            }
        }
        // Visits with no matching ranking drop out (inner join).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::io::dfs::SimDfs;

    fn visit(ip: &str, url: &str, rev: f64) -> String {
        format!("{ip}|{url}|2010-01-01|{rev}|UA|USA|en|word|5")
    }

    #[test]
    fn sum_groups_by_url() {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        let log = [
            visit("1.1.1.1", "http://a", 1.5),
            visit("2.2.2.2", "http://a", 2.5),
            visit("3.3.3.3", "http://b", 10.0),
        ]
        .join("\n");
        dfs.put("visits", (log + "\n").into_bytes());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(AccessLogSum),
            &dfs,
            &[("visits", SOURCE_VISITS)],
        )
        .unwrap();
        let m: HashMap<String, f64> = run
            .sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_revenue(&v).unwrap()))
            .collect();
        assert!((m["http://a"] - 4.0).abs() < 1e-9);
        assert!((m["http://b"] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_visit_lines_are_skipped() {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put(
            "visits",
            b"garbage line\n1.1.1.1|http://a|d|notanumber|x\n".to_vec(),
        );
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(1),
            Arc::new(AccessLogSum),
            &dfs,
            &[("visits", SOURCE_VISITS)],
        )
        .unwrap();
        assert!(run.outputs[0].is_empty());
    }

    #[test]
    fn join_pairs_visits_with_ranks() {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        let visits = [
            visit("1.1.1.1", "http://a", 1.0),
            visit("2.2.2.2", "http://b", 2.0),
            visit("3.3.3.3", "http://a", 3.0),
        ]
        .join("\n");
        dfs.put("visits", (visits + "\n").into_bytes());
        dfs.put(
            "ranks",
            b"http://a|50|10\nhttp://b|7|20\nhttp://c|1|5\n".to_vec(),
        );
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(AccessLogJoin),
            &dfs,
            &[("visits", SOURCE_VISITS), ("ranks", SOURCE_RANKINGS)],
        )
        .unwrap();
        let rows: Vec<(String, JoinOut)> = run
            .sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_join_out(&v).unwrap()))
            .collect();
        assert_eq!(rows.len(), 3);
        let by_ip: HashMap<String, JoinOut> = rows.into_iter().collect();
        assert_eq!(by_ip["1.1.1.1"].page_rank, 50);
        assert!((by_ip["1.1.1.1"].ad_revenue - 1.0).abs() < 1e-9);
        assert_eq!(by_ip["2.2.2.2"].page_rank, 7);
        assert_eq!(by_ip["3.3.3.3"].page_rank, 50);
    }

    #[test]
    fn unmatched_visits_are_dropped() {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put(
            "visits",
            (visit("9.9.9.9", "http://nowhere", 4.0) + "\n").into_bytes(),
        );
        dfs.put("ranks", b"http://elsewhere|3|1\n".to_vec());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(1),
            Arc::new(AccessLogJoin),
            &dfs,
            &[("visits", SOURCE_VISITS), ("ranks", SOURCE_RANKINGS)],
        )
        .unwrap();
        assert!(run.outputs[0].is_empty());
    }
}
