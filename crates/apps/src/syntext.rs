//! SynText — the paper's parameterizable synthetic text benchmark
//! (Figure 10).
//!
//! SynText explores the two dimensions that decide how much the
//! optimizations can help:
//!
//! * **CPU-intensity** — computation performed in `map()` per record, as a
//!   multiplicative factor over WordCount's (factor 0 ≈ WordCount's
//!   tokenize-and-emit; large factors approach WordPOSTag).
//! * **Storage-intensity** — growth in output size when two records are
//!   aggregated by `combine()`: β = 0 collapses to a fixed-size aggregate
//!   (WordCount-like), β = 1 concatenates with no size reduction
//!   (InvertedIndex-like).
//!
//! A value is `varint count ++ varint payload_len ++ payload`; combining
//! sums counts and shrinks total payload by the factor β.

use textmr_engine::codec::{read_varint, write_varint};
use textmr_engine::job::{fnv1a, Emit, Job, Record, ValueCursor, ValueSink};
use textmr_nlp::tokenizer;

/// SynText configuration point (one cell of Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct SynText {
    /// CPU work per word: rounds of a hash spin, multiplying WordCount's
    /// per-record map cost.
    pub cpu_factor: u32,
    /// Storage intensity β ∈ [0, 1]: combined payload = β · Σ payloads.
    pub storage_beta: f64,
    /// Payload bytes attached to each map-output value.
    pub payload: usize,
}

impl SynText {
    /// A cell of the Figure 10 sweep.
    pub fn new(cpu_factor: u32, storage_beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&storage_beta));
        SynText {
            cpu_factor,
            storage_beta,
            payload: 16,
        }
    }
}

/// Decoded SynText value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynValue {
    /// Number of original records aggregated into this value.
    pub count: u64,
    /// Payload byte length carried.
    pub payload_len: u64,
}

/// Decode a SynText value header.
pub fn decode_value(v: &[u8]) -> Option<SynValue> {
    let mut pos = 0usize;
    let count = read_varint(v, &mut pos)?;
    let payload_len = read_varint(v, &mut pos)?;
    if v.len() < pos + payload_len as usize {
        return None;
    }
    Some(SynValue { count, payload_len })
}

fn encode_value(count: u64, payload_len: u64, out: &mut Vec<u8>) {
    write_varint(out, count);
    write_varint(out, payload_len);
    out.resize(out.len() + payload_len as usize, 0xA5);
}

impl SynText {
    fn aggregate(&self, values: &mut dyn ValueCursor) -> (u64, u64) {
        let mut count = 0u64;
        let mut payload = 0u64;
        let mut parts = 0u64;
        while let Some(v) = values.next() {
            if let Some(sv) = decode_value(v) {
                count += sv.count;
                payload += sv.payload_len;
                parts += 1;
            }
        }
        // β scales how much of the concatenated payload survives
        // aggregation; a single part keeps its payload unchanged.
        let out_payload = if parts <= 1 {
            payload
        } else {
            (payload as f64 * self.storage_beta).round() as u64
        };
        (count, out_payload)
    }
}

impl Job for SynText {
    fn name(&self) -> &str {
        "SynText"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let line = std::str::from_utf8(record.value).unwrap_or("");
        let mut buf = Vec::with_capacity(self.payload + 8);
        for word in tokenizer::words(line) {
            // Deterministic CPU burn proportional to cpu_factor.
            let mut h = fnv1a(word.as_bytes());
            for _ in 0..self.cpu_factor {
                h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ fnv1a(&h.to_le_bytes());
            }
            std::hint::black_box(h);
            buf.clear();
            encode_value(1, self.payload as u64, &mut buf);
            emit.emit(word.as_bytes(), &buf);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        let (count, payload) = self.aggregate(values);
        let mut buf = Vec::with_capacity(payload as usize + 8);
        encode_value(count, payload, &mut buf);
        out.push(&buf);
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        // The β-scaled payload models *intermediate* storage growth; it is
        // deliberately grouping-dependent, so the final output carries only
        // the (associative) count — otherwise results would vary with the
        // engine's spill structure.
        let (count, _payload) = self.aggregate(values);
        let mut buf = Vec::with_capacity(8);
        encode_value(count, 0, &mut buf);
        out.emit(key, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::io::dfs::SimDfs;

    fn run(text: &str, job: SynText) -> HashMap<String, SynValue> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("in", text.as_bytes().to_vec());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(1),
            Arc::new(job),
            &dfs,
            &[("in", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_value(&v).unwrap()))
            .collect()
    }

    #[test]
    fn counts_match_wordcount_semantics() {
        let m = run("a b a\nb a\n", SynText::new(0, 0.0));
        assert_eq!(m["a"].count, 3);
        assert_eq!(m["b"].count, 2);
    }

    /// Combine four singleton values directly and decode the aggregate.
    fn combine_four(beta: f64) -> SynValue {
        let job = SynText::new(0, beta);
        let mut one = Vec::new();
        encode_value(1, 16, &mut one);
        let values: Vec<&[u8]> = vec![&one, &one, &one, &one];
        let out = textmr_engine::job::combine_values(&job, b"x", &values);
        assert_eq!(out.len(), 1);
        decode_value(&out[0]).unwrap()
    }

    #[test]
    fn beta_zero_collapses_payload() {
        let v = combine_four(0.0);
        assert_eq!(v.count, 4);
        assert_eq!(v.payload_len, 0);
    }

    #[test]
    fn beta_one_concatenates_payload() {
        let v = combine_four(1.0);
        assert_eq!(v.payload_len, 4 * 16);
    }

    #[test]
    fn intermediate_beta_shrinks_partially() {
        let v = combine_four(0.5);
        assert!(
            v.payload_len > 0 && v.payload_len < 4 * 16,
            "payload={}",
            v.payload_len
        );
    }

    #[test]
    fn final_output_payload_is_canonical_zero() {
        // Reduce drops the grouping-dependent payload (see reduce()).
        let m = run("x x x x\n", SynText::new(0, 1.0));
        assert_eq!(m["x"].count, 4);
        assert_eq!(m["x"].payload_len, 0);
    }

    #[test]
    fn cpu_factor_does_not_change_results() {
        let cheap = run("w v w\n", SynText::new(0, 0.5));
        let costly = run("w v w\n", SynText::new(200, 0.5));
        assert_eq!(cheap, costly);
    }

    #[test]
    fn single_value_combine_keeps_payload() {
        let job = SynText::new(0, 0.0);
        let mut one = Vec::new();
        encode_value(1, 16, &mut one);
        let values: Vec<&[u8]> = vec![&one];
        let out = textmr_engine::job::combine_values(&job, b"u", &values);
        assert_eq!(decode_value(&out[0]).unwrap().payload_len, 16);
    }
}
