//! InvertedIndex — build, per word, the sorted list of its occurrences.
//!
//! `map()` emits `(word, postings)` where a posting is `(doc, position)`;
//! the document id is the line's byte offset (a stable, unique per-line
//! id) and the position is the word's index within the line. `combine()`
//! merges posting lists — fewer records, but byte volume barely shrinks,
//! which is what makes the application *storage-intensive* (the paper's
//! upper-left of Figure 10). `reduce()` merges all lists into the final
//! sorted postings for each word.
//!
//! Postings are serialized as `varint n, then n × (varint doc, varint
//! pos)` with docs ascending (delta-codable; kept plain for clarity).

use textmr_engine::codec::{decode_u64, read_varint, write_varint};
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};
use textmr_nlp::tokenizer;

/// One occurrence of a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Document id (line byte offset).
    pub doc: u64,
    /// Word index within the document.
    pub pos: u64,
}

/// Serialize a posting list.
pub fn encode_postings(postings: &[Posting], out: &mut Vec<u8>) {
    write_varint(out, postings.len() as u64);
    for p in postings {
        write_varint(out, p.doc);
        write_varint(out, p.pos);
    }
}

/// Deserialize a posting list; `None` on malformed bytes.
pub fn decode_postings(buf: &[u8]) -> Option<Vec<Posting>> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let doc = read_varint(buf, &mut pos)?;
        let p = read_varint(buf, &mut pos)?;
        out.push(Posting { doc, pos: p });
    }
    Some(out)
}

/// The InvertedIndex job.
#[derive(Debug, Default)]
pub struct InvertedIndex;

fn merge_posting_values(values: &mut dyn ValueCursor) -> Vec<Posting> {
    let mut all = Vec::new();
    while let Some(v) = values.next() {
        if let Some(ps) = decode_postings(v) {
            all.extend(ps);
        }
    }
    all.sort_unstable();
    all
}

impl Job for InvertedIndex {
    fn name(&self) -> &str {
        "InvertedIndex"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let doc = decode_u64(record.key).unwrap_or(0);
        let line = std::str::from_utf8(record.value).unwrap_or("");
        let mut buf = Vec::with_capacity(16);
        for (i, word) in tokenizer::words(line).enumerate() {
            buf.clear();
            encode_postings(&[Posting { doc, pos: i as u64 }], &mut buf);
            emit.emit(word.as_bytes(), &buf);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        let merged = merge_posting_values(values);
        let mut buf = Vec::with_capacity(merged.len() * 4 + 4);
        encode_postings(&merged, &mut buf);
        out.push(&buf);
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let merged = merge_posting_values(values);
        let mut buf = Vec::with_capacity(merged.len() * 4 + 4);
        encode_postings(&merged, &mut buf);
        out.emit(key, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::io::dfs::SimDfs;

    fn index_of(text: &str) -> HashMap<String, Vec<Posting>> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("in", text.as_bytes().to_vec());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(InvertedIndex),
            &dfs,
            &[("in", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_postings(&v).unwrap()))
            .collect()
    }

    #[test]
    fn postings_roundtrip() {
        let ps = vec![Posting { doc: 0, pos: 3 }, Posting { doc: 1000, pos: 0 }];
        let mut buf = Vec::new();
        encode_postings(&ps, &mut buf);
        assert_eq!(decode_postings(&buf), Some(ps));
    }

    #[test]
    fn index_locates_every_occurrence() {
        // Line 1 starts at offset 0; line 2 at offset 8 ("cat bat\n").
        let idx = index_of("cat bat\nbat cat\n");
        let cat = &idx["cat"];
        assert_eq!(cat.len(), 2);
        assert_eq!(cat[0], Posting { doc: 0, pos: 0 });
        assert_eq!(cat[1], Posting { doc: 8, pos: 1 });
        let bat = &idx["bat"];
        assert_eq!(bat[0], Posting { doc: 0, pos: 1 });
        assert_eq!(bat[1], Posting { doc: 8, pos: 0 });
    }

    #[test]
    fn postings_are_sorted_by_doc_then_pos() {
        let idx = index_of("z z\nz\nz z z\n");
        let ps = &idx["z"];
        let mut sorted = ps.clone();
        sorted.sort();
        assert_eq!(*ps, sorted);
        assert_eq!(ps.len(), 6);
    }

    #[test]
    fn repeated_word_in_one_line_keeps_positions() {
        let idx = index_of("dup dup dup\n");
        let ps = &idx["dup"];
        assert_eq!(ps.iter().map(|p| p.pos).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn malformed_postings_return_none() {
        assert_eq!(decode_postings(&[5]), None); // claims 5, has none
    }
}
