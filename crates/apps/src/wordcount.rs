//! WordCount — the canonical text-centric MapReduce program (\[6\]).
//!
//! `map()` tokenizes each line and emits `(word, 1)`; `combine()` and
//! `reduce()` sum. Non-CPU-intensive, non-storage-intensive: the paper's
//! lower-left corner of Figure 10 and its best frequency-buffering client.

use textmr_engine::codec::{decode_u64, encode_u64};
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};
use textmr_nlp::tokenizer;

/// The WordCount job.
#[derive(Debug, Default)]
pub struct WordCount;

fn sum_values(values: &mut dyn ValueCursor) -> u64 {
    let mut sum = 0u64;
    while let Some(v) = values.next() {
        sum += decode_u64(v).unwrap_or(0);
    }
    sum
}

impl Job for WordCount {
    fn name(&self) -> &str {
        "WordCount"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let line = std::str::from_utf8(record.value).unwrap_or("");
        for word in tokenizer::words(line) {
            emit.emit(word.as_bytes(), &encode_u64(1));
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        out.push(&encode_u64(sum_values(values)));
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        out.emit(key, &encode_u64(sum_values(values)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::io::dfs::SimDfs;

    fn run(text: &str) -> HashMap<String, u64> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("in", text.as_bytes().to_vec());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(WordCount),
            &dfs,
            &[("in", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_u64(&v).unwrap()))
            .collect()
    }

    #[test]
    fn counts_words_case_insensitively() {
        let m = run("The the THE\ncat cat.\n");
        assert_eq!(m["the"], 3);
        assert_eq!(m["cat"], 2);
    }

    #[test]
    fn punctuation_is_not_counted() {
        let m = run("a, b. c! a?\n");
        assert_eq!(m.len(), 3);
        assert_eq!(m["a"], 2);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(run("").is_empty());
    }

    #[test]
    fn unicode_words() {
        let m = run("Über über\n");
        assert_eq!(m["über"], 2);
    }
}
