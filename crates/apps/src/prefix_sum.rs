//! Parallel prefix sums — a Goodrich-style three-round MapReduce scan.
//!
//! Input records are lines `index value`. Elements are grouped into
//! fixed-size blocks by index and the scan runs in the textbook three
//! rounds, each a map→shuffle→reduce stage chained through the DAG
//! executor's typed framed hand-off:
//!
//! 1. **Local scan** ([`PrefixLocal`]): reduce sorts each block's
//!    elements and computes within-block inclusive prefixes, emitting
//!    the scanned elements plus one block-total record.
//! 2. **Scan of sums** ([`PrefixScan`]): map fans each block total out
//!    to every *later* block; reduce sums the incoming totals into the
//!    block's exclusive offset.
//! 3. **Apply** ([`PrefixApply`]): reduce adds the block offset to each
//!    element's within-block prefix and emits the final
//!    `(index, prefix)` pairs.
//!
//! All three stages key by block id, so the hand-off carries each
//! block's records straight from the producing reduce partition to the
//! consuming map task without touching a text codec. Value records are
//! tagged: `E` element `(index, prefix)`, `T` block total, `O` block
//! offset.

use textmr_engine::codec::{decode_u64, encode_u64};
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};

/// Element record: tag ++ index(8) ++ value(8).
const TAG_ELEM: u8 = b'E';
/// Block-total record: tag ++ sum(8).
const TAG_TOTAL: u8 = b'T';
/// Block-offset record: tag ++ offset(8).
const TAG_OFFSET: u8 = b'O';

fn elem_record(index: u64, value: u64) -> [u8; 17] {
    let mut v = [0u8; 17];
    v[0] = TAG_ELEM;
    v[1..9].copy_from_slice(&encode_u64(index));
    v[9..17].copy_from_slice(&encode_u64(value));
    v
}

fn scalar_record(tag: u8, value: u64) -> [u8; 9] {
    let mut v = [0u8; 9];
    v[0] = tag;
    v[1..9].copy_from_slice(&encode_u64(value));
    v
}

fn decode_elem(v: &[u8]) -> Option<(u64, u64)> {
    if v.len() == 17 && v[0] == TAG_ELEM {
        Some((decode_u64(&v[1..9])?, decode_u64(&v[9..17])?))
    } else {
        None
    }
}

fn decode_scalar(tag: u8, v: &[u8]) -> Option<u64> {
    if v.len() == 9 && v[0] == tag {
        decode_u64(&v[1..9])
    } else {
        None
    }
}

/// Parse an input line `index value`.
pub fn parse_element_line(line: &[u8]) -> Option<(u64, u64)> {
    let s = std::str::from_utf8(line).ok()?;
    let (i, v) = s.trim().split_once(' ')?;
    Some((i.trim().parse().ok()?, v.trim().parse().ok()?))
}

/// Round 1: within-block inclusive scan.
#[derive(Debug, Clone, Copy)]
pub struct PrefixLocal {
    /// Elements per block.
    pub block_size: u64,
}

impl Job for PrefixLocal {
    fn name(&self) -> &str {
        "prefix-local"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let Some((index, value)) = parse_element_line(record.value) else {
            return;
        };
        let block = index / self.block_size;
        emit.emit(&encode_u64(block), &elem_record(index, value));
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut elems: Vec<(u64, u64)> = Vec::new();
        while let Some(v) = values.next() {
            if let Some(e) = decode_elem(v) {
                elems.push(e);
            }
        }
        elems.sort_unstable();
        let mut running = 0u64;
        for (index, value) in elems {
            running += value;
            out.emit(key, &elem_record(index, running));
        }
        out.emit(key, &scalar_record(TAG_TOTAL, running));
    }
}

/// Round 2: exclusive scan over the block totals.
#[derive(Debug, Clone, Copy)]
pub struct PrefixScan {
    /// Total number of blocks (so the fan-out knows where to stop).
    pub num_blocks: u64,
}

impl Job for PrefixScan {
    fn name(&self) -> &str {
        "prefix-scan"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let Some(block) = decode_u64(record.key) else {
            return;
        };
        if let Some(total) = decode_scalar(TAG_TOTAL, record.value) {
            // Fan the total out to every later block — its exclusive
            // offset includes this block's sum.
            for later in block + 1..self.num_blocks {
                emit.emit(&encode_u64(later), &scalar_record(TAG_TOTAL, total));
            }
        } else {
            emit.emit(record.key, record.value);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        // Totals bound for one block collapse to their sum; elements
        // pass through.
        let mut sum = 0u64;
        let mut any = false;
        while let Some(v) = values.next() {
            if let Some(t) = decode_scalar(TAG_TOTAL, v) {
                sum += t;
                any = true;
            } else {
                out.push(v);
            }
        }
        if any {
            out.push(&scalar_record(TAG_TOTAL, sum));
        }
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut offset = 0u64;
        let mut elems: Vec<[u8; 17]> = Vec::new();
        while let Some(v) = values.next() {
            if let Some(t) = decode_scalar(TAG_TOTAL, v) {
                offset += t;
            } else if v.len() == 17 && v[0] == TAG_ELEM {
                elems.push(v.try_into().expect("17-byte element record"));
            }
        }
        for e in &elems {
            out.emit(key, e);
        }
        out.emit(key, &scalar_record(TAG_OFFSET, offset));
    }
}

/// Round 3: add each block's offset to its elements' local prefixes.
#[derive(Debug, Clone, Copy)]
pub struct PrefixApply;

impl Job for PrefixApply {
    fn name(&self) -> &str {
        "prefix-apply"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        emit.emit(record.key, record.value);
    }

    fn reduce(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut offset = 0u64;
        let mut elems: Vec<(u64, u64)> = Vec::new();
        while let Some(v) = values.next() {
            if let Some(o) = decode_scalar(TAG_OFFSET, v) {
                offset += o;
            } else if let Some(e) = decode_elem(v) {
                elems.push(e);
            }
        }
        for (index, local) in elems {
            out.emit(&encode_u64(index), &encode_u64(offset + local));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use textmr_engine::cluster::{ClusterConfig, JobConfig};
    use textmr_engine::dag::run_dag;
    use textmr_engine::io::dfs::SimDfs;
    use textmr_engine::job::{JobDag, StageInput};

    fn scan_dag(values: &[u64], block_size: u64, reducers: usize) -> Vec<(u64, u64)> {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 4096);
        let mut lines = String::new();
        for (i, v) in values.iter().enumerate() {
            lines.push_str(&format!("{i} {v}\n"));
        }
        dfs.put("elems", lines.into_bytes());
        let num_blocks = (values.len() as u64).div_ceil(block_size);
        let cfg = JobConfig::default().with_reducers(reducers);
        let dag = JobDag::new()
            .stage(
                Arc::new(PrefixLocal { block_size }),
                cfg.clone(),
                StageInput::dfs("elems"),
            )
            .then(Arc::new(PrefixScan { num_blocks }), cfg.clone())
            .then(Arc::new(PrefixApply), cfg);
        let run = run_dag(&cluster, &dag, &dfs).unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (decode_u64(&k).unwrap(), decode_u64(&v).unwrap()))
            .collect()
    }

    fn reference(values: &[u64]) -> Vec<(u64, u64)> {
        values
            .iter()
            .scan(0u64, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .enumerate()
            .map(|(i, p)| (i as u64, p))
            .collect()
    }

    #[test]
    fn three_round_scan_matches_sequential_reference() {
        let values: Vec<u64> = (0..97).map(|i| (i * 7 + 3) % 31).collect();
        assert_eq!(scan_dag(&values, 8, 3), reference(&values));
    }

    #[test]
    fn scan_is_invariant_to_block_size_and_partitioning() {
        let values: Vec<u64> = (0..60).map(|i| i * i % 17).collect();
        let want = reference(&values);
        for (bs, red) in [(1, 2), (5, 4), (60, 1), (7, 3)] {
            assert_eq!(scan_dag(&values, bs, red), want, "bs={bs} red={red}");
        }
    }

    #[test]
    fn single_element_and_empty_blocks() {
        assert_eq!(scan_dag(&[42], 4, 2), vec![(0, 42)]);
    }

    #[test]
    fn parse_element_lines() {
        assert_eq!(parse_element_line(b"3 17"), Some((3, 17)));
        assert_eq!(parse_element_line(b"  3   17 "), Some((3, 17)));
        assert_eq!(parse_element_line(b"x 1"), None);
        assert_eq!(parse_element_line(b""), None);
    }
}
