//! WordPOSTag — part-of-speech statistics over a corpus.
//!
//! "For each word, map() emits an array of counters, each counts the times
//! this word is of a certain type, and reduce() sums the counters up to
//! get the final POS statistics of all words." The map function runs the
//! `textmr-nlp` HMM tagger and is by far the most CPU-intensive of the six
//! applications (the paper's WordPOSTag runs ~35× WordCount); its support
//! thread is consequently ~95 % idle (Table II).
//!
//! Values are `NUM_TAGS` varint counters.

use std::sync::Arc;
use textmr_engine::codec::{read_varint, write_varint};
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};
use textmr_nlp::{Tag, Tagger, TaggerConfig, NUM_TAGS};

/// Per-word tag-count vector.
pub type TagCounts = [u64; NUM_TAGS];

/// Serialize a tag-count vector.
pub fn encode_counts(counts: &TagCounts, out: &mut Vec<u8>) {
    for &c in counts {
        write_varint(out, c);
    }
}

/// Deserialize a tag-count vector; `None` on malformed bytes.
pub fn decode_counts(buf: &[u8]) -> Option<TagCounts> {
    let mut pos = 0usize;
    let mut out = [0u64; NUM_TAGS];
    for slot in &mut out {
        *slot = read_varint(buf, &mut pos)?;
    }
    Some(out)
}

/// The WordPOSTag job. The tagger is built once and shared by all tasks.
pub struct WordPosTag {
    tagger: Arc<Tagger>,
}

impl WordPosTag {
    /// Job with the benchmark's default CPU intensity (two posterior
    /// rescoring passes on top of Viterbi, approximating OpenNLP's cost).
    pub fn new() -> Self {
        Self::with_config(TaggerConfig {
            posterior_passes: 2,
        })
    }

    /// Job with an explicit tagger configuration (CPU-intensity knob).
    pub fn with_config(cfg: TaggerConfig) -> Self {
        WordPosTag {
            tagger: Arc::new(Tagger::new(cfg)),
        }
    }
}

impl Default for WordPosTag {
    fn default() -> Self {
        Self::new()
    }
}

fn sum_count_values(values: &mut dyn ValueCursor) -> TagCounts {
    let mut total = [0u64; NUM_TAGS];
    while let Some(v) = values.next() {
        if let Some(c) = decode_counts(v) {
            for (t, x) in total.iter_mut().zip(c) {
                *t += x;
            }
        }
    }
    total
}

impl Job for WordPosTag {
    fn name(&self) -> &str {
        "WordPOSTag"
    }

    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
        let line = std::str::from_utf8(record.value).unwrap_or("");
        let mut buf = Vec::with_capacity(NUM_TAGS + 4);
        for (word, tag) in self.tagger.tag_line(line) {
            let mut counts = [0u64; NUM_TAGS];
            counts[tag.index()] = 1;
            buf.clear();
            encode_counts(&counts, &mut buf);
            emit.emit(word.as_bytes(), &buf);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        let total = sum_count_values(values);
        let mut buf = Vec::with_capacity(NUM_TAGS + 4);
        encode_counts(&total, &mut buf);
        out.push(&buf);
    }

    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let total = sum_count_values(values);
        let mut buf = Vec::with_capacity(NUM_TAGS + 4);
        encode_counts(&total, &mut buf);
        out.emit(key, &buf);
    }
}

/// Human-readable dominant tag of a count vector (for examples/benches).
pub fn dominant_tag(counts: &TagCounts) -> Tag {
    let mut best = 0usize;
    for i in 1..NUM_TAGS {
        if counts[i] > counts[best] {
            best = i;
        }
    }
    Tag::from_index(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
    use textmr_engine::io::dfs::SimDfs;

    fn run(text: &str) -> HashMap<String, TagCounts> {
        let cluster = ClusterConfig::single_node();
        let mut dfs = SimDfs::new(1, 1 << 16);
        dfs.put("in", text.as_bytes().to_vec());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_reducers(2),
            Arc::new(WordPosTag::new()),
            &dfs,
            &[("in", 0)],
        )
        .unwrap();
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_counts(&v).unwrap()))
            .collect()
    }

    #[test]
    fn counts_roundtrip() {
        let mut c = [0u64; NUM_TAGS];
        c[3] = 7;
        c[11] = 1;
        let mut buf = Vec::new();
        encode_counts(&c, &mut buf);
        assert_eq!(decode_counts(&buf), Some(c));
        assert_eq!(decode_counts(&buf[..buf.len() - 1]), None);
    }

    #[test]
    fn word_statistics_sum_occurrences() {
        let stats = run("The dog runs. The cat sits.\n");
        let the = stats["the"];
        assert_eq!(the.iter().sum::<u64>(), 2);
        assert_eq!(dominant_tag(&the), Tag::Det);
    }

    #[test]
    fn every_word_token_is_counted_once() {
        let text = "Alpha beta gamma. Delta epsilon.\n";
        let stats = run(text);
        let total: u64 = stats.values().map(|c| c.iter().sum::<u64>()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn ambiguous_words_can_split_tags() {
        // Same surface form in two syntactic positions may receive
        // different tags; the counter vector accumulates both.
        let stats = run("The light is on. They light fires.\n");
        let light = stats["light"];
        assert_eq!(light.iter().sum::<u64>(), 2);
    }
}
