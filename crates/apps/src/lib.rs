//! # textmr-apps — the paper's benchmark applications
//!
//! The six applications of Section II-B, plus the SynText parameterizable
//! benchmark of Section V-D, written against `textmr-engine`'s byte-level
//! [`textmr_engine::job::Job`] interface exactly as their Hadoop originals
//! were written against Hadoop's:
//!
//! | app | kind | key skew | map CPU | combine behaviour |
//! |---|---|---|---|---|
//! | [`wordcount::WordCount`] | text | Zipf ≈ 1 | light | collapses to 8 B |
//! | [`inverted_index::InvertedIndex`] | text | Zipf ≈ 1 | light | concatenates (storage-intensive) |
//! | [`pos_tag::WordPosTag`] | text | Zipf ≈ 1 | very heavy (HMM) | collapses to counters |
//! | [`access_log::AccessLogSum`] | relational | Zipf 0.8 | light | collapses to 8 B |
//! | [`access_log::AccessLogJoin`] | relational | Zipf 0.8 | light | none (join) |
//! | [`pagerank::PageRank`] | graph | Zipf 1 (in-links) | light | sums contributions |
//! | [`syntext::SynText`] | synthetic | Zipf ≈ 1 | parameter | parameter β |
//! | [`prefix_sum::PrefixLocal`]/[`prefix_sum::PrefixScan`]/[`prefix_sum::PrefixApply`] | numeric, 3-round DAG | uniform blocks | light | sums block totals |
//!
//! Two of these are *multi-round*: [`pagerank::pagerank_to_convergence`]
//! iterates PageRank through the engine's DAG executor until the rank
//! vector converges, and [`prefix_sum`] is the Goodrich-style
//! three-round parallel scan — both chain rounds through the typed
//! framed hand-off, never re-parsing text between rounds.
//!
//! None of the applications knows anything about frequency-buffering or
//! spill-matcher — the paper's "no user code changes" claim is structural
//! here: optimizations are installed purely through the engine's
//! `JobConfig`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod access_log;
pub mod inverted_index;
pub mod pagerank;
pub mod pos_tag;
pub mod prefix_sum;
pub mod syntext;
pub mod wordcount;

pub use access_log::{AccessLogJoin, AccessLogSum, SOURCE_RANKINGS, SOURCE_VISITS};
pub use inverted_index::InvertedIndex;
pub use pagerank::{pagerank_to_convergence, PageRank, PageRankRun};
pub use pos_tag::WordPosTag;
pub use prefix_sum::{PrefixApply, PrefixLocal, PrefixScan};
pub use syntext::SynText;
pub use wordcount::WordCount;
