//! # textmr-data — synthetic datasets for the textmr reproduction
//!
//! The paper evaluates on three inputs none of which we can ship: a 2008
//! Wikipedia dump, access logs from Pavlo et al.'s generator, and a
//! synthetic 10 M-page crawl. This crate regenerates statistically
//! equivalent datasets at configurable (laptop) scale, deterministic in a
//! seed:
//!
//! * [`text::CorpusConfig`] — Zipf(α≈1) word corpus (WordCount,
//!   InvertedIndex, WordPOSTag).
//! * [`weblog::WeblogConfig`] — UserVisits + Rankings with Zipf(0.8) URLs
//!   (AccessLogSum, AccessLogJoin).
//! * [`graph::GraphConfig`] — web crawl with Zipf(1.0) in-link popularity
//!   (PageRank).
//!
//! The [`zipf`] module supplies the samplers and the generalized harmonic
//! numbers that also back the paper's auto-tuning analysis, and [`words`]
//! synthesizes the vocabulary (rank → word string).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod text;
pub mod weblog;
pub mod words;
pub mod zipf;
