//! Zipfian distribution sampling and generalized harmonic numbers.
//!
//! The paper's three datasets are all governed by Zipf-like popularity laws:
//! words in the text corpus (α ≈ 1, Zipf's law \[23\]), destination URLs in the
//! access logs (α = 0.8, Breslau et al. \[4\]) and web-page in-link popularity
//! (α = 1, Adamic & Huberman \[2\]). This module provides two samplers:
//!
//! * [`ZipfTable`] — an exact inverse-CDF sampler backed by a cumulative
//!   table. O(m) memory, O(log m) per sample, bit-exact distribution. Used
//!   when the universe is small enough to tabulate (vocabularies, URL sets).
//! * [`ZipfRejection`] — Jain's rejection–inversion sampler. O(1) memory and
//!   amortized O(1) per sample for any universe size; used for very large
//!   universes where a table is wasteful.
//!
//! Both sample *ranks* in `1..=m`; callers map ranks to concrete items
//! (words, URLs, page ids).

use rand::Rng;

/// Generalized harmonic number `H_{m,α} = Σ_{j=1..m} j^{-α}`.
///
/// This is the normalizing constant of the Zipf(α) distribution over `m`
/// ranks, and it appears directly in the paper's sampling-fraction bound
/// `n·s ≥ k^α · H_{m,α}` (Section III-C).
pub fn harmonic(m: usize, alpha: f64) -> f64 {
    let mut sum = 0.0;
    for j in 1..=m {
        sum += (j as f64).powf(-alpha);
    }
    sum
}

/// Approximation of `H_{m,α}` via the Euler–Maclaurin integral bound; used
/// when `m` is too large to sum directly. Relative error is far below what
/// the auto-tuner needs (it feeds a sampling-fraction heuristic).
pub fn harmonic_approx(m: usize, alpha: f64) -> f64 {
    let m = m as f64;
    if (alpha - 1.0).abs() < 1e-9 {
        // H_{m,1} ≈ ln m + γ + 1/(2m)
        m.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * m)
    } else {
        // Euler–Maclaurin: ∫_1^m x^{-α} dx + ½(f(1)+f(m)) + (f'(m)-f'(1))/12.
        (m.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
            + 0.5 * (1.0 + m.powf(-alpha))
            + alpha * (1.0 - m.powf(-alpha - 1.0)) / 12.0
    }
}

/// Probability that a Zipf(α) draw over `m` ranks is exactly rank `i`
/// (1-based): `p_i = i^{-α} / H_{m,α}`.
pub fn zipf_pmf(i: usize, m: usize, alpha: f64) -> f64 {
    assert!(i >= 1 && i <= m, "rank out of range");
    (i as f64).powf(-alpha) / harmonic(m, alpha)
}

/// Exact inverse-CDF Zipf sampler over ranks `1..=m`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// Cumulative probabilities; `cdf[i]` = P(rank ≤ i+1).
    cdf: Vec<f64>,
    alpha: f64,
}

impl ZipfTable {
    /// Build the cumulative table for `m` ranks with exponent `alpha ≥ 0`.
    ///
    /// # Panics
    /// Panics if `m == 0` or `alpha` is negative or non-finite.
    pub fn new(m: usize, alpha: f64) -> Self {
        assert!(m > 0, "Zipf universe must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for j in 1..=m {
            acc += (j as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfTable { cdf, alpha }
    }

    /// Number of ranks in the universe.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// The Zipf exponent this table was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draw a rank in `1..=m` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the index of
        // the first cumulative bucket reaching u — exactly the 0-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Exact probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        assert!(i >= 1 && i <= self.cdf.len());
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }
}

/// Rejection–inversion Zipf sampler (W. Hörmann & G. Derflinger / Jain).
///
/// Samples ranks in `1..=m` for `alpha > 0` without tabulating the CDF.
/// For `alpha` near 0 the distribution degenerates to uniform and a table is
/// preferable; we still handle it by falling back to uniform sampling.
#[derive(Debug, Clone)]
pub struct ZipfRejection {
    m: usize,
    alpha: f64,
    // Precomputed constants of the rejection envelope.
    t: f64,
}

impl ZipfRejection {
    /// Create a sampler over `m` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `m == 0` or `alpha` is negative or non-finite.
    pub fn new(m: usize, alpha: f64) -> Self {
        assert!(m > 0, "Zipf universe must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and >= 0"
        );
        let mf = m as f64;
        // Envelope area for the classic two-piece envelope: flat over [1,2),
        // power tail over [2, m+1).
        let t = if (alpha - 1.0).abs() < 1e-9 {
            1.0 + (mf).ln()
        } else {
            (mf.powf(1.0 - alpha) - alpha) / (1.0 - alpha)
        };
        ZipfRejection { m, alpha, t }
    }

    /// Number of ranks in the universe.
    pub fn universe(&self) -> usize {
        self.m
    }

    /// Draw a rank in `1..=m`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.alpha < 1e-9 {
            return rng.gen_range(1..=self.m);
        }
        // Rejection sampling against the envelope
        //   b(x) = 1            for 1 <= x < 2
        //   b(x) = (x-1)^{-α}   for 2 <= x <= m+1
        // whose integral is `t`. A draw X from b, floored, is accepted with
        // probability floor(X)^{-α} / b(X).
        loop {
            let u: f64 = rng.gen::<f64>() * self.t;
            let x = if u <= 1.0 {
                // Flat part.
                1.0 + u
            } else if (self.alpha - 1.0).abs() < 1e-9 {
                // Invert ln(x-1) = u - 1.
                1.0 + (u - 1.0).exp()
            } else {
                // Invert ((x-1)^{1-α} - 1)/(1-α) = u - 1, i.e.
                // x = 1 + (u(1-α) + α)^{1/(1-α)}.
                1.0 + (u * (1.0 - self.alpha) + self.alpha).powf(1.0 / (1.0 - self.alpha))
            };
            let k = x.floor() as usize;
            if k < 1 || k > self.m {
                continue;
            }
            let envelope = if x < 2.0 {
                1.0
            } else {
                (x - 1.0).powf(-self.alpha)
            };
            let target = (k as f64).powf(-self.alpha);
            if rng.gen::<f64>() * envelope <= target {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_small_values() {
        assert!((harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(2, 1.0) - 1.5).abs() < 1e-12);
        assert!((harmonic(3, 0.0) - 3.0).abs() < 1e-12);
        // H_{4,2} = 1 + 1/4 + 1/9 + 1/16
        assert!((harmonic(4, 2.0) - (1.0 + 0.25 + 1.0 / 9.0 + 0.0625)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_approx_close_to_exact() {
        for &alpha in &[0.5, 0.8, 1.0, 1.2] {
            let exact = harmonic(100_000, alpha);
            let approx = harmonic_approx(100_000, alpha);
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.01, "alpha={alpha}: exact={exact} approx={approx}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let t = ZipfTable::new(50, 1.0);
        let sum: f64 = (1..=50).map(|i| t.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_sampler_is_monotone_in_popularity() {
        let t = ZipfTable::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 101];
        for _ in 0..200_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        // Rank 1 must dominate rank 10 must dominate rank 100 clearly.
        assert!(counts[1] > counts[10] && counts[10] > counts[100]);
        // Empirical frequency of rank 1 ≈ p_1 within 5 % relative.
        let p1 = t.pmf(1);
        let f1 = counts[1] as f64 / 200_000.0;
        assert!((f1 - p1).abs() / p1 < 0.05, "p1={p1} f1={f1}");
    }

    #[test]
    fn rejection_sampler_matches_table_distribution() {
        let m = 1000;
        for &alpha in &[0.8, 1.0, 1.3] {
            let table = ZipfTable::new(m, alpha);
            let rej = ZipfRejection::new(m, alpha);
            let mut rng = StdRng::seed_from_u64(42);
            let n = 300_000;
            let mut counts = vec![0usize; m + 1];
            for _ in 0..n {
                counts[rej.sample(&mut rng)] += 1;
            }
            // Compare head probabilities against the exact pmf.
            for (i, &c) in counts.iter().enumerate().take(6).skip(1) {
                let emp = c as f64 / n as f64;
                let exact = table.pmf(i);
                assert!(
                    (emp - exact).abs() / exact < 0.08,
                    "alpha={alpha} rank={i} emp={emp} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn rejection_sampler_stays_in_range() {
        let rej = ZipfRejection::new(17, 1.1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = rej.sample(&mut rng);
            assert!((1..=17).contains(&k));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let t = ZipfTable::new(10, 0.0);
        for i in 1..=10 {
            assert!((t.pmf(i) - 0.1).abs() < 1e-9);
        }
    }
}
