//! Pavlo-style web access-log generators (UserVisits + Rankings).
//!
//! Substitute for the data generator from Pavlo et al.'s "MapReduce vs DBMS"
//! benchmark, which the paper used for AccessLogSum and AccessLogJoin with
//! one modification: destination URLs follow a Zipf(0.8) popularity
//! distribution (Breslau et al. \[4\]). We reproduce the same schema:
//!
//! * `UserVisits(sourceIP, destURL, visitDate, adRevenue, userAgent,
//!   countryCode, languageCode, searchWord, duration)` — pipe-delimited.
//! * `Rankings(pageURL, pageRank, avgDuration)` — pipe-delimited.

use crate::zipf::ZipfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration for the access-log pair.
#[derive(Debug, Clone)]
pub struct WeblogConfig {
    /// Number of distinct URLs (the paper used ~600 000).
    pub num_urls: usize,
    /// Number of UserVisits records.
    pub num_visits: usize,
    /// Zipf exponent of destination-URL popularity (paper: 0.8).
    pub url_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeblogConfig {
    fn default() -> Self {
        WeblogConfig {
            num_urls: 20_000,
            num_visits: 200_000,
            url_alpha: 0.8,
            seed: 0x0106_f11e,
        }
    }
}

/// Deterministically produce the URL string for a 1-based popularity rank.
pub fn url_for_rank(rank: usize) -> String {
    // Short host component keyed by rank so URLs cluster like real sites.
    format!("http://site{}.example.com/page{}.html", rank % 977, rank)
}

const USER_AGENTS: [&str; 5] = [
    "Mozilla/5.0",
    "Chrome/34.0",
    "Safari/7.0",
    "Opera/12.1",
    "IE/9.0",
];
const COUNTRIES: [&str; 8] = ["USA", "DEU", "FRA", "GBR", "JPN", "BRA", "IND", "CHN"];
const LANGS: [&str; 8] = ["en", "de", "fr", "en", "ja", "pt", "hi", "zh"];

impl WeblogConfig {
    /// Generate the UserVisits log, one record per line.
    pub fn generate_visits(&self) -> Vec<String> {
        let zipf = ZipfTable::new(self.num_urls, self.url_alpha);
        (0..self.num_visits)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    self.seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                let url_rank = zipf.sample(&mut rng);
                let ip = format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..=254),
                    rng.gen_range(0..=255),
                    rng.gen_range(0..=255),
                    rng.gen_range(1..=254)
                );
                let date = format!(
                    "20{:02}-{:02}-{:02}",
                    rng.gen_range(8..=13),
                    rng.gen_range(1..=12),
                    rng.gen_range(1..=28)
                );
                let revenue: f64 = rng.gen_range(0.01..1000.0);
                let ua = USER_AGENTS[rng.gen_range(0..USER_AGENTS.len())];
                let ci = rng.gen_range(0..COUNTRIES.len());
                let word_rank: usize = rng.gen_range(1..5000);
                let duration = rng.gen_range(1..=10_000);
                format!(
                    "{ip}|{url}|{date}|{revenue:.2}|{ua}|{c}|{l}|{w}|{duration}",
                    url = url_for_rank(url_rank),
                    c = COUNTRIES[ci],
                    l = LANGS[ci],
                    w = crate::words::word_for_rank(word_rank),
                )
            })
            .collect()
    }

    /// Generate the Rankings table: every URL gets a pageRank score and an
    /// average visit duration.
    pub fn generate_rankings(&self) -> Vec<String> {
        (1..=self.num_urls)
            .into_par_iter()
            .map(|rank| {
                let mut rng = StdRng::seed_from_u64(
                    self.seed ^ (rank as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
                );
                // More popular pages tend to carry a higher pageRank.
                let base = (self.num_urls as f64 / rank as f64).ln().max(0.1);
                let page_rank = (base * rng.gen_range(5.0..15.0)) as u64 + 1;
                let avg_duration = rng.gen_range(1..=300);
                format!("{}|{}|{}", url_for_rank(rank), page_rank, avg_duration)
            })
            .collect()
    }

    /// Join lines into a single newline-terminated byte buffer.
    pub fn visits_bytes(&self) -> Vec<u8> {
        join_lines(&self.generate_visits())
    }

    /// Rankings as a newline-terminated byte buffer.
    pub fn rankings_bytes(&self) -> Vec<u8> {
        join_lines(&self.generate_rankings())
    }
}

fn join_lines(lines: &[String]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for l in lines {
        buf.extend_from_slice(l.as_bytes());
        buf.push(b'\n');
    }
    buf
}

/// Parsed view of one UserVisits record. Allocation-free; borrows the line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserVisit<'a> {
    /// Client IP address.
    pub source_ip: &'a str,
    /// Visited URL (Zipf-popular).
    pub dest_url: &'a str,
    /// Visit date, `YYYY-MM-DD`.
    pub visit_date: &'a str,
    /// Ad revenue attributed to the visit (dollars).
    pub ad_revenue: f64,
    /// Browser user-agent string.
    pub user_agent: &'a str,
    /// ISO country code.
    pub country_code: &'a str,
    /// Language code.
    pub language_code: &'a str,
    /// Search keyword that led to the visit.
    pub search_word: &'a str,
    /// Visit duration in seconds.
    pub duration: u32,
}

impl<'a> UserVisit<'a> {
    /// Parse a pipe-delimited UserVisits line. Returns `None` on malformed
    /// input (callers skip such records, as Hadoop jobs do).
    pub fn parse(line: &'a str) -> Option<Self> {
        let mut f = line.split('|');
        Some(UserVisit {
            source_ip: f.next()?,
            dest_url: f.next()?,
            visit_date: f.next()?,
            ad_revenue: f.next()?.parse().ok()?,
            user_agent: f.next()?,
            country_code: f.next()?,
            language_code: f.next()?,
            search_word: f.next()?,
            duration: f.next()?.parse().ok()?,
        })
    }
}

/// Parsed view of one Rankings record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ranking<'a> {
    /// Page URL (join key).
    pub page_url: &'a str,
    /// Ranking score.
    pub page_rank: u64,
    /// Average visit duration in seconds.
    pub avg_duration: u32,
}

impl<'a> Ranking<'a> {
    /// Parse a pipe-delimited Rankings line.
    pub fn parse(line: &'a str) -> Option<Self> {
        let mut f = line.split('|');
        Some(Ranking {
            page_url: f.next()?,
            page_rank: f.next()?.parse().ok()?,
            avg_duration: f.next()?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn visits_parse_back() {
        let cfg = WeblogConfig {
            num_visits: 500,
            ..Default::default()
        };
        for line in cfg.generate_visits() {
            let v = UserVisit::parse(&line).expect("generated record must parse");
            assert!(v.ad_revenue > 0.0);
            assert!(v.dest_url.starts_with("http://"));
        }
    }

    #[test]
    fn rankings_parse_back_and_cover_all_urls() {
        let cfg = WeblogConfig {
            num_urls: 300,
            num_visits: 10,
            ..Default::default()
        };
        let lines = cfg.generate_rankings();
        assert_eq!(lines.len(), 300);
        for line in &lines {
            let r = Ranking::parse(line).expect("generated ranking must parse");
            assert!(r.page_rank >= 1);
        }
    }

    #[test]
    fn url_popularity_is_skewed() {
        let cfg = WeblogConfig {
            num_urls: 1000,
            num_visits: 50_000,
            url_alpha: 0.8,
            seed: 5,
        };
        let mut counts: HashMap<String, usize> = HashMap::new();
        for line in cfg.generate_visits() {
            let v = UserVisit::parse(&line).unwrap();
            *counts.entry(v.dest_url.to_string()).or_default() += 1;
        }
        let top = counts.get(&url_for_rank(1)).copied().unwrap_or(0);
        let mid = counts.get(&url_for_rank(500)).copied().unwrap_or(0);
        assert!(top > mid * 10, "top={top} mid={mid}: URL skew too flat");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = WeblogConfig {
            num_visits: 100,
            ..Default::default()
        };
        assert_eq!(cfg.generate_visits(), cfg.generate_visits());
        assert_eq!(cfg.generate_rankings(), cfg.generate_rankings());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(UserVisit::parse("only|three|fields").is_none());
        assert!(Ranking::parse("url|notanumber|3").is_none());
    }
}
