//! Synthetic vocabulary generation.
//!
//! The text-corpus generator needs a vocabulary of distinct, plausible word
//! strings where *rank i* maps deterministically to a word. Two linguistic
//! regularities matter for the reproduction:
//!
//! * **Distinctness** — keys must be unique so that key-frequency statistics
//!   are exactly the Zipf ranks we sampled.
//! * **Brevity of frequent words** — in natural language, frequent words are
//!   short (a consequence of Zipf's principle of least effort). Key length
//!   affects serialized record size, sort-comparison cost, and hash cost, so
//!   we reproduce it: word length grows logarithmically with rank.
//!
//! Words are built from pronounceable consonant-vowel syllables; rank `i` is
//! encoded in a mixed-radix syllable alphabet, which guarantees uniqueness
//! without any storage.

/// Consonant-vowel syllables used as digits of the word encoding. 64
/// syllables ⇒ a 6-bit alphabet; two syllables already cover 4096 words.
const SYLLABLES: [&str; 64] = [
    "ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu", "da", "de", "di", "do", "du", "fa",
    "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go", "gu", "ha", "he", "hi", "ho", "hu", "ka", "ke",
    "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni",
    "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so",
];

/// The 32 most frequent ranks get hand-picked short "function words",
/// mirroring English where the head of the distribution is `the, of, and,…`.
/// No entry may be a concatenation of [`SYLLABLES`] (would collide with the
/// rank encoding) — e.g. "he" and "be" are excluded for that reason.
const FUNCTION_WORDS: [&str; 32] = [
    "the", "of", "and", "in", "to", "a", "is", "was", "for", "as", "on", "with", "by", "him", "at",
    "from", "his", "it", "an", "are", "were", "which", "this", "that", "you", "or", "had", "not",
    "but", "one", "their", "its",
];

/// Deterministically produce the vocabulary word for 1-based Zipf rank
/// `rank`. Distinct ranks always yield distinct words.
///
/// ```
/// use textmr_data::words::word_for_rank;
/// assert_eq!(word_for_rank(1), "the");
/// assert_ne!(word_for_rank(100), word_for_rank(101));
/// ```
pub fn word_for_rank(rank: usize) -> String {
    assert!(rank >= 1, "ranks are 1-based");
    if rank <= FUNCTION_WORDS.len() {
        return FUNCTION_WORDS[rank - 1].to_string();
    }
    // Encode (rank - FUNCTION_WORDS.len() - 1) in base 64 as syllables.
    // A fixed prefix syllable count per magnitude keeps the mapping
    // injective (no leading-zero collisions: we encode length explicitly
    // by always emitting the full digit count for this rank's magnitude).
    let mut n = rank - FUNCTION_WORDS.len() - 1;
    let mut digits = Vec::with_capacity(4);
    loop {
        digits.push(n % SYLLABLES.len());
        n /= SYLLABLES.len();
        if n == 0 {
            break;
        }
        // Subtract 1 so that the encoding is bijective base-64 (avoids the
        // "01" == "1" ambiguity of ordinary positional encoding).
        n -= 1;
    }
    let mut w = String::with_capacity(digits.len() * 2);
    for &d in digits.iter().rev() {
        w.push_str(SYLLABLES[d]);
    }
    w
}

/// Build the full vocabulary for a universe of `m` words, rank order.
pub fn vocabulary(m: usize) -> Vec<String> {
    (1..=m).map(word_for_rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn function_words_head_the_vocabulary() {
        assert_eq!(word_for_rank(1), "the");
        assert_eq!(word_for_rank(2), "of");
        assert_eq!(word_for_rank(32), "its");
    }

    #[test]
    fn words_are_distinct() {
        let vocab = vocabulary(50_000);
        let set: HashSet<&String> = vocab.iter().collect();
        assert_eq!(set.len(), vocab.len(), "vocabulary contains duplicates");
    }

    #[test]
    fn frequent_words_are_short() {
        let w10 = word_for_rank(10);
        let w100_000 = word_for_rank(100_000);
        assert!(w10.len() < w100_000.len());
        // Length grows logarithmically: even rank 10^6 stays compact.
        assert!(word_for_rank(1_000_000).len() <= 10);
    }

    #[test]
    fn bijective_encoding_has_no_boundary_collisions() {
        // Check ranks straddling the 1-syllable/2-syllable boundary.
        let vocab = vocabulary(64 * 66 + 40);
        let set: HashSet<&String> = vocab.iter().collect();
        assert_eq!(set.len(), vocab.len());
    }
}
