//! Synthetic Wikipedia-style text corpus generator.
//!
//! Substitute for the paper's 2008 Wikipedia dump (8.52 GB, 1.45 B words,
//! 24.7 M unique words; Figure 3 shows its Zipfian rank-frequency curve).
//! We generate a corpus with the same governing statistics at a configurable
//! scale: words drawn Zipf(α) from a synthetic vocabulary, grouped into
//! sentences and lines. Each output line is one "document line", matching
//! how the paper's applications consume the dump (line-oriented records).

use crate::words::word_for_rank;
use crate::zipf::ZipfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration for corpus generation. All fields are plain data so
/// benchmark harnesses can sweep them.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of distinct words in the vocabulary (the paper's corpus had
    /// 24.7 M; defaults here are laptop-scale).
    pub vocab_size: usize,
    /// Zipf exponent of word popularity (≈1 for natural language).
    pub alpha: f64,
    /// Number of lines (records) to generate.
    pub lines: usize,
    /// Mean number of words per line; actual lengths jitter ±50 %.
    pub words_per_line: usize,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            vocab_size: 50_000,
            alpha: 1.0,
            lines: 20_000,
            words_per_line: 12,
            seed: 0x7e97_c0de,
        }
    }
}

impl CorpusConfig {
    /// Generate the corpus as a vector of lines. Lines are generated in
    /// parallel (rayon) but deterministically: line `i` depends only on
    /// `(seed, i)`.
    pub fn generate(&self) -> Vec<String> {
        let zipf = ZipfTable::new(self.vocab_size, self.alpha);
        (0..self.lines)
            .into_par_iter()
            .map(|i| self.generate_line(&zipf, i))
            .collect()
    }

    /// Generate the corpus and join it into a single newline-terminated
    /// byte buffer (the shape the engine's DFS ingests).
    pub fn generate_bytes(&self) -> Vec<u8> {
        let lines = self.generate();
        let mut buf = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in &lines {
            buf.extend_from_slice(l.as_bytes());
            buf.push(b'\n');
        }
        buf
    }

    /// Stream the corpus to `w` in bounded chunks of `chunk_lines` lines,
    /// returning the total bytes written. Each chunk is generated in
    /// parallel and dropped after writing, so peak memory is one chunk —
    /// this is how the out-of-core bench materializes inputs many times
    /// larger than the engine's RAM budget. Because line `i` depends only
    /// on `(seed, i)`, the output is byte-identical to
    /// [`generate_bytes`](CorpusConfig::generate_bytes) at every chunk
    /// size.
    pub fn generate_to_writer(
        &self,
        w: &mut dyn std::io::Write,
        chunk_lines: usize,
    ) -> std::io::Result<u64> {
        let zipf = ZipfTable::new(self.vocab_size, self.alpha);
        let chunk = chunk_lines.max(1);
        let mut written = 0u64;
        let mut start = 0;
        while start < self.lines {
            let end = (start + chunk).min(self.lines);
            let lines: Vec<String> = (start..end)
                .into_par_iter()
                .map(|i| self.generate_line(&zipf, i))
                .collect();
            for l in &lines {
                w.write_all(l.as_bytes())?;
                w.write_all(b"\n")?;
                written += l.len() as u64 + 1;
            }
            start = end;
        }
        Ok(written)
    }

    /// [`generate_to_writer`](CorpusConfig::generate_to_writer) into a
    /// file at `path` (buffered), returning the total bytes written.
    pub fn generate_to_file(
        &self,
        path: &std::path::Path,
        chunk_lines: usize,
    ) -> std::io::Result<u64> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        let n = self.generate_to_writer(&mut w, chunk_lines)?;
        std::io::Write::flush(&mut w)?;
        Ok(n)
    }

    fn generate_line(&self, zipf: &ZipfTable, line_idx: usize) -> String {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (line_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let lo = (self.words_per_line / 2).max(1);
        let hi = (self.words_per_line * 3 / 2).max(lo + 1);
        let n = rng.gen_range(lo..=hi);
        let mut line = String::with_capacity(n * 7);
        let mut sentence_start = true;
        for w in 0..n {
            let rank = zipf.sample(&mut rng);
            let word = word_for_rank(rank);
            if w > 0 {
                line.push(' ');
            }
            if sentence_start {
                // Capitalize sentence heads so the tokenizer has real work.
                let mut chars = word.chars();
                if let Some(c) = chars.next() {
                    line.extend(c.to_uppercase());
                    line.push_str(chars.as_str());
                }
            } else {
                line.push_str(&word);
            }
            sentence_start = false;
            // End a sentence roughly every 8 words.
            if rng.gen_ratio(1, 8) || w == n - 1 {
                line.push('.');
                sentence_start = true;
            } else if rng.gen_ratio(1, 16) {
                line.push(',');
            }
        }
        line
    }

    /// Exact expected probability of the rank-1 word, for test assertions.
    pub fn head_probability(&self) -> f64 {
        crate::zipf::zipf_pmf(1, self.vocab_size, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig {
            lines: 100,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusConfig {
            lines: 50,
            seed: 1,
            ..Default::default()
        };
        let b = CorpusConfig {
            lines: 50,
            seed: 2,
            ..Default::default()
        };
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn word_frequencies_are_zipfian() {
        let cfg = CorpusConfig {
            vocab_size: 1000,
            alpha: 1.0,
            lines: 5000,
            words_per_line: 10,
            seed: 99,
        };
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for line in cfg.generate() {
            for tok in line.split_whitespace() {
                let w: String = tok
                    .chars()
                    .filter(|c| c.is_alphabetic())
                    .flat_map(|c| c.to_lowercase())
                    .collect();
                if !w.is_empty() {
                    *counts.entry(w).or_default() += 1;
                    total += 1;
                }
            }
        }
        // "the" (rank 1) must be by far the most common word, with empirical
        // frequency close to the Zipf head probability.
        let the = counts.get("the").copied().unwrap_or(0) as f64 / total as f64;
        let expect = cfg.head_probability();
        assert!(
            (the - expect).abs() / expect < 0.15,
            "emp={the} expect={expect}"
        );
    }

    #[test]
    fn streamed_generation_matches_in_memory_bytes() {
        let cfg = CorpusConfig {
            lines: 137,
            vocab_size: 500,
            ..Default::default()
        };
        let whole = cfg.generate_bytes();
        for chunk in [1, 7, 64, 137, 1000] {
            let mut out = Vec::new();
            let n = cfg.generate_to_writer(&mut out, chunk).unwrap();
            assert_eq!(out, whole, "chunk_lines={chunk}");
            assert_eq!(n, whole.len() as u64);
        }
    }

    #[test]
    fn bytes_roundtrip_line_count() {
        let cfg = CorpusConfig {
            lines: 77,
            ..Default::default()
        };
        let bytes = cfg.generate_bytes();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 77);
    }
}
