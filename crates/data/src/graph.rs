//! Synthetic web-graph generator for the PageRank workload.
//!
//! Substitute for the paper's 10 M-page synthetic crawl (22.89 GB) built
//! with Pavlo et al.'s tools using Zipf(α = 1) link popularity per Adamic &
//! Huberman \[2\]. A page record is one line:
//!
//! ```text
//! <pageId>|<rank>|<out1>,<out2>,...
//! ```
//!
//! where `<rank>` is the page's current PageRank value (initialized to
//! 1/N) and the out-links point at Zipf-popular target pages, so in-link
//! counts are Zipfian — the skew that matters for frequency-buffering on
//! the PageRank map output.

use crate::zipf::ZipfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration for web-graph generation.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Number of pages in the crawl.
    pub pages: usize,
    /// Mean out-degree per page (actual degree jitters ±50 %).
    pub mean_out_degree: usize,
    /// Zipf exponent for in-link popularity (paper: 1.0).
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            pages: 20_000,
            mean_out_degree: 8,
            alpha: 1.0,
            seed: 0x9a9e_12a7,
        }
    }
}

impl GraphConfig {
    /// Generate the crawl, one adjacency line per page. Page ids are
    /// `0..pages`; the initial rank of every page is `1/pages`.
    pub fn generate(&self) -> Vec<String> {
        let zipf = ZipfTable::new(self.pages, self.alpha);
        let init_rank = 1.0 / self.pages as f64;
        (0..self.pages)
            .into_par_iter()
            .map(|page| self.generate_page(&zipf, init_rank, page))
            .collect()
    }

    fn generate_page(&self, zipf: &ZipfTable, init_rank: f64, page: usize) -> String {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (page as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let lo = (self.mean_out_degree / 2).max(1);
        let hi = (self.mean_out_degree * 3 / 2).max(lo + 1);
        let degree = rng.gen_range(lo..=hi);
        let mut line = format!("{page}|{init_rank:.10}|");
        for d in 0..degree {
            // Popularity rank 1 maps to page 0, etc.
            let target = zipf.sample(&mut rng) - 1;
            if d > 0 {
                line.push(',');
            }
            line.push_str(&target.to_string());
        }
        line
    }

    /// Stream the crawl to `w` in bounded chunks of `chunk_pages` lines,
    /// returning the total bytes written. Peak memory is one chunk; the
    /// bytes are identical to [`generate_bytes`](GraphConfig::generate_bytes)
    /// at every chunk size because page `i` depends only on `(seed, i)`.
    pub fn generate_to_writer(
        &self,
        w: &mut dyn std::io::Write,
        chunk_pages: usize,
    ) -> std::io::Result<u64> {
        let zipf = ZipfTable::new(self.pages, self.alpha);
        let init_rank = 1.0 / self.pages as f64;
        let chunk = chunk_pages.max(1);
        let mut written = 0u64;
        let mut start = 0;
        while start < self.pages {
            let end = (start + chunk).min(self.pages);
            let lines: Vec<String> = (start..end)
                .into_par_iter()
                .map(|page| self.generate_page(&zipf, init_rank, page))
                .collect();
            for l in &lines {
                w.write_all(l.as_bytes())?;
                w.write_all(b"\n")?;
                written += l.len() as u64 + 1;
            }
            start = end;
        }
        Ok(written)
    }

    /// [`generate_to_writer`](GraphConfig::generate_to_writer) into a file
    /// at `path` (buffered), returning the total bytes written.
    pub fn generate_to_file(
        &self,
        path: &std::path::Path,
        chunk_pages: usize,
    ) -> std::io::Result<u64> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        let n = self.generate_to_writer(&mut w, chunk_pages)?;
        std::io::Write::flush(&mut w)?;
        Ok(n)
    }

    /// Graph as a newline-terminated byte buffer.
    pub fn generate_bytes(&self) -> Vec<u8> {
        let lines = self.generate();
        let mut buf = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in &lines {
            buf.extend_from_slice(l.as_bytes());
            buf.push(b'\n');
        }
        buf
    }
}

/// Parsed view of a page record. Out-links are iterated lazily.
#[derive(Debug, Clone, Copy)]
pub struct PageRecord<'a> {
    /// Page id.
    pub page: u64,
    /// Current PageRank value.
    pub rank: f64,
    links: &'a str,
}

impl<'a> PageRecord<'a> {
    /// Parse one adjacency line; returns `None` on malformed input.
    pub fn parse(line: &'a str) -> Option<Self> {
        let mut f = line.splitn(3, '|');
        Some(PageRecord {
            page: f.next()?.parse().ok()?,
            rank: f.next()?.parse().ok()?,
            links: f.next().unwrap_or(""),
        })
    }

    /// Iterate the out-link page ids.
    pub fn out_links(&self) -> impl Iterator<Item = u64> + 'a {
        self.links
            .split(',')
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
    }

    /// The raw out-link field (re-emitted verbatim by the PageRank mapper
    /// to reconstruct the graph).
    pub fn links_str(&self) -> &'a str {
        self.links
    }

    /// Out-degree of the page.
    pub fn out_degree(&self) -> usize {
        self.out_links().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn streamed_generation_matches_in_memory_bytes() {
        let cfg = GraphConfig {
            pages: 101,
            ..Default::default()
        };
        let whole = cfg.generate_bytes();
        for chunk in [1, 13, 101, 500] {
            let mut out = Vec::new();
            let n = cfg.generate_to_writer(&mut out, chunk).unwrap();
            assert_eq!(out, whole, "chunk_pages={chunk}");
            assert_eq!(n, whole.len() as u64);
        }
    }

    #[test]
    fn records_parse_back() {
        let cfg = GraphConfig {
            pages: 200,
            ..Default::default()
        };
        let lines = cfg.generate();
        assert_eq!(lines.len(), 200);
        for line in &lines {
            let rec = PageRecord::parse(line).expect("generated record must parse");
            assert!(rec.out_degree() >= 1);
            assert!((rec.rank - 1.0 / 200.0).abs() < 1e-9);
            for t in rec.out_links() {
                assert!((t as usize) < 200);
            }
        }
    }

    #[test]
    fn in_link_popularity_is_skewed() {
        let cfg = GraphConfig {
            pages: 2000,
            mean_out_degree: 10,
            alpha: 1.0,
            seed: 1,
        };
        let mut indeg: HashMap<u64, usize> = HashMap::new();
        for line in cfg.generate() {
            let rec = PageRecord::parse(&line).unwrap();
            for t in rec.out_links() {
                *indeg.entry(t).or_default() += 1;
            }
        }
        let top = indeg.get(&0).copied().unwrap_or(0);
        let mid = indeg.get(&1000).copied().unwrap_or(0);
        assert!(
            top > mid.max(1) * 20,
            "top={top} mid={mid}: in-link skew too flat"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GraphConfig {
            pages: 100,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PageRecord::parse("notanumber|0.5|1,2").is_none());
        assert!(PageRecord::parse("7").is_none());
    }

    #[test]
    fn empty_link_list_is_ok() {
        let rec = PageRecord::parse("3|0.25|").unwrap();
        assert_eq!(rec.out_degree(), 0);
        assert_eq!(rec.page, 3);
    }
}
