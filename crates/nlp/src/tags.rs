//! The part-of-speech tag set.
//!
//! A compact 12-tag universal-style tag set. The WordPOSTag application
//! emits, per word, an array of `NUM_TAGS` counters (one per tag), exactly
//! as the paper describes: "map() emits an array of counters, each counts
//! the times this word is of a certain type".

/// Number of distinct part-of-speech tags.
pub const NUM_TAGS: usize = 12;

/// Part-of-speech tags (universal-style coarse tag set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Tag {
    /// Common and proper nouns.
    Noun = 0,
    /// Verbs in any inflection.
    Verb = 1,
    /// Adjectives.
    Adj = 2,
    /// Adverbs.
    Adv = 3,
    /// Pronouns.
    Pron = 4,
    /// Determiners and articles.
    Det = 5,
    /// Adpositions (prepositions / postpositions).
    Adp = 6,
    /// Conjunctions (coordinating and subordinating).
    Conj = 7,
    /// Numerals.
    Num = 8,
    /// Particles (to-infinitive marker, possessive, negation).
    Part = 9,
    /// Punctuation.
    Punct = 10,
    /// Everything else (interjections, symbols, foreign words).
    Other = 11,
}

impl Tag {
    /// All tags in discriminant order.
    pub const ALL: [Tag; NUM_TAGS] = [
        Tag::Noun,
        Tag::Verb,
        Tag::Adj,
        Tag::Adv,
        Tag::Pron,
        Tag::Det,
        Tag::Adp,
        Tag::Conj,
        Tag::Num,
        Tag::Part,
        Tag::Punct,
        Tag::Other,
    ];

    /// Tag index in `0..NUM_TAGS`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Tag::index`].
    ///
    /// # Panics
    /// Panics if `i >= NUM_TAGS`.
    pub fn from_index(i: usize) -> Tag {
        Self::ALL[i]
    }

    /// Short human-readable name (used in example/bench output).
    pub fn name(self) -> &'static str {
        match self {
            Tag::Noun => "NOUN",
            Tag::Verb => "VERB",
            Tag::Adj => "ADJ",
            Tag::Adv => "ADV",
            Tag::Pron => "PRON",
            Tag::Det => "DET",
            Tag::Adp => "ADP",
            Tag::Conj => "CONJ",
            Tag::Num => "NUM",
            Tag::Part => "PART",
            Tag::Punct => "PUNCT",
            Tag::Other => "X",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for t in Tag::ALL {
            assert_eq!(Tag::from_index(t.index()), t);
        }
    }

    #[test]
    fn all_covers_every_discriminant_once() {
        let mut seen = [false; NUM_TAGS];
        for t in Tag::ALL {
            assert!(!seen[t.index()], "duplicate tag in ALL");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Tag::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_TAGS);
    }
}
