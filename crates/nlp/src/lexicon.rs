//! Emission model: closed-class lexicon + morphological suffix guesser.
//!
//! Produces, for any token, a log-probability score per tag. Closed-class
//! words (determiners, pronouns, prepositions, conjunctions, particles) are
//! looked up; open-class words are scored by suffix morphology, the standard
//! technique for unknown-word handling in HMM taggers.

use crate::tags::{Tag, NUM_TAGS};
// textmr-lint: allow(unordered-iteration, reason = "closed-class word list: per-token lookups only, never iterated")
use std::collections::HashMap;

/// Strongly negative log-probability standing in for "impossible".
pub const LOG_ZERO: f64 = -1.0e6;

/// Closed-class word → tag entries. Deliberately small: the tagger is a
/// workload substitute, not a linguistics deliverable, but the entries are
/// real so output is plausible and deterministic.
const CLOSED_CLASS: &[(&str, Tag)] = &[
    // Determiners / articles.
    ("the", Tag::Det),
    ("a", Tag::Det),
    ("an", Tag::Det),
    ("this", Tag::Det),
    ("that", Tag::Det),
    ("these", Tag::Det),
    ("those", Tag::Det),
    ("each", Tag::Det),
    ("every", Tag::Det),
    ("some", Tag::Det),
    ("any", Tag::Det),
    ("no", Tag::Det),
    ("their", Tag::Det),
    ("its", Tag::Det),
    ("his", Tag::Det),
    ("her", Tag::Det),
    ("our", Tag::Det),
    ("your", Tag::Det),
    ("my", Tag::Det),
    // Pronouns.
    ("i", Tag::Pron),
    ("you", Tag::Pron),
    ("him", Tag::Pron),
    ("she", Tag::Pron),
    ("it", Tag::Pron),
    ("we", Tag::Pron),
    ("they", Tag::Pron),
    ("them", Tag::Pron),
    ("who", Tag::Pron),
    ("which", Tag::Pron),
    ("what", Tag::Pron),
    ("me", Tag::Pron),
    ("us", Tag::Pron),
    ("himself", Tag::Pron),
    ("itself", Tag::Pron),
    // Adpositions.
    ("of", Tag::Adp),
    ("in", Tag::Adp),
    ("on", Tag::Adp),
    ("at", Tag::Adp),
    ("by", Tag::Adp),
    ("with", Tag::Adp),
    ("from", Tag::Adp),
    ("into", Tag::Adp),
    ("for", Tag::Adp),
    ("about", Tag::Adp),
    ("under", Tag::Adp),
    ("over", Tag::Adp),
    ("between", Tag::Adp),
    ("through", Tag::Adp),
    ("during", Tag::Adp),
    ("against", Tag::Adp),
    // Conjunctions.
    ("and", Tag::Conj),
    ("or", Tag::Conj),
    ("but", Tag::Conj),
    ("because", Tag::Conj),
    ("while", Tag::Conj),
    ("although", Tag::Conj),
    ("if", Tag::Conj),
    ("when", Tag::Conj),
    ("as", Tag::Conj),
    ("since", Tag::Conj),
    // Particles.
    ("to", Tag::Part),
    ("not", Tag::Part),
    ("n't", Tag::Part),
    // Common verbs (auxiliaries and frequent irregulars).
    ("is", Tag::Verb),
    ("was", Tag::Verb),
    ("are", Tag::Verb),
    ("were", Tag::Verb),
    ("be", Tag::Verb),
    ("been", Tag::Verb),
    ("has", Tag::Verb),
    ("have", Tag::Verb),
    ("had", Tag::Verb),
    ("do", Tag::Verb),
    ("does", Tag::Verb),
    ("did", Tag::Verb),
    ("will", Tag::Verb),
    ("would", Tag::Verb),
    ("can", Tag::Verb),
    ("could", Tag::Verb),
    ("may", Tag::Verb),
    ("might", Tag::Verb),
    ("shall", Tag::Verb),
    ("should", Tag::Verb),
    // Frequent adverbs.
    ("very", Tag::Adv),
    ("also", Tag::Adv),
    ("then", Tag::Adv),
    ("there", Tag::Adv),
    ("here", Tag::Adv),
    ("now", Tag::Adv),
    ("only", Tag::Adv),
    ("just", Tag::Adv),
    ("however", Tag::Adv),
    ("often", Tag::Adv),
    // Frequent quantifier/number words.
    ("one", Tag::Num),
    ("two", Tag::Num),
    ("three", Tag::Num),
    ("first", Tag::Num),
    ("second", Tag::Num),
];

/// Suffix → (tag, strength) morphological cues for open-class words,
/// longest-match-wins.
const SUFFIX_CUES: &[(&str, Tag, f64)] = &[
    ("ation", Tag::Noun, 3.0),
    ("ment", Tag::Noun, 3.0),
    ("ness", Tag::Noun, 3.0),
    ("ship", Tag::Noun, 2.5),
    ("ity", Tag::Noun, 2.5),
    ("ers", Tag::Noun, 2.0),
    ("er", Tag::Noun, 0.8),
    ("ism", Tag::Noun, 2.5),
    ("ist", Tag::Noun, 2.0),
    ("ize", Tag::Verb, 2.5),
    ("ise", Tag::Verb, 2.0),
    ("ify", Tag::Verb, 2.5),
    ("ing", Tag::Verb, 1.5),
    ("ed", Tag::Verb, 1.5),
    ("ate", Tag::Verb, 1.2),
    ("able", Tag::Adj, 2.5),
    ("ible", Tag::Adj, 2.5),
    ("ful", Tag::Adj, 2.5),
    ("ous", Tag::Adj, 2.5),
    ("ive", Tag::Adj, 2.0),
    ("al", Tag::Adj, 1.0),
    ("ic", Tag::Adj, 1.5),
    ("less", Tag::Adj, 2.5),
    ("ish", Tag::Adj, 1.8),
    ("ly", Tag::Adv, 4.5),
    ("s", Tag::Noun, 0.5),
];

/// The emission model. Construction builds the hash lookup once; scoring is
/// per-token and CPU-bound (the point of the WordPOSTag workload).
#[derive(Debug)]
pub struct Lexicon {
    // textmr-lint: allow(unordered-iteration, reason = "word-to-tag lookups only; never iterated")
    closed: HashMap<&'static str, Tag>,
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl Lexicon {
    /// Build the lexicon.
    pub fn new() -> Self {
        Lexicon {
            closed: CLOSED_CLASS.iter().copied().collect(),
        }
    }

    /// Fill `scores` with per-tag emission log-probabilities for `word`
    /// (already lowercased). `scores` must have length `NUM_TAGS`.
    pub fn emission_scores(&self, word: &str, scores: &mut [f64]) {
        debug_assert_eq!(scores.len(), NUM_TAGS);
        // Closed-class lookup: near-deterministic emission.
        if let Some(&tag) = self.closed.get(word) {
            for (i, s) in scores.iter_mut().enumerate() {
                *s = if i == tag.index() { -0.05 } else { -8.0 };
            }
            return;
        }
        // Numeral detection.
        if word.chars().all(|c| c.is_ascii_digit()) && !word.is_empty() {
            for (i, s) in scores.iter_mut().enumerate() {
                *s = if i == Tag::Num.index() { -0.05 } else { -10.0 };
            }
            return;
        }
        // Open-class prior: nouns dominate, then verbs/adjectives.
        let mut weights = [0.0f64; NUM_TAGS];
        weights[Tag::Noun.index()] = 5.0;
        weights[Tag::Verb.index()] = 2.0;
        weights[Tag::Adj.index()] = 1.5;
        weights[Tag::Adv.index()] = 0.5;
        weights[Tag::Other.index()] = 0.2;
        // Morphological cues, longest suffix first; every matching suffix
        // contributes (a real suffix guesser interpolates all orders).
        for &(suffix, tag, strength) in SUFFIX_CUES {
            if word.len() > suffix.len() && word.ends_with(suffix) {
                weights[tag.index()] += strength * suffix.len() as f64;
            }
        }
        // Normalize into log-probabilities.
        let total: f64 = weights.iter().sum();
        for (s, &w) in scores.iter_mut().zip(weights.iter()) {
            *s = if w > 0.0 { (w / total).ln() } else { LOG_ZERO };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_tag(lex: &Lexicon, word: &str) -> Tag {
        let mut scores = [0.0; NUM_TAGS];
        lex.emission_scores(word, &mut scores);
        let (i, _) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        Tag::from_index(i)
    }

    #[test]
    fn closed_class_words_resolve() {
        let lex = Lexicon::new();
        assert_eq!(best_tag(&lex, "the"), Tag::Det);
        assert_eq!(best_tag(&lex, "of"), Tag::Adp);
        assert_eq!(best_tag(&lex, "and"), Tag::Conj);
        assert_eq!(best_tag(&lex, "is"), Tag::Verb);
    }

    #[test]
    fn suffixes_guide_open_class() {
        let lex = Lexicon::new();
        assert_eq!(best_tag(&lex, "quickly"), Tag::Adv);
        assert_eq!(best_tag(&lex, "nationalization"), Tag::Noun);
        assert_eq!(best_tag(&lex, "running"), Tag::Verb);
        assert_eq!(best_tag(&lex, "beautiful"), Tag::Adj);
    }

    #[test]
    fn digits_are_numerals() {
        let lex = Lexicon::new();
        assert_eq!(best_tag(&lex, "1234"), Tag::Num);
    }

    #[test]
    fn unknown_word_defaults_nounish() {
        let lex = Lexicon::new();
        assert_eq!(best_tag(&lex, "glorp"), Tag::Noun);
    }

    #[test]
    fn scores_are_normalized_log_probs() {
        let lex = Lexicon::new();
        let mut scores = [0.0; NUM_TAGS];
        for w in ["the", "running", "42", "glorp"] {
            lex.emission_scores(w, &mut scores);
            let sum: f64 = scores.iter().map(|s| s.exp()).sum();
            // Closed-class entries are not exactly normalized (they are
            // confidence-shaped), so allow slack.
            assert!(sum > 0.5 && sum < 1.5, "word={w} sum={sum}");
        }
    }
}
