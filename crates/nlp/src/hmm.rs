//! Bigram-HMM part-of-speech tagger with Viterbi decoding.
//!
//! The paper's WordPOSTag benchmark wraps Apache OpenNLP; what matters for
//! the reproduction is a *deterministic, CPU-intensive map function keyed by
//! words*. This tagger provides that: per sentence it runs full Viterbi over
//! `NUM_TAGS` states (O(T·NUM_TAGS²) log-domain float ops) plus, when
//! `posterior_passes > 0`, forward–backward posterior rescoring passes — the
//! knob that reproduces OpenNLP's much heavier per-token cost (the paper's
//! WordPOSTag runs ~35× longer than WordCount on identical input).

use crate::lexicon::{Lexicon, LOG_ZERO};
use crate::tags::{Tag, NUM_TAGS};
use crate::tokenizer::{self, Token};

/// Tagger configuration.
#[derive(Debug, Clone, Default)]
pub struct TaggerConfig {
    /// Number of forward–backward posterior rescoring passes run after
    /// Viterbi. 0 = plain Viterbi (fastest); the WordPOSTag benchmark uses a
    /// higher value to match the paper's CPU-intensity ratio.
    pub posterior_passes: usize,
}

/// The tagger. Construction builds the transition matrix and lexicon once;
/// it is `Send + Sync`, so map tasks share a single instance.
#[derive(Debug)]
pub struct Tagger {
    lexicon: Lexicon,
    /// `trans[i][j]` = log P(tag_j | tag_i).
    trans: [[f64; NUM_TAGS]; NUM_TAGS],
    /// `init[j]` = log P(tag_j at sentence start).
    init: [f64; NUM_TAGS],
    config: TaggerConfig,
}

/// Hand-specified transition affinities (row = previous tag, col = next
/// tag), reflecting coarse English syntax: DET→NOUN/ADJ, ADJ→NOUN,
/// NOUN→VERB/ADP/PUNCT, VERB→DET/NOUN/ADV, ADP→DET/NOUN, …
fn transition_weights() -> [[f64; NUM_TAGS]; NUM_TAGS] {
    use Tag::*;
    let mut w = [[0.2f64; NUM_TAGS]; NUM_TAGS];
    let mut set = |a: Tag, b: Tag, v: f64| w[a.index()][b.index()] = v;
    set(Det, Noun, 6.0);
    set(Det, Adj, 3.0);
    set(Det, Num, 1.0);
    set(Adj, Noun, 6.0);
    set(Adj, Adj, 1.5);
    set(Adj, Conj, 0.8);
    set(Noun, Verb, 4.0);
    set(Noun, Adp, 3.0);
    set(Noun, Punct, 3.0);
    set(Noun, Conj, 1.5);
    set(Noun, Noun, 2.0);
    set(Noun, Adv, 0.8);
    set(Verb, Det, 4.0);
    set(Verb, Noun, 2.0);
    set(Verb, Adv, 2.0);
    set(Verb, Adp, 2.0);
    set(Verb, Verb, 1.0);
    set(Verb, Part, 1.0);
    set(Verb, Adj, 1.5);
    set(Verb, Pron, 1.0);
    set(Verb, Punct, 2.0);
    set(Adv, Verb, 3.0);
    set(Adv, Adj, 3.0);
    set(Adv, Adv, 1.0);
    set(Adv, Punct, 1.0);
    set(Pron, Verb, 6.0);
    set(Pron, Punct, 1.0);
    set(Adp, Det, 5.0);
    set(Adp, Noun, 3.0);
    set(Adp, Pron, 1.5);
    set(Adp, Num, 1.0);
    set(Conj, Det, 2.0);
    set(Conj, Noun, 2.0);
    set(Conj, Verb, 1.5);
    set(Conj, Pron, 1.5);
    set(Conj, Adj, 1.0);
    set(Num, Noun, 5.0);
    set(Num, Punct, 1.5);
    set(Part, Verb, 6.0);
    set(Punct, Det, 2.0);
    set(Punct, Noun, 2.0);
    set(Punct, Pron, 2.0);
    set(Punct, Conj, 1.5);
    set(Punct, Adv, 1.0);
    set(Other, Noun, 1.0);
    set(Other, Punct, 1.0);
    w
}

impl Default for Tagger {
    fn default() -> Self {
        Self::new(TaggerConfig::default())
    }
}

impl Tagger {
    /// Build a tagger with the given configuration.
    pub fn new(config: TaggerConfig) -> Self {
        let weights = transition_weights();
        let mut trans = [[0.0; NUM_TAGS]; NUM_TAGS];
        for i in 0..NUM_TAGS {
            let row_sum: f64 = weights[i].iter().sum();
            for j in 0..NUM_TAGS {
                trans[i][j] = (weights[i][j] / row_sum).ln();
            }
        }
        // Sentence-initial distribution: determiners, pronouns, nouns,
        // adverbs lead sentences.
        let mut init_w = [0.3f64; NUM_TAGS];
        init_w[Tag::Det.index()] = 4.0;
        init_w[Tag::Pron.index()] = 2.5;
        init_w[Tag::Noun.index()] = 3.0;
        init_w[Tag::Adv.index()] = 1.0;
        init_w[Tag::Adp.index()] = 1.0;
        let init_sum: f64 = init_w.iter().sum();
        let mut init = [0.0; NUM_TAGS];
        for j in 0..NUM_TAGS {
            init[j] = (init_w[j] / init_sum).ln();
        }
        Tagger {
            lexicon: Lexicon::new(),
            trans,
            init,
            config,
        }
    }

    /// Tag one sentence of tokens; returns one tag per token.
    pub fn tag_sentence(&self, tokens: &[Token]) -> Vec<Tag> {
        let t = tokens.len();
        if t == 0 {
            return Vec::new();
        }
        // Emission matrix.
        let mut emit = vec![[0.0f64; NUM_TAGS]; t];
        for (i, tok) in tokens.iter().enumerate() {
            match tok {
                Token::Word(w) => self.lexicon.emission_scores(w, &mut emit[i]),
                Token::Punct(_) => {
                    for (j, e) in emit[i].iter_mut().enumerate() {
                        *e = if j == Tag::Punct.index() {
                            -0.01
                        } else {
                            LOG_ZERO
                        };
                    }
                }
            }
        }

        let mut tags = self.viterbi(&emit);
        for _ in 0..self.config.posterior_passes {
            // Posterior (forward–backward) rescoring: recompute marginals
            // and take the argmax per position. On a plain HMM this is
            // idempotent after the first pass; it is the deterministic
            // CPU-intensity knob standing in for OpenNLP's beam search +
            // maxent feature extraction.
            tags = self.posterior_decode(&emit);
        }
        tags
    }

    /// Tokenize a full line, split into sentences, tag each, and return
    /// `(word, tag)` pairs for the word tokens (punctuation skipped) — the
    /// exact stream the WordPOSTag mapper emits.
    pub fn tag_line(&self, line: &str) -> Vec<(String, Tag)> {
        let tokens = tokenizer::tokenize(line);
        let mut out = Vec::with_capacity(tokens.len());
        for sentence in tokenizer::sentences(&tokens) {
            let tags = self.tag_sentence(sentence);
            for (tok, tag) in sentence.iter().zip(tags) {
                if let Token::Word(w) = tok {
                    out.push((w.clone(), tag));
                }
            }
        }
        out
    }

    fn viterbi(&self, emit: &[[f64; NUM_TAGS]]) -> Vec<Tag> {
        let t = emit.len();
        let mut delta = vec![[0.0f64; NUM_TAGS]; t];
        let mut back = vec![[0u8; NUM_TAGS]; t];
        for j in 0..NUM_TAGS {
            delta[0][j] = self.init[j] + emit[0][j];
        }
        for i in 1..t {
            for j in 0..NUM_TAGS {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u8;
                for (k, &d) in delta[i - 1].iter().enumerate() {
                    let v = d + self.trans[k][j];
                    if v > best {
                        best = v;
                        arg = k as u8;
                    }
                }
                delta[i][j] = best + emit[i][j];
                back[i][j] = arg;
            }
        }
        let mut best_j = 0usize;
        for j in 1..NUM_TAGS {
            if delta[t - 1][j] > delta[t - 1][best_j] {
                best_j = j;
            }
        }
        let mut path = vec![Tag::Other; t];
        path[t - 1] = Tag::from_index(best_j);
        for i in (1..t).rev() {
            best_j = back[i][best_j] as usize;
            path[i - 1] = Tag::from_index(best_j);
        }
        path
    }

    fn posterior_decode(&self, emit: &[[f64; NUM_TAGS]]) -> Vec<Tag> {
        let t = emit.len();
        let mut fwd = vec![[0.0f64; NUM_TAGS]; t];
        let mut bwd = vec![[0.0f64; NUM_TAGS]; t];
        for j in 0..NUM_TAGS {
            fwd[0][j] = self.init[j] + emit[0][j];
        }
        for i in 1..t {
            for j in 0..NUM_TAGS {
                let mut acc = f64::NEG_INFINITY;
                for (k, &f) in fwd[i - 1].iter().enumerate() {
                    acc = log_sum_exp(acc, f + self.trans[k][j]);
                }
                fwd[i][j] = acc + emit[i][j];
            }
        }
        for i in (0..t.saturating_sub(1)).rev() {
            for j in 0..NUM_TAGS {
                let mut acc = f64::NEG_INFINITY;
                for k in 0..NUM_TAGS {
                    acc = log_sum_exp(acc, self.trans[j][k] + emit[i + 1][k] + bwd[i + 1][k]);
                }
                bwd[i][j] = acc;
            }
        }
        (0..t)
            .map(|i| {
                let mut best_j = 0usize;
                let mut best = f64::NEG_INFINITY;
                for j in 0..NUM_TAGS {
                    let v = fwd[i][j] + bwd[i][j];
                    if v > best {
                        best = v;
                        best_j = j;
                    }
                }
                Tag::from_index(best_j)
            })
            .collect()
    }
}

#[inline]
fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_simple_sentence_plausibly() {
        let tagger = Tagger::default();
        let tagged = tagger.tag_line("The dog is quickly running.");
        let map: std::collections::HashMap<_, _> = tagged.into_iter().collect();
        assert_eq!(map["the"], Tag::Det);
        assert_eq!(map["quickly"], Tag::Adv);
        assert_eq!(map["dog"], Tag::Noun);
    }

    #[test]
    fn deterministic() {
        let tagger = Tagger::default();
        let line = "The committee was planning a national celebration.";
        assert_eq!(tagger.tag_line(line), tagger.tag_line(line));
    }

    #[test]
    fn posterior_passes_do_not_change_token_count() {
        let plain = Tagger::new(TaggerConfig {
            posterior_passes: 0,
        });
        let heavy = Tagger::new(TaggerConfig {
            posterior_passes: 3,
        });
        let line = "She quickly gave him the beautiful painting and left.";
        assert_eq!(plain.tag_line(line).len(), heavy.tag_line(line).len());
    }

    #[test]
    fn empty_input() {
        let tagger = Tagger::default();
        assert!(tagger.tag_line("").is_empty());
        assert!(tagger.tag_sentence(&[]).is_empty());
    }

    #[test]
    fn one_tag_per_token() {
        let tagger = Tagger::default();
        let toks = tokenizer::tokenize("Seven red foxes jumped over lazy dogs.");
        let tags = tagger.tag_sentence(&toks);
        assert_eq!(tags.len(), toks.len());
        // Final token is the period.
        assert_eq!(*tags.last().unwrap(), Tag::Punct);
    }

    #[test]
    fn viterbi_and_posterior_mostly_agree() {
        let plain = Tagger::new(TaggerConfig {
            posterior_passes: 0,
        });
        let heavy = Tagger::new(TaggerConfig {
            posterior_passes: 1,
        });
        let line = "The national government had often planned a celebration in the city.";
        let a = plain.tag_line(line);
        let b = heavy.tag_line(line);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(agree * 10 >= a.len() * 7, "agreement {agree}/{}", a.len());
    }
}
