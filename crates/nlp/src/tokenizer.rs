//! Text tokenization shared by the text-centric applications.
//!
//! Splits a line into word tokens and punctuation tokens. Word tokens are
//! lowercased; this is the exact key normalization the paper's WordCount /
//! InvertedIndex / WordPOSTag jobs perform before emitting word keys, so the
//! tokenizer's cost is part of the measured `map` operation.

/// A single token: either a lowercased word or one punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A word, lowercased.
    Word(String),
    /// A punctuation character.
    Punct(char),
}

impl Token {
    /// The token text as a `&str` slice for words; punctuation renders via
    /// [`Token::push_str_to`].
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            Token::Punct(_) => None,
        }
    }

    /// Append the token's surface text to `out`.
    pub fn push_str_to(&self, out: &mut String) {
        match self {
            Token::Word(w) => out.push_str(w),
            Token::Punct(c) => out.push(*c),
        }
    }
}

/// Tokenize a line into words and punctuation.
///
/// Words are maximal runs of alphanumeric characters (plus internal
/// apostrophes/hyphens), lowercased. Sentence punctuation becomes
/// [`Token::Punct`]; all other characters are separators.
pub fn tokenize(line: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() {
            word.extend(c.to_lowercase());
        } else if (c == '\'' || c == '-')
            && !word.is_empty()
            && chars.peek().is_some_and(|n| n.is_alphanumeric())
        {
            // Internal apostrophe/hyphen stays inside the word ("don't").
            word.push(c);
        } else {
            if !word.is_empty() {
                out.push(Token::Word(std::mem::take(&mut word)));
            }
            if matches!(c, '.' | ',' | ';' | ':' | '!' | '?') {
                out.push(Token::Punct(c));
            }
        }
    }
    if !word.is_empty() {
        out.push(Token::Word(word));
    }
    out
}

/// Iterate just the lowercased words of a line, skipping punctuation.
/// Cheaper than [`tokenize`] when sentence structure is irrelevant
/// (WordCount, InvertedIndex).
pub fn words(line: &str) -> impl Iterator<Item = String> + '_ {
    WordIter {
        chars: line.chars().peekable(),
        word: String::new(),
    }
}

struct WordIter<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    word: String,
}

impl<'a> Iterator for WordIter<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        self.word.clear();
        while let Some(c) = self.chars.next() {
            if c.is_alphanumeric() {
                self.word.extend(c.to_lowercase());
            } else if (c == '\'' || c == '-')
                && !self.word.is_empty()
                && self.chars.peek().is_some_and(|n| n.is_alphanumeric())
            {
                // Internal apostrophe/hyphen stays inside the word, exactly
                // as in [`tokenize`] — both iterators must produce the same
                // word keys or applications would disagree on vocabulary.
                self.word.push(c);
            } else if !self.word.is_empty() {
                return Some(std::mem::take(&mut self.word));
            }
        }
        if self.word.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.word))
        }
    }
}

/// Split tokens into sentences at terminal punctuation (`.`, `!`, `?`).
/// Each returned slice holds the word tokens of one sentence (punctuation
/// included), which is the unit the HMM tagger decodes over.
pub fn sentences(tokens: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t, Token::Punct('.') | Token::Punct('!') | Token::Punct('?')) {
            out.push(&tokens[start..=i]);
            start = i + 1;
        }
    }
    if start < tokens.len() {
        out.push(&tokens[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        let toks = tokenize("The cat, sat.");
        assert_eq!(
            toks,
            vec![
                Token::Word("the".into()),
                Token::Word("cat".into()),
                Token::Punct(','),
                Token::Word("sat".into()),
                Token::Punct('.'),
            ]
        );
    }

    #[test]
    fn internal_apostrophes_kept() {
        let toks = tokenize("don't stop");
        assert_eq!(toks[0], Token::Word("don't".into()));
    }

    #[test]
    fn trailing_apostrophe_dropped() {
        let toks = tokenize("cats' tails");
        assert_eq!(toks[0], Token::Word("cats".into()));
    }

    #[test]
    fn words_iterator_matches_tokenizer_words() {
        let line = "Alpha, beta gamma. Delta!";
        let via_tokens: Vec<String> = tokenize(line)
            .into_iter()
            .filter_map(|t| t.as_word().map(str::to_string))
            .collect();
        let via_words: Vec<String> = words(line).collect();
        assert_eq!(via_tokens, via_words);
    }

    #[test]
    fn sentences_split_at_terminals() {
        let toks = tokenize("One two. Three four! Five");
        let sents = sentences(&toks);
        assert_eq!(sents.len(), 3);
        assert_eq!(sents[0].len(), 3); // one two .
        assert_eq!(sents[2].len(), 1); // five
    }

    #[test]
    fn empty_and_punct_only_lines() {
        assert!(tokenize("").is_empty());
        let toks = tokenize("...");
        assert_eq!(toks.len(), 3);
        assert!(sentences(&toks).len() == 3);
        assert_eq!(words("!!!").count(), 0);
    }

    #[test]
    fn unicode_words_lowercased() {
        let toks = tokenize("Äpfel Über");
        assert_eq!(toks[0], Token::Word("äpfel".into()));
        assert_eq!(toks[1], Token::Word("über".into()));
    }
}
