//! # textmr-nlp — a from-scratch POS tagger (OpenNLP substitute)
//!
//! The paper's WordPOSTag benchmark wraps Apache OpenNLP to get a
//! "computation-intensive" map function. This crate rebuilds the needed
//! pieces natively:
//!
//! * [`tokenizer`] — word/punctuation tokenization (shared with WordCount
//!   and InvertedIndex, so tokenization cost is identical across apps).
//! * [`tags`] — a 12-tag universal-style tag set ([`tags::NUM_TAGS`] counter
//!   slots per word key, as the paper describes).
//! * [`lexicon`] — closed-class lexicon + suffix-morphology emission model.
//! * [`hmm`] — bigram-HMM Viterbi tagger with optional forward–backward
//!   posterior passes (the CPU-intensity knob matching OpenNLP's cost).
//!
//! ```
//! use textmr_nlp::hmm::Tagger;
//! let tagger = Tagger::default();
//! let tagged = tagger.tag_line("The quick dog runs quickly.");
//! assert_eq!(tagged[0].0, "the");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hmm;
pub mod lexicon;
pub mod tags;
pub mod tokenizer;

pub use hmm::{Tagger, TaggerConfig};
pub use tags::{Tag, NUM_TAGS};
