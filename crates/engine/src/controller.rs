//! Extension points where the paper's optimizations plug into the engine.
//!
//! The paper stresses that frequency-buffering and spill-matcher need "only
//! small changes to the MapReduce system" and no user-code changes. The
//! engine realizes that as two narrow traits:
//!
//! * [`SpillController`] — decides the spill fraction `x` (the Hadoop
//!   `io.sort.spill.percent`) before each spill. The baseline is
//!   [`FixedSpill`] (Hadoop's static 0.8); `textmr-core`'s `SpillMatcher`
//!   adapts it per spill from observed produce/consume rates.
//! * [`EmitFilter`] — intercepts `(key, value)` pairs between the user's
//!   `map()` and the spill buffer. The baseline is no filter;
//!   `textmr-core`'s `FrequencyBuffer` absorbs frequent keys into an
//!   in-memory combining hash table.
//!
//! Both are created per map task through factory closures carried by the
//! job configuration, so node-level state (e.g. the per-node frequent-key
//! registry) lives in the closure's captures.

use crate::job::{Emit, Job};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// What the engine observed about the previous spill; input to
/// [`SpillController::next_fraction`].
#[derive(Debug, Clone, Copy)]
pub struct SpillObservation {
    /// Size of the spill segment in buffer-accounted bytes.
    pub bytes: usize,
    /// Measured time the map thread took to produce the segment (ns).
    pub produce_ns: u64,
    /// Measured time the support thread took to consume it (ns).
    pub consume_ns: u64,
    /// Spill buffer capacity M in bytes.
    pub capacity: usize,
}

impl SpillObservation {
    /// Produce rate `p` in bytes/sec.
    pub fn produce_rate(&self) -> f64 {
        self.bytes as f64 / (self.produce_ns.max(1) as f64 / 1e9)
    }

    /// Consume rate `c` in bytes/sec.
    pub fn consume_rate(&self) -> f64 {
        self.bytes as f64 / (self.consume_ns.max(1) as f64 / 1e9)
    }
}

/// Per-spill policy for the spill fraction `x ∈ (0, 1]`.
pub trait SpillController: Send {
    /// Fraction used for the first spill (no observation yet).
    fn initial_fraction(&mut self) -> f64;

    /// Fraction for the next spill given the previous spill's observation.
    fn next_fraction(&mut self, obs: &SpillObservation) -> f64;
}

/// Hadoop's default policy: a fixed spill percentage (default 0.8).
#[derive(Debug, Clone, Copy)]
pub struct FixedSpill(pub f64);

impl Default for FixedSpill {
    fn default() -> Self {
        FixedSpill(0.8)
    }
}

impl SpillController for FixedSpill {
    fn initial_fraction(&mut self) -> f64 {
        self.0
    }

    fn next_fraction(&mut self, _obs: &SpillObservation) -> f64 {
        self.0
    }
}

/// The out-of-core memory-budget policy: a *bytes-only* adaptive spill
/// trigger, the new knob beside the paper's fixed spill percentage.
///
/// State machine (see DESIGN.md §3i): the fraction starts at `initial`
/// and moves inside `[floor, ceil]`.
///
/// * **Backpressure** — the observed segment overshot its threshold by
///   more than 25 % (`bytes > fraction·capacity·5/4`, i.e. records kept
///   landing while the spill drained). The controller halves the
///   fraction toward the floor so the next spill starts earlier and the
///   buffer's headroom absorbs the overrun instead of growing.
/// * **Stability** — after 3 consecutive spills without overshoot it
///   grows the fraction by 1.25× toward the ceiling, reclaiming
///   throughput (fewer, larger spills) when pressure subsides.
///
/// Unlike `textmr-core`'s timing-driven `SpillMatcher`, this policy
/// reads **only byte counts** from the observation — never measured
/// rates — so spill boundaries stay a pure function of the input and the
/// engine's timing-free signatures remain deterministic under it (the
/// determinism doctrine in `tests/determinism.rs`).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBudget {
    /// Fraction used for the first spill.
    pub initial: f64,
    /// Lower bound on the fraction (keeps spills from degenerating).
    pub floor: f64,
    /// Upper bound on the fraction.
    pub ceil: f64,
    cur: f64,
    stable: u32,
}

impl AdaptiveBudget {
    /// Policy with the default band: start at 0.5, clamp to
    /// `[0.125, 0.9]`.
    pub fn new() -> Self {
        AdaptiveBudget {
            initial: 0.5,
            floor: 0.125,
            ceil: 0.9,
            cur: 0.5,
            stable: 0,
        }
    }
}

impl Default for AdaptiveBudget {
    fn default() -> Self {
        Self::new()
    }
}

impl SpillController for AdaptiveBudget {
    fn initial_fraction(&mut self) -> f64 {
        self.cur = self.initial.clamp(self.floor, self.ceil);
        self.cur
    }

    fn next_fraction(&mut self, obs: &SpillObservation) -> f64 {
        // Bytes-only: overshoot is measured against the threshold the
        // current fraction implied. 5/4 tolerates the record that tips
        // the buffer past the threshold plus modest drain-lag growth.
        let threshold = (self.cur * obs.capacity as f64).max(1.0);
        if obs.bytes as f64 > threshold * 1.25 {
            self.cur = (self.cur * 0.5).max(self.floor);
            self.stable = 0;
        } else {
            self.stable += 1;
            if self.stable >= 3 {
                self.cur = (self.cur * 1.25).min(self.ceil);
                self.stable = 0;
            }
        }
        self.cur
    }
}

/// Convenience: a factory for [`AdaptiveBudget`] with the default band.
pub fn adaptive_budget_factory() -> SpillControllerFactory {
    Arc::new(move |_ctx| Box::new(AdaptiveBudget::new()))
}

/// Map-side emit interceptor (frequency-buffering's hook).
///
/// `offer` sees every pair the user emits, *before* it reaches the spill
/// buffer. Returning `true` means the filter absorbed the pair (it will
/// surface later, combined, through `sink` — either on overflow or in
/// [`EmitFilter::finish`]). Returning `false` sends the pair down the
/// normal spill path. Every absorbed pair's aggregate must eventually be
/// emitted to `sink`, or output would be lost.
pub trait EmitFilter: Send {
    /// Offer one emitted pair. The time spent here is accounted as `emit`
    /// overhead, matching the paper's treatment of profiling/hashing cost.
    fn offer(&mut self, key: &[u8], value: &[u8], sink: &mut dyn Emit) -> bool;

    /// Called once per map *input* record, before its `map()` runs. The
    /// paper's sampling fraction `s` is defined over input records
    /// (Sec. III-B), so stage transitions key off this count.
    fn on_input_record(&mut self) {}

    /// End of map input: drain all buffered state into `sink`.
    fn finish(&mut self, sink: &mut dyn Emit);

    /// Number of pairs absorbed so far (for profiles; Fig. 7's removed
    /// records derive from this).
    fn absorbed(&self) -> u64 {
        0
    }

    /// Whether the filter will actually do anything for this job. A filter
    /// that disabled itself (e.g. frequency-buffering on a combinerless
    /// job) returns `false`, and the engine reclaims its memory carve-out
    /// for the spill buffer instead of paying for an inert table.
    fn is_active(&self) -> bool {
        true
    }

    /// Drain the nanoseconds this filter spent inside the *user's*
    /// `combine()` since the last call. The engine re-attributes that time
    /// from the `emit` operation to `combine` so profiles keep the paper's
    /// user-code/framework split.
    fn take_user_combine_ns(&mut self) -> u64 {
        0
    }
}

/// Identity of a map task, handed to factories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskCtx {
    /// Node index the task runs on.
    pub node: usize,
    /// Task index within the job.
    pub task: usize,
}

/// Context available when constructing an [`EmitFilter`] for a map task.
pub struct FilterCtx {
    /// Task identity.
    pub task: TaskCtx,
    /// The job, for calling its `combine()` from inside the filter.
    pub job: Arc<dyn Job>,
    /// Memory budget (bytes) carved out of the spill buffer for the filter.
    pub budget_bytes: usize,
    /// Estimated number of map-input records for this task (drives
    /// profiling-stage sizing).
    pub estimated_records: u64,
    /// Lowest task id scheduled on this task's node — the *designated
    /// publisher* for node-level shared state (the frequent-key registry).
    /// Derived from the split plan, so it is identical at any worker-thread
    /// count; a task for which `task.task == node_first_task` publishes,
    /// everyone else consumes.
    pub node_first_task: usize,
    /// Job-wide cancellation flag (set when any task dooms the job). A
    /// filter blocking on a node-level outcome must poll this so a doomed
    /// job drains instead of deadlocking.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Factory producing a fresh controller per map task.
pub type SpillControllerFactory = Arc<dyn Fn(TaskCtx) -> Box<dyn SpillController> + Send + Sync>;

/// Factory producing a fresh emit filter per map task.
pub type EmitFilterFactory = Arc<dyn Fn(FilterCtx) -> Box<dyn EmitFilter> + Send + Sync>;

/// Convenience: a factory for [`FixedSpill`].
pub fn fixed_spill_factory(fraction: f64) -> SpillControllerFactory {
    Arc::new(move |_ctx| Box::new(FixedSpill(fraction)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_spill_never_adapts() {
        let mut c = FixedSpill(0.8);
        assert_eq!(c.initial_fraction(), 0.8);
        let obs = SpillObservation {
            bytes: 100,
            produce_ns: 10,
            consume_ns: 90,
            capacity: 1000,
        };
        assert_eq!(c.next_fraction(&obs), 0.8);
    }

    #[test]
    fn observation_rates() {
        let obs = SpillObservation {
            bytes: 1_000_000,
            produce_ns: 1_000_000_000, // 1 s
            consume_ns: 500_000_000,   // 0.5 s
            capacity: 10_000_000,
        };
        assert!((obs.produce_rate() - 1e6).abs() < 1.0);
        assert!((obs.consume_rate() - 2e6).abs() < 1.0);
    }

    #[test]
    fn adaptive_budget_backs_off_and_recovers() {
        let mut c = AdaptiveBudget::new();
        assert_eq!(c.initial_fraction(), 0.5);
        let cap = 1000;
        let over = SpillObservation {
            bytes: 700, // > 0.5 * 1000 * 1.25
            produce_ns: 0,
            consume_ns: 0,
            capacity: cap,
        };
        assert_eq!(c.next_fraction(&over), 0.25);
        // Keep overshooting: halves to the floor and stays there.
        let over2 = SpillObservation { bytes: 400, ..over };
        assert_eq!(c.next_fraction(&over2), 0.125);
        assert_eq!(c.next_fraction(&over2), 0.125);
        // Three calm spills grow the fraction back by 1.25×.
        let calm = SpillObservation { bytes: 100, ..over };
        c.next_fraction(&calm);
        c.next_fraction(&calm);
        let grown = c.next_fraction(&calm);
        assert!((grown - 0.15625).abs() < 1e-9);
    }

    #[test]
    fn adaptive_budget_ignores_timing() {
        // Identical byte sequences must produce identical fractions no
        // matter what the measured rates were — the determinism contract.
        let mut a = AdaptiveBudget::new();
        let mut b = AdaptiveBudget::new();
        a.initial_fraction();
        b.initial_fraction();
        for (i, &bytes) in [700usize, 100, 200, 90, 800, 50].iter().enumerate() {
            let fast = SpillObservation {
                bytes,
                produce_ns: 1,
                consume_ns: 1,
                capacity: 1000,
            };
            let slow = SpillObservation {
                bytes,
                produce_ns: 1_000_000_000 * (i as u64 + 1),
                consume_ns: 77_000_000,
                capacity: 1000,
            };
            assert_eq!(a.next_fraction(&fast), b.next_fraction(&slow));
        }
    }

    #[test]
    fn factory_produces_independent_controllers() {
        let f = fixed_spill_factory(0.5);
        let mut a = f(TaskCtx { node: 0, task: 0 });
        let mut b = f(TaskCtx { node: 1, task: 1 });
        assert_eq!(a.initial_fraction(), 0.5);
        assert_eq!(b.initial_fraction(), 0.5);
    }
}
