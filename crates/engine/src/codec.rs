//! Record serialization: varint framing and order-preserving scalar codecs.
//!
//! The engine stores intermediate records as raw bytes (Hadoop-style): keys
//! are compared with a byte-level comparator during sort/merge, so key
//! encodings must be *order-preserving* if the job relies on sorted output.
//! This module provides:
//!
//! * LEB128 varint encode/decode for length framing (spill files, map
//!   outputs, value lists);
//! * big-endian scalar codecs (`u64`, `i64`) whose byte order equals
//!   numeric order;
//! * an order-preserving `f64` encoding (sign-flipped IEEE-754 trick);
//! * helpers to frame/unframe `(key, value)` records.

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Decode a LEB128 varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncated or overlong (> 10 byte) input.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // overflow
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Number of bytes [`write_varint`] will use for `v`.
#[inline]
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Append a length-prefixed byte slice.
#[inline]
pub fn write_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    write_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Read a length-prefixed byte slice, advancing `pos`.
#[inline]
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let out = &buf[*pos..end];
    *pos = end;
    Some(out)
}

/// Append a framed `(key, value)` record.
#[inline]
pub fn write_record(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    write_bytes(buf, key);
    write_bytes(buf, value);
}

/// Read a framed `(key, value)` record, advancing `pos`.
#[inline]
pub fn read_record<'a>(buf: &'a [u8], pos: &mut usize) -> Option<(&'a [u8], &'a [u8])> {
    let k = read_bytes(buf, pos)?;
    let v = read_bytes(buf, pos)?;
    Some((k, v))
}

/// Serialized size of a framed record.
#[inline]
pub fn record_len(key_len: usize, val_len: usize) -> usize {
    varint_len(key_len as u64) + key_len + varint_len(val_len as u64) + val_len
}

// ---------------------------------------------------------------------------
// Order-preserving scalar codecs.
// ---------------------------------------------------------------------------

/// Encode `u64` big-endian (bytewise order == numeric order).
#[inline]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decode a big-endian `u64`; `None` if `b` is not exactly 8 bytes.
#[inline]
pub fn decode_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(b.try_into().ok()?))
}

/// Encode `i64` order-preserving (offset-binary big-endian).
#[inline]
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decode an order-preserving `i64`.
#[inline]
pub fn decode_i64(b: &[u8]) -> Option<i64> {
    let u = u64::from_be_bytes(b.try_into().ok()?);
    Some((u ^ (1u64 << 63)) as i64)
}

/// Encode `f64` order-preserving: flip the sign bit for positives, flip all
/// bits for negatives. Total order matches IEEE-754 ordering (NaNs sort
/// high/low by sign bit; the engine never generates NaN keys).
#[inline]
pub fn encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits & (1 << 63) == 0 {
        bits ^ (1 << 63)
    } else {
        !bits
    };
    flipped.to_be_bytes()
}

/// Decode an order-preserving `f64`.
#[inline]
pub fn decode_f64(b: &[u8]) -> Option<f64> {
    let u = u64::from_be_bytes(b.try_into().ok()?);
    let bits = if u & (1 << 63) != 0 {
        u ^ (1 << 63)
    } else {
        !u
    };
    Some(f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_len() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len mismatch for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncated() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"key", b"value");
        write_record(&mut buf, b"", b"v2");
        assert_eq!(buf.len(), record_len(3, 5) + record_len(0, 2));
        let mut pos = 0;
        assert_eq!(
            read_record(&buf, &mut pos),
            Some((&b"key"[..], &b"value"[..]))
        );
        assert_eq!(read_record(&buf, &mut pos), Some((&b""[..], &b"v2"[..])));
        assert_eq!(read_record(&buf, &mut pos), None);
    }

    #[test]
    fn read_bytes_rejects_overlong_length() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos), None);
    }

    #[test]
    fn u64_order_preserved() {
        let vals = [0u64, 1, 255, 256, 1 << 40, u64::MAX];
        for a in vals {
            for b in vals {
                assert_eq!(encode_u64(a).cmp(&encode_u64(b)), a.cmp(&b));
                assert_eq!(decode_u64(&encode_u64(a)), Some(a));
            }
        }
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for a in vals {
            for b in vals {
                assert_eq!(encode_i64(a).cmp(&encode_i64(b)), a.cmp(&b));
                assert_eq!(decode_i64(&encode_i64(a)), Some(a));
            }
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [-1e300, -2.5, -0.0, 0.0, 1e-9, 2.75, 1e300];
        for a in vals {
            for b in vals {
                let byte_cmp = encode_f64(a).cmp(&encode_f64(b));
                let num_cmp = a.partial_cmp(&b).unwrap();
                // -0.0 == 0.0 numerically but encodes differently; accept
                // either order for equal values.
                if a != b {
                    assert_eq!(byte_cmp, num_cmp, "a={a} b={b}");
                }
                assert_eq!(decode_f64(&encode_f64(a)), Some(a));
            }
        }
    }

    #[test]
    fn decode_wrong_width_is_none() {
        assert_eq!(decode_u64(b"1234567"), None);
        assert_eq!(decode_i64(b"123456789"), None);
        assert_eq!(decode_f64(b""), None);
    }
}
