//! Map-output caching across jobs.
//!
//! `textmr-serve` admits repeated jobs over the same corpus; when a map
//! task's `(split, map_fn, config)` key was computed before, re-running it
//! buys nothing. This module defines the engine-side hook: a
//! [`MapOutputCache`] installed via [`MapCacheConfig`] on
//! [`JobConfig`] is consulted once per map
//! task, before the attempt loop. A hit skips execution entirely — the
//! cached partition blobs are rematerialized into the attempt's fresh
//! spill directory (a [`SpillFile`] deletes its backing file on drop, so
//! cached outputs live in memory as raw partition bytes) and the attempt
//! is charged a flat deterministic virtual lookup cost instead of its
//! map-pipeline duration. A miss runs the task as usual; the driver
//! offers the finished output back to the cache *sequentially in task-id
//! order* after the parallel map wave, so the cache's internal queue
//! state — and therefore the hit/miss sequence of every later job — is a
//! deterministic function of the job sequence, never of worker-pool
//! timing.
//!
//! The engine knows nothing about eviction: policy (the S3-FIFO
//! small/main/ghost rotation, byte budgets) lives in the `textmr-serve`
//! crate behind the trait. Keys are opaque strings; the engine composes
//! them from the caller's prefix (which must encode the map function and
//! every config knob that changes map output: reducer count, combiner,
//! filter, compression) plus the round, task id, and a content digest of
//! the split, so two jobs share an entry only when their map work is
//! byte-identical.

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::cluster::JobConfig;
use crate::io::input::InputSplit;
use crate::io::spill_file::SpillFile;
use crate::metrics::{Op, TaskProfile, VNanos};
use crate::task::map_task::MapOutput;
use crate::trace::{IdleKind, LaneBuilder, LaneRole, SpanKind, TaskTrace};

/// One partition of a cached map output: the raw (possibly compressed)
/// bytes exactly as the spill file stored them, plus the record count the
/// partition index carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedPartition {
    /// Partition (reducer) index.
    pub part: usize,
    /// Raw partition bytes (compressed iff the output was compressed).
    pub bytes: Vec<u8>,
    /// Records in the partition.
    pub records: u64,
}

/// A complete cached map output: everything needed to rematerialize the
/// attempt's spill file and reconstruct a truthful (data-side) profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedMapOutput {
    /// Partition blobs in ascending partition order.
    pub partitions: Vec<CachedPartition>,
    /// Whether the partition bytes are block-compressed.
    pub compressed: bool,
    /// Whether the original output's partitions were framed runs.
    pub framed: bool,
    /// Input records the original run consumed.
    pub input_records: u64,
    /// Records the original run emitted (before combining).
    pub emitted_records: u64,
    /// Records the original run's frequency buffer absorbed.
    pub freq_absorbed_records: u64,
    /// Final output bytes of the original run.
    pub output_bytes: u64,
}

impl CachedMapOutput {
    /// Capture a finished map task's output for caching: read every
    /// partition back out of the spill file while it still exists.
    pub fn capture(out: &MapOutput, prof: &TaskProfile) -> io::Result<CachedMapOutput> {
        let mut partitions = Vec::with_capacity(out.file.index().len());
        for pi in out.file.index() {
            partitions.push(CachedPartition {
                part: pi.part,
                bytes: out.file.read_partition(pi.part)?,
                records: pi.records,
            });
        }
        Ok(CachedMapOutput {
            partitions,
            compressed: out.compressed,
            framed: out.framed,
            input_records: prof.input_records,
            emitted_records: prof.emitted_records,
            freq_absorbed_records: prof.freq_absorbed_records,
            output_bytes: prof.output_bytes,
        })
    }

    /// Total payload bytes — what a byte-budgeted cache charges the entry.
    pub fn payload_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes.len() as u64).sum()
    }

    /// Rematerialize the cached output as a fresh spill file at `path` and
    /// build the hit's profile: the attempt's virtual duration is the flat
    /// `lookup_cost_ns` (shown on the map lane as a single read span when
    /// tracing, so the trace ↔ metrics invariants hold), while the
    /// data-side counters replay the original run's.
    pub fn materialize(
        &self,
        path: &Path,
        node: usize,
        lookup_cost_ns: VNanos,
        trace: bool,
    ) -> io::Result<(MapOutput, TaskProfile)> {
        let cost = lookup_cost_ns.max(1);
        let mut w = SpillFile::create(path.to_path_buf())?;
        for p in &self.partitions {
            w.write_raw_partition(p.part, &p.bytes, p.records)?;
        }
        let file = w.finish()?;
        let mut prof = TaskProfile {
            virtual_duration: cost,
            input_records: self.input_records,
            emitted_records: self.emitted_records,
            freq_absorbed_records: self.freq_absorbed_records,
            output_bytes: self.output_bytes,
            ..TaskProfile::default()
        };
        prof.ops.add_nanos(Op::Read, cost);
        if trace {
            let mut map = LaneBuilder::new(LaneRole::Map);
            map.push(cost, SpanKind::Op(Op::Read));
            let mut support = LaneBuilder::new(LaneRole::Support);
            support.pad_to(cost, IdleKind::Done);
            prof.trace = Some(Box::new(TaskTrace {
                lanes: vec![map.finish(), support.finish()],
            }));
        }
        Ok((
            MapOutput {
                file,
                node,
                compressed: self.compressed,
                framed: self.framed,
            },
            prof,
        ))
    }
}

/// The pluggable cache itself. Implementations must be thread-safe: `get`
/// is called from the parallel map wave (at most once per key per job, so
/// per-key state updates commute), while `put` is only ever called from
/// the driver thread, sequentially in task-id order.
pub trait MapOutputCache: Send + Sync {
    /// Look up `key`, returning the cached output on a hit.
    fn get(&self, key: &str) -> Option<Arc<CachedMapOutput>>;

    /// Offer a freshly computed output. Implementations decide admission
    /// and eviction; re-offering a resident key must be a no-op.
    fn put(&self, key: &str, value: Arc<CachedMapOutput>);
}

/// Cache installation on a [`JobConfig`].
#[derive(Clone)]
pub struct MapCacheConfig {
    /// The shared cache.
    pub cache: Arc<dyn MapOutputCache>,
    /// Caller-chosen prefix encoding the map function and every
    /// output-affecting config knob; the engine appends round, task, and
    /// split digest.
    pub key_prefix: String,
    /// Flat deterministic virtual cost charged per hit.
    pub lookup_cost_ns: VNanos,
}

impl std::fmt::Debug for MapCacheConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapCacheConfig")
            .field("key_prefix", &self.key_prefix)
            .field("lookup_cost_ns", &self.lookup_cost_ns)
            .finish_non_exhaustive()
    }
}

impl JobConfig {
    /// Convenience: install a map-output cache.
    pub fn with_map_cache(mut self, cache: MapCacheConfig) -> Self {
        self.map_cache = Some(cache);
        self
    }
}

/// Content digest of a split: FNV-1a over the split's byte range plus its
/// framing and source tags (the home node is placement, not content — two
/// replicas of the same block must share a cache entry). Disk-backed
/// splits are digested through a bounded chunk window, never
/// materialized; identical content digests identically on either backing.
pub fn split_digest(split: &InputSplit) -> u64 {
    // Seed with the FNV offset basis, then stream the range.
    let mut h = split.digest_content(0xcbf2_9ce4_8422_2325);
    h ^= u64::from(split.source) | (u64::from(split.framed) << 8);
    h.wrapping_mul(0x100_0000_01b3)
}

/// The full cache key for one map task.
pub fn map_cache_key(prefix: &str, round: usize, task: usize, split: &InputSplit) -> String {
    format!("{prefix}|rd{round}|t{task}|s{:016x}", split_digest(split))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(bytes: &[u8]) -> InputSplit {
        InputSplit {
            data: crate::io::input::SplitBytes::Mem(Arc::new(bytes.to_vec())),
            start: 0,
            end: bytes.len(),
            home_node: 0,
            source: 0,
            framed: false,
        }
    }

    #[test]
    fn digest_tracks_content_not_placement() {
        let a = split(b"hello world\n");
        let mut b = split(b"hello world\n");
        b.home_node = 3;
        assert_eq!(split_digest(&a), split_digest(&b));
        let c = split(b"hello there\n");
        assert_ne!(split_digest(&a), split_digest(&c));
        let mut d = split(b"hello world\n");
        d.framed = true;
        assert_ne!(split_digest(&a), split_digest(&d));
    }

    #[test]
    fn materialized_output_round_trips_partitions() {
        let cached = CachedMapOutput {
            partitions: vec![
                CachedPartition {
                    part: 0,
                    bytes: b"aaaa".to_vec(),
                    records: 2,
                },
                CachedPartition {
                    part: 2,
                    bytes: b"cc".to_vec(),
                    records: 1,
                },
            ],
            compressed: false,
            framed: false,
            input_records: 10,
            emitted_records: 12,
            freq_absorbed_records: 0,
            output_bytes: 6,
        };
        assert_eq!(cached.payload_bytes(), 6);
        let dir = std::env::temp_dir().join(format!("textmr-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (out, prof) = cached
            .materialize(&dir.join("m.spill"), 1, 500, true)
            .unwrap();
        assert_eq!(out.node, 1);
        assert_eq!(out.file.read_partition(0).unwrap(), b"aaaa");
        assert_eq!(out.file.read_partition(1).unwrap(), b"");
        assert_eq!(out.file.read_partition(2).unwrap(), b"cc");
        assert_eq!(prof.virtual_duration, 500);
        assert_eq!(prof.ops.get(Op::Read), 500);
        assert_eq!(prof.input_records, 10);
        let t = prof.trace.as_ref().unwrap();
        t.check_tiles(500).unwrap();
        drop(out);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
