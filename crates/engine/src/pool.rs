//! Bounded scoped-thread execution of indexed work items.
//!
//! Shared by the job driver (map attempts, reduce tasks — see [`crate::cluster`])
//! and the shuffle fetcher pool ([`crate::shuffle`]). The contract both rely
//! on: results come back **by item index**, never by completion order, so a
//! pooled run is observably identical to a sequential loop.
//!
//! The pool deliberately records nothing into the virtual-time tracer
//! ([`crate::trace`]): which OS thread runs which item is real-machine
//! nondeterminism, while every trace lane lives in deterministic virtual
//! time. Traces therefore look identical at any `worker_threads` setting.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `count` indexed work items on `workers` threads and collect the
/// results **by item index**, not completion order, so callers observe the
/// same ordering a sequential loop would produce.
///
/// With `workers <= 1` the items run inline on the caller's thread (no pool,
/// no atomics on the hot path) — this is the bit-for-bit legacy execution
/// mode. Otherwise scoped threads claim indices from a shared counter; each
/// worker batches its `(index, result)` pairs locally and the driver merges
/// them after joining, so no locks are held while tasks run. A panicking
/// worker propagates its panic to the caller at join time.
///
/// Indices are claimed in ascending order: item `i` is always claimed no
/// later than item `j > i`. Work that waits on an outcome produced by a
/// lower-indexed item (e.g. the frequent-key registry's designated
/// publisher) relies on this to stay deadlock-free.
pub fn run_indexed<R, F>(workers: usize, count: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || count <= 1 {
        return (0..count).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(count))
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, work(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_pooled_agree() {
        let work = |i: usize| i * i;
        let seq = run_indexed(1, 37, work);
        for workers in [2, 4, 16] {
            assert_eq!(run_indexed(workers, 37, work), seq);
        }
    }

    #[test]
    fn empty_and_single_item_runs_inline() {
        assert!(run_indexed(8, 0, |i| i).is_empty());
        assert_eq!(run_indexed(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }
}
