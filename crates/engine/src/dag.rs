//! Round-generic DAG executor.
//!
//! A [`JobDag`] plan (see [`crate::job`]) runs as a sequence of
//! map→shuffle→reduce rounds on **one** unified event-loop scheduler, so
//! virtual time is continuous across rounds: round `k+1`'s slots free no
//! earlier than round `k`'s makespan, a `RoundBoundary` event enters the
//! event graph with every prior attempt as an enabling predecessor, and
//! the whole DAG renders as one Perfetto timeline with per-round lanes.
//!
//! Cross-round data flows as a *typed hand-off*: a producing stage's
//! reduce partition `p` is framed with the [`crate::codec`] record framing
//! into one [`InputSplit`] (see [`InputSplit::from_pairs`]) that becomes
//! map task `p` of the consuming stage, homed on the node that reduced it.
//! Keys and values never round-trip through a text codec, so a stage's map
//! sees exactly the bytes its predecessor's reduce emitted.
//!
//! A single-stage DAG is the legacy pipeline bit for bit: round 0 places
//! the same task ids on a fresh scheduler, never emits a round boundary,
//! and its trace exports byte-identically to [`run_job`]'s
//! (`tests/dag_determinism.rs` pins this against the shipped figures).
//!
//! [`run_job`]: crate::cluster::run_job

use crate::cluster::{
    assemble_trace_edges, intra_entry_edges, new_scheduler, run_round, ClusterConfig, EntryMeta,
    JobConfig, RegistryAssignment, RoundCtx, RoundRun,
};
use crate::event::Scheduler;
use crate::io::dfs::SimDfs;
use crate::io::input::InputSplit;
use crate::job::{Job, JobDag, StageInput};
use crate::metrics::{DagProfile, JobProfile};
use crate::trace::stream::TraceStreamWriter;
use crate::trace::{EdgeEnd, EdgeKind, JobTrace, TaskKind, TraceEdge, TraceEntry};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// One stage's final `(key, value)` pairs, per partition.
pub type StageOutputs = Vec<Vec<(Vec<u8>, Vec<u8>)>>;

/// Removes the DAG job's temp directory on every exit path.
struct OwnedTempGuard(PathBuf);

impl Drop for OwnedTempGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A completed DAG job.
#[derive(Debug)]
pub struct DagRun {
    /// The final stage's `(key, value)` pairs, per partition, key-sorted.
    pub outputs: StageOutputs,
    /// Per-round profiles plus the cumulative makespan.
    pub profile: DagProfile,
    /// One whole-DAG virtual-time trace (per-round lanes, cross-round
    /// hand-off edges); `Some` iff the stages ran with tracing on.
    pub trace: Option<JobTrace>,
}

impl DagRun {
    /// Flatten the final stage's partitions into one key-sorted list.
    pub fn sorted_pairs(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<_> = self.outputs.iter().flatten().cloned().collect();
        all.sort();
        all
    }
}

/// Incremental round-by-round executor.
///
/// [`run_dag`] drives it over a static plan; iterative drivers (PageRank
/// to convergence) instead call [`DagExecutor::run_stage`] in a loop,
/// inspect [`DagExecutor::last_outputs`] after each round, and stop when
/// their own convergence test is met.
pub struct DagExecutor<'c> {
    cluster: &'c ClusterConfig,
    temp: OwnedTempGuard,
    vsched: Option<Scheduler>,
    /// Straggler factors the shared scheduler was built with (stage 0's).
    factors: Vec<u64>,
    trace: bool,
    /// Streamed-export destination (stage 0's `trace_stream`), if any.
    trace_stream: Option<PathBuf>,
    /// Open spool when streaming: entries retire to disk round by round.
    stream: Option<TraceStreamWriter>,
    map_bases: Vec<usize>,
    reduce_bases: Vec<usize>,
    next_map_base: usize,
    next_reduce_base: usize,
    /// Full entries (batch export only; empty when streaming).
    entries: Vec<TraceEntry>,
    /// Edge-relevant metadata of every entry, both export routes.
    metas: Vec<EntryMeta>,
    /// Intra-entry edges extracted as each round retires (see
    /// [`intra_entry_edges`]); they index [`DagExecutor::metas`].
    spill_edges: Vec<TraceEdge>,
    barrier_edges: Vec<TraceEdge>,
    registries: Vec<Option<RegistryAssignment>>,
    profiles: Vec<JobProfile>,
    outputs: Vec<StageOutputs>,
    /// Per round: the producing round of its typed hand-off, if any.
    handoffs: Vec<Option<usize>>,
}

impl<'c> DagExecutor<'c> {
    /// A fresh executor on `cluster`. The scheduler is created by the
    /// first [`DagExecutor::run_stage`] call (from that stage's config).
    pub fn new(cluster: &'c ClusterConfig) -> io::Result<DagExecutor<'c>> {
        let temp = OwnedTempGuard(cluster.resolve_temp_dir()?);
        Ok(DagExecutor {
            cluster,
            temp,
            vsched: None,
            factors: Vec::new(),
            trace: false,
            trace_stream: None,
            stream: None,
            map_bases: Vec::new(),
            reduce_bases: Vec::new(),
            next_map_base: 0,
            next_reduce_base: 0,
            entries: Vec::new(),
            metas: Vec::new(),
            spill_edges: Vec::new(),
            barrier_edges: Vec::new(),
            registries: Vec::new(),
            profiles: Vec::new(),
            outputs: Vec::new(),
            handoffs: Vec::new(),
        })
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.profiles.len()
    }

    /// Round `r`'s outputs, per partition.
    pub fn outputs(&self, round: usize) -> &StageOutputs {
        &self.outputs[round]
    }

    /// The most recent round's outputs (panics before the first round).
    pub fn last_outputs(&self) -> &StageOutputs {
        self.outputs.last().expect("no round has run")
    }

    /// Round `r`'s profile.
    pub fn profile(&self, round: usize) -> &JobProfile {
        &self.profiles[round]
    }

    /// Execute one stage as the next round. Returns the round index.
    ///
    /// `dfs` serves [`StageInput::Dfs`] stages; `Prior` stages read the
    /// named earlier round's in-memory outputs through the typed framed
    /// hand-off instead.
    pub fn run_stage(
        &mut self,
        job: Arc<dyn Job>,
        cfg: &JobConfig,
        input: &StageInput,
        dfs: &SimDfs,
    ) -> io::Result<usize> {
        let round = self.profiles.len();
        // ---- build the round's splits -------------------------------------
        let (splits, handoff) = match input {
            StageInput::Dfs(names) => {
                let mut splits: Vec<InputSplit> = Vec::new();
                for (name, source) in names {
                    let file = dfs.get(name).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, format!("no DFS file {name}"))
                    })?;
                    splits.extend(InputSplit::from_file(file, *source));
                }
                (splits, None)
            }
            StageInput::Prior { stage, source } => {
                if *stage >= round {
                    return Err(io::Error::other(format!(
                        "round {round} consumes non-prior round {stage}"
                    )));
                }
                // One framed split per partition — even an empty one — so
                // map task p of this round IS partition p of the producer,
                // which keeps the hand-off edges and determinism sweeps
                // index-stable.
                let spans = &self.profiles[*stage].reduce_spans;
                let splits = self.outputs[*stage]
                    .iter()
                    .enumerate()
                    .map(|(p, pairs)| InputSplit::from_pairs(pairs, spans[p].node, *source))
                    .collect();
                (splits, Some(*stage))
            }
        };
        // ---- shared-scheduler bookkeeping ---------------------------------
        let factors: Vec<u64> = (0..self.cluster.nodes)
            .map(|n| cfg.fault_plan.node_factor(n))
            .collect();
        let vsched = match self.vsched.as_mut() {
            None => {
                self.factors = factors;
                self.trace = cfg.trace;
                self.trace_stream = cfg.trace_stream.clone();
                if let (true, Some(path)) = (cfg.trace, &self.trace_stream) {
                    // Streamed export: open the spool up front; each
                    // round's entries retire to disk and never accumulate.
                    self.stream = Some(TraceStreamWriter::create(
                        path.clone(),
                        self.cluster.nodes,
                        self.cluster.map_slots_per_node.max(1),
                        self.cluster.reduce_slots_per_node.max(1),
                        self.cluster
                            .shuffle_fetchers
                            .clamp(1, crate::shuffle::MAX_FETCHERS),
                    )?);
                }
                self.vsched.get_or_insert(new_scheduler(self.cluster, cfg))
            }
            Some(s) => {
                // One scheduler spans every round: node speeds, the trace
                // flag, and the stream destination cannot change mid-DAG.
                assert_eq!(
                    factors, self.factors,
                    "stage {round} changes straggler factors mid-DAG"
                );
                assert_eq!(
                    cfg.trace, self.trace,
                    "stage {round} disagrees on tracing mid-DAG"
                );
                assert_eq!(
                    cfg.trace_stream, self.trace_stream,
                    "stage {round} disagrees on trace streaming mid-DAG"
                );
                s
            }
        };
        if round > 0 {
            // BSP barrier: the new round starts no earlier than the
            // previous round's makespan; the boundary event enters the
            // graph with every prior attempt as a predecessor.
            let origin = self.profiles[round - 1].wall;
            vsched.begin_round(round, origin);
        }
        let run = run_round(
            self.cluster,
            cfg,
            job,
            &splits,
            RoundCtx {
                round,
                map_task_base: self.next_map_base,
                reduce_task_base: self.next_reduce_base,
                vsched,
                temp: &self.temp.0,
            },
        )?;
        let RoundRun {
            outputs,
            profile,
            entries,
            registry,
        } = run;
        self.map_bases.push(self.next_map_base);
        self.reduce_bases.push(self.next_reduce_base);
        self.next_map_base += splits.len();
        self.next_reduce_base += cfg.num_reducers;
        // Retire the round's entries: extract the edge-relevant metadata
        // and intra-entry edges, then either spool the entry to disk
        // (streaming) or keep it for the batch export.
        for e in entries {
            let i = self.metas.len();
            self.metas.push(EntryMeta::of(&e));
            let (s, b) = intra_entry_edges(i, &e);
            self.spill_edges.extend(s);
            self.barrier_edges.extend(b);
            match self.stream.as_mut() {
                Some(w) => w.push_entry(&e)?,
                None => self.entries.push(e),
            }
        }
        self.registries.push(registry);
        self.profiles.push(profile);
        self.outputs.push(outputs);
        self.handoffs.push(handoff);
        Ok(round)
    }

    /// Assemble the completed DAG: final outputs, per-round profiles, and
    /// (when tracing) one whole-DAG trace whose edges include the
    /// cross-round hand-offs ([`EdgeKind::Round`]). With
    /// [`JobConfig::trace_stream`] set, the trace was already spooled to
    /// disk round by round; this finalises the file (byte-identical to the
    /// batch export) and [`DagRun::trace`] is `None`.
    pub fn finish(self) -> io::Result<DagRun> {
        let wall = self.profiles.last().map(|p| p.wall).unwrap_or(0);
        let trace = match (self.trace, self.vsched.as_ref()) {
            (true, Some(vsched)) => {
                let mut edges = assemble_trace_edges(
                    &self.metas,
                    vsched,
                    &self.registries,
                    &self.map_bases,
                    &self.reduce_bases,
                    self.spill_edges,
                    self.barrier_edges,
                );
                edges.extend(handoff_edges(&self.metas, &self.handoffs));
                let twall = self
                    .metas
                    .iter()
                    .map(|m| m.end)
                    .max()
                    .unwrap_or(0)
                    .max(wall);
                match self.stream {
                    Some(w) => {
                        w.finish(twall, &edges)?;
                        None
                    }
                    None => Some(JobTrace {
                        nodes: self.cluster.nodes,
                        map_slots: self.cluster.map_slots_per_node.max(1),
                        reduce_slots: self.cluster.reduce_slots_per_node.max(1),
                        fetchers: self
                            .cluster
                            .shuffle_fetchers
                            .clamp(1, crate::shuffle::MAX_FETCHERS),
                        wall: twall,
                        edges,
                        entries: self.entries,
                    }),
                }
            }
            _ => None,
        };
        Ok(DagRun {
            outputs: self.outputs.into_iter().last().unwrap_or_default(),
            profile: DagProfile {
                rounds: self.profiles,
                wall,
            },
            trace,
        })
    }
}

/// Cross-round hand-off edges: the producing round's of-record reduce
/// attempt for partition `p` happens before the consuming round's first
/// map attempt of task `p` (later attempts are already chained to the
/// first by retry edges). Works off entry metadata alone, so the streamed
/// route computes identical edges without the entries resident.
fn handoff_edges(metas: &[EntryMeta], handoffs: &[Option<usize>]) -> Vec<TraceEdge> {
    let mut edges = Vec::new();
    for (round, parent) in handoffs.iter().enumerate() {
        let Some(parent) = parent else {
            continue;
        };
        for (i, m) in metas.iter().enumerate() {
            let (kind, r, task, attempt, backup) = m.handoff_key();
            if r != round || kind != TaskKind::Map || attempt != 0 || backup {
                continue;
            }
            // The of-record producer: the attempt carrying detailed lanes
            // (a winning backup owns them; otherwise the final attempt).
            let src = metas.iter().position(|s| {
                let (sk, sr, st, _, _) = s.handoff_key();
                sr == *parent && sk == TaskKind::Reduce && st == task && s.is_record
            });
            if let Some(si) = src {
                edges.push(TraceEdge {
                    kind: EdgeKind::Round,
                    src: EdgeEnd::entry(si),
                    dst: EdgeEnd::entry(i),
                });
            }
        }
    }
    edges
}

/// Run a whole [`JobDag`] plan, one stage per round.
pub fn run_dag(cluster: &ClusterConfig, dag: &JobDag, dfs: &SimDfs) -> io::Result<DagRun> {
    dag.validate().map_err(io::Error::other)?;
    let mut ex = DagExecutor::new(cluster)?;
    for stage in &dag.stages {
        ex.run_stage(Arc::clone(&stage.job), &stage.cfg, &stage.input, dfs)?;
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_job;
    use crate::codec::{decode_u64, encode_u64};
    use crate::job::{Emit, Record, ValueCursor, ValueSink};

    /// Stage 0: classic word sum over text lines.
    struct WordSum;
    impl Job for WordSum {
        fn name(&self) -> &str {
            "wordsum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                e.emit(w, &encode_u64(1));
            }
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    /// A later stage: consumes framed `(word, count)` pairs untouched and
    /// re-aggregates — totals must survive any number of chained rounds.
    struct Resum;
    impl Job for Resum {
        fn name(&self) -> &str {
            "resum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            e.emit(r.key, r.value);
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    fn corpus(lines: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        for i in 0..lines {
            buf.extend_from_slice(format!("w{} common filler\n", i % 23).as_bytes());
        }
        buf
    }

    fn dfs_with_corpus(cluster: &ClusterConfig) -> SimDfs {
        let mut dfs = SimDfs::new(cluster.nodes, 4096);
        dfs.put("corpus", corpus(300));
        dfs
    }

    #[test]
    fn single_stage_dag_replays_run_job_bit_identically() {
        let cluster = ClusterConfig::local();
        let dfs = dfs_with_corpus(&cluster);
        let cfg = JobConfig::default().with_trace();
        let legacy = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("corpus", 0)]).unwrap();
        let dag = JobDag::new().stage(Arc::new(WordSum), cfg, StageInput::dfs("corpus"));
        let run = run_dag(&cluster, &dag, &dfs).unwrap();
        // Byte-identical data and timing-free signatures. (Virtual
        // durations are measured from real execution, so wall times and
        // slot picks legitimately differ between any two runs — the
        // placement recurrence itself is pinned against the shipped
        // figures in tests/dag_determinism.rs.)
        assert_eq!(run.outputs, legacy.outputs);
        assert_eq!(run.profile.rounds.len(), 1);
        assert_eq!(
            run.profile.rounds[0].signature(),
            legacy.profile.signature()
        );
        // The trace skeleton — which attempts exist, where, in which
        // round — is identical, and both traces validate.
        let skeleton = |t: &JobTrace| {
            let mut v: Vec<_> = t
                .entries
                .iter()
                .map(|e| (e.kind, e.round, e.task, e.attempt, e.backup, e.node))
                .collect();
            v.sort();
            v
        };
        let dt = run.trace.as_ref().unwrap();
        let lt = legacy.trace.as_ref().unwrap();
        dt.check().unwrap();
        assert_eq!(skeleton(dt), skeleton(lt));
        assert!(dt.entries.iter().all(|e| e.round == 0));
        assert!(dt.edges.iter().all(|e| e.kind != EdgeKind::Round));
    }

    #[test]
    fn chained_dag_hands_partitions_off_untouched() {
        let cluster = ClusterConfig::local();
        let dfs = dfs_with_corpus(&cluster);
        let dag = JobDag::new()
            .stage(
                Arc::new(WordSum),
                JobConfig::default(),
                StageInput::dfs("corpus"),
            )
            .then(Arc::new(Resum), JobConfig::default().with_reducers(3))
            .then(Arc::new(Resum), JobConfig::default().with_reducers(2));
        let run = run_dag(&cluster, &dag, &dfs).unwrap();
        let single = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        // Totals survive two typed hand-offs; repartitioning only moves
        // pairs between partitions.
        assert_eq!(run.sorted_pairs(), single.sorted_pairs());
        assert_eq!(run.profile.num_rounds(), 3);
        assert_eq!(run.outputs.len(), 2);
    }

    #[test]
    fn rounds_advance_virtual_time_monotonically() {
        let cluster = ClusterConfig::local();
        let dfs = dfs_with_corpus(&cluster);
        let cfg = JobConfig::default().with_trace();
        let dag = JobDag::new()
            .stage(Arc::new(WordSum), cfg.clone(), StageInput::dfs("corpus"))
            .then(Arc::new(Resum), cfg.clone());
        let run = run_dag(&cluster, &dag, &dfs).unwrap();
        let r0_wall = run.profile.rounds[0].wall;
        let trace = run.trace.as_ref().unwrap();
        trace.check().unwrap();
        // Round 1 attempts start at or after round 0's makespan (BSP
        // barrier on the shared scheduler).
        for e in trace.entries.iter().filter(|e| e.round == 1) {
            assert!(
                e.start >= r0_wall,
                "round-1 entry starts at {} before round-0 wall {}",
                e.start,
                r0_wall
            );
        }
        // The hand-off edges are present: one per consumed partition.
        let rounds = trace
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Round)
            .count();
        assert_eq!(rounds, run.profile.rounds[0].reduce_tasks.len());
        assert_eq!(run.profile.wall, run.profile.rounds[1].wall);
    }

    #[test]
    fn dag_validation_rejects_bad_plans() {
        assert!(JobDag::new().validate().is_err());
        let forward =
            JobDag::new().stage(Arc::new(Resum), JobConfig::default(), StageInput::prior(3));
        assert!(forward.validate().is_err());
    }
}
