//! Virtual-time simulation of the map-thread / support-thread pipeline.
//!
//! This is the executable form of the paper's Section IV-C model. Per map
//! task, a *producer* (the map thread: read + map + emit) fills a spill
//! buffer of capacity `M`; a *consumer* (the support thread: sort, combine
//! and spill write) drains it one segment at a time. The spill fraction
//! `x` controls when the active segment is handed over.
//!
//! * handover happens when the active segment reaches `x·M` **and** the
//!   consumer is idle — while the consumer is busy the segment keeps
//!   growing (this is why `m_i` can exceed `x·M`, Eq. 2);
//! * the producer blocks when active + in-flight bytes would exceed `M`
//!   (the `M − m_{i−1}` bound in Eq. 2);
//! * consumer idle gaps between handovers are the support thread's wait
//!   time; producer blocking is the map thread's wait time (Table II).
//!
//! Work is executed for real and *measured*; this module only advances
//! virtual clocks, so pipeline overlap is modelled faithfully even on a
//! single-core host. The recurrence in `textmr-core::model` is the
//! closed-form special case of this machine under constant rates, and the
//! property tests cross-validate the two.

use crate::metrics::VNanos;

/// Outcome of offering a record to the pipeline: what the caller (the map
/// task) must do before appending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Append to the active segment; no spill.
    Append,
    /// Hand the active segment to the consumer first, then append.
    SpillThenAppend,
}

/// Virtual-time state of one map task's producer/consumer pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Spill buffer capacity M (accounted bytes).
    capacity: usize,
    /// Spill fraction x in force for the active segment.
    fraction: f64,
    /// Producer virtual clock.
    v_producer: VNanos,
    /// Virtual time at which the consumer finishes its current segment.
    consumer_busy_until: VNanos,
    /// Accounted bytes of the segment currently being consumed.
    in_flight: usize,
    /// Accounted bytes of the active (growing) segment, mirrored here so
    /// admission decisions need no access to the segment itself.
    active_bytes: usize,
    /// Producer busy virtual time (read + map + emit work).
    pub produce_busy: VNanos,
    /// Consumer busy virtual time (sort + combine + write work).
    pub consume_busy: VNanos,
    /// Producer blocked-on-full-buffer virtual time.
    pub producer_wait: VNanos,
    /// Consumer waiting-for-spill virtual time.
    pub consumer_wait: VNanos,
    /// Producer busy time when the active segment started (for per-spill
    /// produce-time observations).
    segment_produce_start: VNanos,
}

impl Pipeline {
    /// New pipeline over a buffer of `capacity` accounted bytes with the
    /// initial spill fraction.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `fraction` is not in `(0, 1]`.
    pub fn new(capacity: usize, fraction: f64) -> Self {
        assert!(capacity > 0, "spill buffer capacity must be positive");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "spill fraction must be in (0,1]"
        );
        Pipeline {
            capacity,
            fraction,
            v_producer: 0,
            consumer_busy_until: 0,
            in_flight: 0,
            active_bytes: 0,
            produce_busy: 0,
            consume_busy: 0,
            producer_wait: 0,
            consumer_wait: 0,
            segment_produce_start: 0,
        }
    }

    /// Buffer capacity M.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spill fraction currently in force.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Set the spill fraction for the *next* segment (controllers call this
    /// through the map task after each spill).
    pub fn set_fraction(&mut self, x: f64) {
        assert!(
            x > 0.0 && x <= 1.0,
            "spill fraction must be in (0,1], got {x}"
        );
        self.fraction = x;
    }

    /// Producer performed `ns` of measured work (advances its clock).
    #[inline]
    pub fn produce(&mut self, ns: u64) {
        self.v_producer += ns;
        self.produce_busy += ns;
    }

    /// Current spill threshold in bytes.
    fn threshold(&self) -> usize {
        // Ceil so that x = 1.0 requires a genuinely full buffer.
        (self.fraction * self.capacity as f64).ceil() as usize
    }

    /// Free the in-flight segment if the consumer has finished by now.
    #[inline]
    fn reap(&mut self) {
        if self.v_producer >= self.consumer_busy_until {
            self.in_flight = 0;
        }
    }

    /// Decide how to admit a record of accounted size `cost`. May advance
    /// the producer clock (blocking on a full buffer).
    pub fn admit(&mut self, cost: usize) -> Admission {
        self.reap();
        // Would the buffer overflow?
        if self.active_bytes + cost + self.in_flight > self.capacity {
            if self.in_flight > 0 {
                // Block until the consumer frees its segment, then resume
                // filling toward the threshold (Hadoop does not spill a
                // sub-threshold segment just because it had to wait).
                debug_assert!(self.consumer_busy_until > self.v_producer);
                self.producer_wait += self.consumer_busy_until - self.v_producer;
                self.v_producer = self.consumer_busy_until;
                self.in_flight = 0;
            }
            // The active segment alone no longer fits (threshold ≈ 1, or an
            // oversized record): it must be spilled to make room.
            if self.active_bytes + cost > self.capacity && self.active_bytes > 0 {
                return Admission::SpillThenAppend;
            }
            // Oversized single record with an empty buffer: append anyway;
            // it will exceed the threshold and spill on the next check.
        }
        // Reaching the spill threshold hands over only if the consumer is
        // idle; otherwise the segment keeps growing (Eq. 2).
        if self.active_bytes >= self.threshold() && self.v_producer >= self.consumer_busy_until {
            return Admission::SpillThenAppend;
        }
        Admission::Append
    }

    /// Record that `cost` accounted bytes were appended to the active
    /// segment.
    #[inline]
    pub fn appended(&mut self, cost: usize) {
        self.active_bytes += cost;
    }

    /// Should the active segment spill right now? Checked after appends:
    /// true when the threshold is reached and the consumer is idle.
    pub fn should_spill(&mut self) -> bool {
        self.reap();
        self.active_bytes >= self.threshold() && self.v_producer >= self.consumer_busy_until
    }

    /// Hand the active segment (its size is tracked internally) to the
    /// consumer. `consume_ns` is the *measured* cost of sorting, combining
    /// and writing it. Returns the per-spill observation inputs
    /// `(segment_bytes, produce_ns_for_segment)`.
    ///
    /// The consumer must be idle (callers only spill under that condition);
    /// its idle gap since finishing the previous segment is accounted as
    /// consumer wait.
    pub fn handover(&mut self, consume_ns: u64) -> (usize, u64) {
        debug_assert!(
            self.v_producer >= self.consumer_busy_until,
            "handover while consumer busy"
        );
        let seg_bytes = self.active_bytes;
        let produce_ns = self.produce_busy - self.segment_produce_start;
        self.consumer_wait += self.v_producer - self.consumer_busy_until;
        self.consumer_busy_until = self.v_producer + consume_ns;
        self.consume_busy += consume_ns;
        self.in_flight = seg_bytes;
        self.active_bytes = 0;
        self.segment_produce_start = self.produce_busy;
        (seg_bytes, produce_ns)
    }

    /// End of input: if the consumer is still busy, the map thread waits
    /// for it (the flush barrier before the final spill / merge). Advances
    /// the producer clock to the consumer's completion.
    pub fn drain_barrier(&mut self) {
        if self.consumer_busy_until > self.v_producer {
            self.producer_wait += self.consumer_busy_until - self.v_producer;
            self.v_producer = self.consumer_busy_until;
        }
        self.in_flight = 0;
    }

    /// Bytes currently in the active segment (mirror of the real segment).
    pub fn active_bytes(&self) -> usize {
        self.active_bytes
    }

    /// Virtual time at which the pipelined portion ends (both threads done).
    pub fn pipeline_end(&self) -> VNanos {
        self.v_producer.max(self.consumer_busy_until)
    }

    /// Producer's current virtual clock.
    pub fn producer_clock(&self) -> VNanos {
        self.v_producer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the pipeline with constant produce cost per byte and constant
    /// consume cost per byte; returns (producer_wait, consumer_wait,
    /// spill sizes).
    fn drive(
        capacity: usize,
        fraction: f64,
        record_cost: usize,
        produce_ns_per_rec: u64,
        consume_ns_per_byte: u64,
        records: usize,
    ) -> (u64, u64, Vec<usize>) {
        let mut p = Pipeline::new(capacity, fraction);
        let mut spills = Vec::new();
        for _ in 0..records {
            if p.admit(record_cost) == Admission::SpillThenAppend {
                let bytes = p.active_bytes();
                let (b, _) = p.handover(bytes as u64 * consume_ns_per_byte);
                spills.push(b);
            }
            p.appended(record_cost);
            p.produce(produce_ns_per_rec);
            if p.should_spill() {
                let bytes = p.active_bytes();
                let (b, _) = p.handover(bytes as u64 * consume_ns_per_byte);
                spills.push(b);
            }
        }
        p.drain_barrier();
        if p.active_bytes() > 0 {
            let bytes = p.active_bytes();
            let (b, _) = p.handover(bytes as u64 * consume_ns_per_byte);
            spills.push(b);
        }
        (p.producer_wait, p.consumer_wait, spills)
    }

    #[test]
    fn first_spill_is_exactly_threshold() {
        // 100-byte records, capacity 1000, x = 0.5 → first spill at 500.
        let (_, _, spills) = drive(1000, 0.5, 100, 10, 0, 20);
        assert_eq!(spills[0], 500);
    }

    #[test]
    fn fast_consumer_never_blocks_producer() {
        // Consumer is instantaneous: producer never waits.
        let (pw, _cw, _) = drive(1000, 0.8, 100, 10, 0, 1000);
        assert_eq!(pw, 0);
    }

    #[test]
    fn slow_consumer_blocks_producer_at_full_buffer() {
        // Consumer far slower than producer with x=0.8: producer must block.
        let (pw, cw, spills) = drive(1000, 0.8, 100, 1, 1000, 100);
        assert!(pw > 0, "producer should have blocked");
        // Consumer is the bottleneck; it should essentially never wait
        // after the first spill. Allow the initial ramp.
        assert!(cw < 1000 * 2, "consumer wait unexpectedly large: {cw}");
        // Segments cannot exceed capacity.
        assert!(spills.iter().all(|&s| s <= 1000));
    }

    #[test]
    fn half_fraction_keeps_slow_consumer_waitfree() {
        // Eq. 1: when p > c the wait-free maximum for the *slower* thread
        // (the consumer) is x = 1/2: while it consumes one half, the
        // producer refills the other half, so a new segment is always ready
        // the moment it finishes. Only the initial ramp-up (time to produce
        // the very first spill: 5 records × 1 ns) counts as consumer wait.
        let (pw, cw, spills) = drive(1000, 0.5, 100, 1, 50, 200);
        assert_eq!(cw, 5, "slower consumer must be wait-free after ramp-up");
        // The faster producer is expected to block — that is the tradeoff.
        assert!(pw > 0);
        // Steady-state spills are exactly x·M = 500.
        assert!(spills.iter().all(|&s| s == 500), "{spills:?}");
    }

    #[test]
    fn segment_grows_past_threshold_while_consumer_busy() {
        // Slow consumer, x = 0.3: segments grow beyond 300 while the
        // consumer is busy (Eq. 2's max{xM, …} behaviour).
        let (_, _, spills) = drive(1000, 0.3, 100, 1, 100, 200);
        assert!(spills.iter().any(|&s| s > 300), "{spills:?}");
    }

    #[test]
    fn slower_producer_below_eq1_bound_never_blocks() {
        // p < c: producer slower. produce 300 ns/rec → p = 1/3 B/ns;
        // consume 1 ns/B → c = 1 B/ns; Eq. 1's continuous bound is
        // x = c/(p+c) = 0.75. At exactly the bound, record granularity can
        // tip the buffer over by one record (the continuous model is only
        // *marginally* wait-free there), so we test strictly below it.
        let (pw, cw, _) = drive(1000, 0.7, 100, 300, 1, 500);
        assert_eq!(pw, 0, "slower producer must be wait-free below x = c/(p+c)");
        assert!(cw > 0, "the faster consumer bears the waiting");
    }

    #[test]
    fn above_eq1_bound_producer_blocks() {
        // Same rates, x above the c/(p+c)=0.75 bound: the slower producer
        // must now block — Eq. 1 is necessary as well as sufficient.
        let (pw, _cw, _) = drive(1000, 0.9, 100, 300, 1, 500);
        assert!(pw > 0, "x above the bound must stall the producer");
    }

    #[test]
    fn oversized_record_is_admitted_alone() {
        let mut p = Pipeline::new(100, 0.8);
        assert_eq!(p.admit(500), Admission::Append);
        p.appended(500);
        assert!(p.should_spill());
        let (b, _) = p.handover(10);
        assert_eq!(b, 500);
    }

    #[test]
    fn waits_accumulate_consistently() {
        let (pw, cw, spills) = drive(1000, 0.8, 50, 5, 20, 400);
        assert!(!spills.is_empty());
        // Producer + consumer busy/wait times are all non-negative by type;
        // sanity: total spilled bytes equals records * cost.
        let total: usize = spills.iter().sum();
        assert_eq!(total, 400 * 50);
        // At least one of the threads must have waited (rates differ).
        assert!(pw + cw > 0);
    }

    #[test]
    #[should_panic(expected = "spill fraction")]
    fn zero_fraction_rejected() {
        Pipeline::new(100, 0.0);
    }
}
