//! In-memory spill segments: the unit of data handed from the map thread to
//! the support thread.
//!
//! A segment stores serialized records contiguously plus per-record
//! metadata, mirroring Hadoop's `MapOutputBuffer` (kvbuffer + kvmeta). The
//! buffer budget accounts both the raw bytes and [`META_BYTES`] per record,
//! as Hadoop does — record *count* matters to sort cost, so metadata must
//! be budgeted or tiny-record workloads would under-charge the buffer.

/// Bytes of buffer budget charged per record for its metadata entry
/// (Hadoop's `METASIZE` is likewise 16).
pub const META_BYTES: usize = 16;

/// Metadata of one record inside a [`Segment`].
#[derive(Debug, Clone, Copy)]
pub struct RecMeta {
    /// Destination partition.
    pub part: u32,
    /// Offset of the key within `Segment::data`.
    pub key_off: u32,
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes (value bytes follow the key bytes).
    pub val_len: u32,
}

/// A growable in-memory run of serialized map-output records.
#[derive(Debug, Default)]
pub struct Segment {
    /// Concatenated `key ++ value` bytes of all records.
    pub data: Vec<u8>,
    /// One entry per record.
    pub recs: Vec<RecMeta>,
}

impl Segment {
    /// Empty segment.
    pub fn new() -> Self {
        Segment::default()
    }

    /// Append one record routed to `part`.
    pub fn push(&mut self, part: usize, key: &[u8], value: &[u8]) {
        let key_off = self.data.len() as u32;
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(value);
        self.recs.push(RecMeta {
            part: part as u32,
            key_off,
            key_len: key.len() as u32,
            val_len: value.len() as u32,
        });
    }

    /// Buffer-budget bytes this segment occupies (data + metadata).
    pub fn accounted_bytes(&self) -> usize {
        self.data.len() + self.recs.len() * META_BYTES
    }

    /// Buffer-budget bytes appending `(key, value)` would add.
    pub fn record_cost(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + META_BYTES
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True if the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Key bytes of record `i`.
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let m = &self.recs[i];
        &self.data[m.key_off as usize..(m.key_off + m.key_len) as usize]
    }

    /// Value bytes of record `i`.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let m = &self.recs[i];
        let start = (m.key_off + m.key_len) as usize;
        &self.data[start..start + m.val_len as usize]
    }

    /// Partition of record `i`.
    #[inline]
    pub fn part(&self, i: usize) -> usize {
        self.recs[i].part as usize
    }

    /// Reset to empty, keeping allocations (workhorse-collection reuse).
    pub fn clear(&mut self) {
        self.data.clear();
        self.recs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = Segment::new();
        s.push(2, b"key1", b"val1");
        s.push(0, b"k", b"");
        assert_eq!(s.len(), 2);
        assert_eq!(s.key(0), b"key1");
        assert_eq!(s.value(0), b"val1");
        assert_eq!(s.part(0), 2);
        assert_eq!(s.key(1), b"k");
        assert_eq!(s.value(1), b"");
        assert_eq!(s.part(1), 0);
    }

    #[test]
    fn accounting_includes_metadata() {
        let mut s = Segment::new();
        assert_eq!(s.accounted_bytes(), 0);
        s.push(0, b"abc", b"de");
        assert_eq!(s.accounted_bytes(), 5 + META_BYTES);
        assert_eq!(Segment::record_cost(b"abc", b"de"), 5 + META_BYTES);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = Segment::new();
        for i in 0..100 {
            s.push(0, format!("key{i}").as_bytes(), b"v");
        }
        let cap = s.data.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.data.capacity(), cap);
    }
}
