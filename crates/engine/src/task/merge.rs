//! K-way merge of sorted runs with key grouping.
//!
//! Used twice per job, exactly as in Hadoop: at the end of each map task to
//! merge spill files into the final map output (applying `combine()`
//! again), and on the reduce side to merge fetched partitions before
//! `reduce()`. Runs are byte buffers of framed records sorted by the job's
//! key comparator; groups (key + all its values) are delivered to a
//! visitor without copying record bytes.

use crate::codec::read_record;
use std::cmp::Ordering;

/// One sorted run positioned at its current record.
struct Cursor<'a> {
    data: &'a [u8],
    key: &'a [u8],
    val: &'a [u8],
    next_pos: usize,
    exhausted: bool,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        let mut c = Cursor {
            data,
            key: b"",
            val: b"",
            next_pos: 0,
            exhausted: false,
        };
        c.advance();
        c
    }

    fn advance(&mut self) {
        let mut pos = self.next_pos;
        match read_record(self.data, &mut pos) {
            Some((k, v)) => {
                self.key = k;
                self.val = v;
                self.next_pos = pos;
            }
            None => {
                self.exhausted = true;
            }
        }
    }
}

/// Merge sorted `runs` and invoke `on_group(key, values)` once per unique
/// key, in key order. `values` preserves run order (then within-run order),
/// matching Hadoop's unstated but deterministic grouping.
///
/// Records inside each run must already be sorted by `cmp`; this is
/// guaranteed for spill files and map outputs produced by this engine.
pub fn merge_grouped<'a, F>(
    runs: &'a [Vec<u8>],
    cmp: &dyn Fn(&[u8], &[u8]) -> Ordering,
    mut on_group: F,
) where
    F: FnMut(&'a [u8], &[&'a [u8]]),
{
    let mut cursors: Vec<Cursor<'a>> = runs.iter().map(|r| Cursor::new(r)).collect();
    let mut values: Vec<&'a [u8]> = Vec::new();
    loop {
        // Find the minimum head key with a linear scan: the fan-in is the
        // number of spill files / map outputs (tens), so a scan beats heap
        // bookkeeping at this scale.
        let mut min: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if c.exhausted {
                continue;
            }
            min = Some(match min {
                None => i,
                Some(m) if cmp(c.key, cursors[m].key) == Ordering::Less => i,
                Some(m) => m,
            });
        }
        let Some(m) = min else { break };
        let group_key = cursors[m].key;
        values.clear();
        // Collect every value equal to group_key, run by run (a run may
        // contain repeats of the key, e.g. without a combiner).
        for c in cursors.iter_mut() {
            while !c.exhausted && cmp(c.key, group_key) == Ordering::Equal {
                values.push(c.val);
                c.advance();
            }
        }
        on_group(group_key, &values);
    }
}

/// Outcome of reducing a run set to a bounded fan-in (multi-pass merge).
#[derive(Debug)]
pub struct MultiPassOutcome {
    /// The surviving runs (≤ fan_in of them), each sorted.
    pub runs: Vec<Vec<u8>>,
    /// Time spent in the user's combiner during intermediate passes (ns).
    pub combine_ns: u64,
    /// Time spent writing/reading intermediate runs to scratch disk (ns).
    pub io_ns: u64,
    /// Number of intermediate merge passes performed.
    pub passes: usize,
}

/// Hadoop-style multi-pass merge: while more than `fan_in` runs exist,
/// merge batches of `fan_in` into intermediate on-disk runs (applying the
/// combiner when available, as Hadoop does on intermediate passes), until
/// at most `fan_in` runs remain for the caller's final streaming pass.
///
/// `scratch` is a file path reused for the intermediate round-trips; the
/// write+read cost is real and measured into `io_ns`.
pub fn reduce_to_fan_in(
    mut runs: Vec<Vec<u8>>,
    job: &dyn crate::job::Job,
    use_combiner: bool,
    fan_in: usize,
    scratch: &std::path::Path,
) -> std::io::Result<MultiPassOutcome> {
    use crate::codec::write_record;
    use crate::job::combine_values;
    use crate::metrics::Stopwatch;

    let fan_in = fan_in.max(2);
    let mut combine_ns = 0u64;
    let mut io_ns = 0u64;
    let mut passes = 0usize;
    while runs.len() > fan_in {
        passes += 1;
        let batch: Vec<Vec<u8>> = runs.drain(..fan_in).collect();
        let mut merged = Vec::with_capacity(batch.iter().map(|r| r.len()).sum());
        merge_grouped(&batch, &|a, b| job.compare_keys(a, b), |key, values| {
            if use_combiner && values.len() > 1 {
                let sw = Stopwatch::start();
                let combined = combine_values(job, key, values);
                combine_ns = combine_ns.saturating_add(sw.elapsed_ns());
                for v in &combined {
                    write_record(&mut merged, key, v);
                }
            } else {
                for v in values {
                    write_record(&mut merged, key, v);
                }
            }
        });
        // Round-trip through scratch disk, as Hadoop's intermediate merge
        // outputs do; the cost is real.
        let sw = Stopwatch::start();
        std::fs::write(scratch, &merged)?;
        let merged = std::fs::read(scratch)?;
        io_ns = io_ns.saturating_add(sw.elapsed_ns());
        runs.push(merged);
    }
    let _ = std::fs::remove_file(scratch);
    Ok(MultiPassOutcome {
        runs,
        combine_ns,
        io_ns,
        passes,
    })
}

/// A sorted run readable one record at a time — the out-of-core
/// counterpart of the in-memory byte-buffer runs above. Implementations
/// may hold only a bounded window of the run (e.g. one decoded frame);
/// `advance` may therefore invalidate the slices `peek` returned.
pub trait RunCursor {
    /// The current record, or `None` when the run is exhausted.
    fn peek(&self) -> Option<(&[u8], &[u8])>;
    /// Step to the next record (may read and decompress the next window).
    fn advance(&mut self) -> std::io::Result<()>;
}

impl RunCursor for crate::io::frame::FrameRunCursor {
    fn peek(&self) -> Option<(&[u8], &[u8])> {
        crate::io::frame::FrameRunCursor::peek(self)
    }
    fn advance(&mut self) -> std::io::Result<()> {
        crate::io::frame::FrameRunCursor::advance(self)
    }
}

/// [`merge_grouped`] over windowed [`RunCursor`]s: identical group order
/// and value order (linear-scan minimum, strict-`Less` wins, so ties
/// break to the earliest run; values gathered run by run), but each run
/// holds only its current window in memory. Keys and values are copied
/// into a scratch arena before cursors advance, so the slices handed to
/// `on_group` are valid only for the duration of the call — the same
/// contract `merge_grouped` callers already honor.
pub fn merge_grouped_cursors<C, F>(
    cursors: &mut [C],
    cmp: &dyn Fn(&[u8], &[u8]) -> Ordering,
    mut on_group: F,
) -> std::io::Result<()>
where
    C: RunCursor,
    F: FnMut(&[u8], &[&[u8]]),
{
    let mut key_buf: Vec<u8> = Vec::new();
    let mut arena: Vec<u8> = Vec::new();
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    loop {
        // Linear scan for the minimum head key, as in `merge_grouped`.
        let mut min: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            let Some((k, _)) = c.peek() else { continue };
            min = Some(match min {
                None => i,
                Some(m) => {
                    let (mk, _) = cursors[m].peek().expect("min cursor has a head");
                    if cmp(k, mk) == Ordering::Less {
                        i
                    } else {
                        m
                    }
                }
            });
        }
        let Some(m) = min else { return Ok(()) };
        key_buf.clear();
        key_buf.extend_from_slice(cursors[m].peek().expect("min cursor has a head").0);
        arena.clear();
        bounds.clear();
        for c in cursors.iter_mut() {
            while let Some((k, v)) = c.peek() {
                if cmp(k, &key_buf) != Ordering::Equal {
                    break;
                }
                let start = arena.len();
                arena.extend_from_slice(v);
                bounds.push((start, arena.len()));
                c.advance()?;
            }
        }
        let values: Vec<&[u8]> = bounds.iter().map(|&(s, e)| &arena[s..e]).collect();
        on_group(&key_buf, &values);
    }
}

/// A framed run that can be opened as a
/// [`FrameRunCursor`](crate::io::frame::FrameRunCursor) *on demand*.
///
/// Multi-pass merging over cursors must not open every run up front: a
/// cursor holds one decoded frame window from construction, so opening N
/// runs at once costs N windows of residency. Sources defer that until
/// the run's batch is actually merged, keeping at most
/// `fan_in + 1` windows live at any moment.
pub enum CursorSource<'a> {
    /// An in-memory framed run (tests, hand-offs).
    Mem {
        /// Stored (framed) bytes of the run.
        stored: Vec<u8>,
        /// Its frame index.
        metas: Vec<crate::io::frame::FrameMeta>,
    },
    /// A framed partition of an existing spill file.
    Spill {
        /// The spill file holding the run.
        file: &'a crate::io::spill_file::SpillFile,
        /// Partition index within it.
        part: usize,
    },
    /// A run previously appended to the scratch
    /// [`RunStore`](crate::io::frame::RunStore).
    Stored(crate::io::frame::RunHandle),
}

impl CursorSource<'_> {
    /// Open the source as a cursor positioned on its first record.
    pub fn open(
        self,
        store: &mut crate::io::frame::RunStore,
    ) -> std::io::Result<crate::io::frame::FrameRunCursor> {
        match self {
            CursorSource::Mem { stored, metas } => {
                crate::io::frame::FrameRunCursor::from_mem(stored, metas)
            }
            CursorSource::Spill { file, part } => file.framed_cursor(part),
            CursorSource::Stored(h) => store.cursor(&h),
        }
    }
}

/// Outcome of [`reduce_sources_to_fan_in`].
#[derive(Debug)]
pub struct CursorMultiPassOutcome {
    /// The surviving cursors (≤ fan_in of them), each sorted.
    pub cursors: Vec<crate::io::frame::FrameRunCursor>,
    /// Time spent in the user's combiner during intermediate passes (ns).
    pub combine_ns: u64,
    /// Time spent encoding/writing intermediate framed runs (ns).
    pub io_ns: u64,
    /// Number of intermediate merge passes performed.
    pub passes: usize,
}

/// [`reduce_to_fan_in`] over windowed cursors: while more than `fan_in`
/// runs remain, merge batches of `fan_in` (applying the combiner when
/// available, as Hadoop does on intermediate passes) into new *framed*
/// runs appended to `store`, until at most `fan_in` cursors remain for
/// the caller's final streaming pass. Batch order, combiner application,
/// and the resulting record stream match the in-memory version exactly;
/// only the residency differs. Sources open lazily, batch by batch, so
/// at most `fan_in + 1` frame windows are live at once no matter how
/// many runs go in.
pub fn reduce_sources_to_fan_in(
    sources: Vec<CursorSource<'_>>,
    job: &dyn crate::job::Job,
    use_combiner: bool,
    fan_in: usize,
    frame_bytes: usize,
    store: &mut crate::io::frame::RunStore,
) -> std::io::Result<CursorMultiPassOutcome> {
    use crate::io::frame::FrameEncoder;
    use crate::job::combine_values;
    use crate::metrics::Stopwatch;

    let fan_in = fan_in.max(2);
    let mut combine_ns = 0u64;
    let mut io_ns = 0u64;
    let mut passes = 0usize;
    let mut sources = sources;
    while sources.len() > fan_in {
        passes += 1;
        let mut batch: Vec<crate::io::frame::FrameRunCursor> = Vec::with_capacity(fan_in);
        for src in sources.drain(..fan_in) {
            batch.push(src.open(store)?);
        }
        let mut enc = FrameEncoder::new(frame_bytes);
        merge_grouped_cursors(&mut batch, &|a, b| job.compare_keys(a, b), |key, values| {
            if use_combiner && values.len() > 1 {
                let sw = Stopwatch::start();
                let combined = combine_values(job, key, values);
                combine_ns = combine_ns.saturating_add(sw.elapsed_ns());
                for v in &combined {
                    enc.push_record(key, v);
                }
            } else {
                for v in values {
                    enc.push_record(key, v);
                }
            }
        })?;
        drop(batch);
        let sw = Stopwatch::start();
        let (stored, metas, records) = enc.finish();
        let handle = store.append(&stored, metas, records)?;
        io_ns = io_ns.saturating_add(sw.elapsed_ns());
        sources.push(CursorSource::Stored(handle));
    }
    let mut cursors = Vec::with_capacity(sources.len());
    for src in sources {
        cursors.push(src.open(store)?);
    }
    Ok(CursorMultiPassOutcome {
        cursors,
        combine_ns,
        io_ns,
        passes,
    })
}

/// Count records in a framed run (diagnostics/tests).
pub fn count_records(run: &[u8]) -> usize {
    let mut pos = 0;
    let mut n = 0;
    while read_record(run, &mut pos).is_some() {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_record;

    fn run_of(pairs: &[(&str, &str)]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (k, v) in pairs {
            write_record(&mut buf, k.as_bytes(), v.as_bytes());
        }
        buf
    }

    fn collect(runs: &[Vec<u8>]) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        merge_grouped(runs, &|a, b| a.cmp(b), |k, vs| {
            out.push((
                String::from_utf8(k.to_vec()).unwrap(),
                vs.iter()
                    .map(|v| String::from_utf8(v.to_vec()).unwrap())
                    .collect(),
            ));
        });
        out
    }

    #[test]
    fn merges_in_key_order_with_grouping() {
        let runs = vec![
            run_of(&[("a", "1"), ("c", "3")]),
            run_of(&[("a", "2"), ("b", "9")]),
        ];
        let got = collect(&runs);
        assert_eq!(
            got,
            vec![
                ("a".into(), vec!["1".into(), "2".into()]),
                ("b".into(), vec!["9".into()]),
                ("c".into(), vec!["3".into()]),
            ]
        );
    }

    #[test]
    fn repeats_within_a_run_group_together() {
        let runs = vec![run_of(&[("a", "1"), ("a", "2"), ("a", "3")])];
        let got = collect(&runs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.len(), 3);
    }

    #[test]
    fn empty_runs_are_fine() {
        let runs = vec![Vec::new(), run_of(&[("x", "1")]), Vec::new()];
        let got = collect(&runs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "x");
    }

    #[test]
    fn no_runs_no_groups() {
        let got = collect(&[]);
        assert!(got.is_empty());
    }

    #[test]
    fn custom_comparator_is_respected() {
        // Reverse ordering: runs sorted descending merge descending.
        let runs = vec![run_of(&[("c", "1"), ("a", "2")]), run_of(&[("b", "3")])];
        let mut keys = Vec::new();
        merge_grouped(&runs, &|a, b| b.cmp(a), |k, _| {
            keys.push(String::from_utf8(k.to_vec()).unwrap());
        });
        assert_eq!(keys, vec!["c", "b", "a"]);
    }

    #[test]
    fn count_records_counts() {
        let run = run_of(&[("a", "1"), ("b", "2")]);
        assert_eq!(count_records(&run), 2);
        assert_eq!(count_records(&[]), 0);
    }

    mod cursors {
        use super::*;
        use crate::io::frame::{FrameEncoder, FrameRunCursor, RunStore};

        fn framed(run: &[u8]) -> FrameRunCursor {
            let mut enc = FrameEncoder::new(1 << 10);
            let mut pos = 0;
            while let Some((k, v)) = read_record(run, &mut pos) {
                enc.push_record(k, v);
            }
            let (stored, metas, _) = enc.finish();
            FrameRunCursor::from_mem(stored, metas).unwrap()
        }

        fn collect_cursors(runs: &[Vec<u8>]) -> Vec<(String, Vec<String>)> {
            let mut cursors: Vec<_> = runs.iter().map(|r| framed(r)).collect();
            let mut out = Vec::new();
            merge_grouped_cursors(&mut cursors, &|a, b| a.cmp(b), |k, vs| {
                out.push((
                    String::from_utf8(k.to_vec()).unwrap(),
                    vs.iter()
                        .map(|v| String::from_utf8(v.to_vec()).unwrap())
                        .collect(),
                ));
            })
            .unwrap();
            out
        }

        #[test]
        fn cursor_merge_matches_buffer_merge_including_tie_breaks() {
            // Duplicate keys across runs and within runs: value order must
            // be run order then within-run order, exactly like
            // merge_grouped.
            let runs = vec![
                run_of(&[("a", "r0a1"), ("a", "r0a2"), ("c", "r0c")]),
                run_of(&[("a", "r1a"), ("b", "r1b"), ("c", "r1c")]),
                Vec::new(),
                run_of(&[("b", "r3b")]),
            ];
            assert_eq!(collect(&runs), collect_cursors(&runs));
        }

        #[test]
        fn cursor_fan_in_matches_buffer_fan_in_stream() {
            let runs: Vec<Vec<u8>> = (0..25)
                .map(|i| run_of(&[(&format!("k{:02}", i % 7), &format!("v{i}"))]))
                .collect();
            let scratch = {
                let d = std::env::temp_dir().join(format!("textmr-cmp-{}", std::process::id()));
                std::fs::create_dir_all(&d).unwrap();
                d
            };
            let legacy = reduce_to_fan_in(
                runs.clone(),
                &multi_pass::Plain,
                false,
                4,
                &scratch.join("legacy.bin"),
            )
            .unwrap();
            let mut legacy_stream = Vec::new();
            merge_grouped(&legacy.runs, &|a, b| a.cmp(b), |k, vs| {
                legacy_stream.push((
                    k.to_vec(),
                    vs.iter().map(|v| v.to_vec()).collect::<Vec<_>>(),
                ));
            });

            let mut store = RunStore::create(scratch.join("store.bin")).unwrap();
            let sources = runs
                .iter()
                .map(|r| {
                    let mut enc = FrameEncoder::new(1 << 10);
                    let mut pos = 0;
                    while let Some((k, v)) = read_record(r, &mut pos) {
                        enc.push_record(k, v);
                    }
                    let (stored, metas, _) = enc.finish();
                    CursorSource::Mem { stored, metas }
                })
                .collect();
            let out = reduce_sources_to_fan_in(
                sources,
                &multi_pass::Plain,
                false,
                4,
                1 << 10,
                &mut store,
            )
            .unwrap();
            assert!(out.cursors.len() <= 4);
            assert!(out.passes >= 1);
            let mut cursors = out.cursors;
            let mut stream = Vec::new();
            merge_grouped_cursors(&mut cursors, &|a, b| a.cmp(b), |k, vs| {
                stream.push((
                    k.to_vec(),
                    vs.iter().map(|v| v.to_vec()).collect::<Vec<_>>(),
                ));
            })
            .unwrap();
            assert_eq!(stream, legacy_stream);
        }
    }

    mod multi_pass {
        use super::*;
        use crate::job::{Emit, Job, Record, ValueCursor};
        use std::path::PathBuf;

        pub(super) struct Plain;
        impl Job for Plain {
            fn name(&self) -> &str {
                "plain"
            }
            fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
            fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
        }

        fn scratch(name: &str) -> PathBuf {
            let d = std::env::temp_dir().join(format!("textmr-mp-{}", std::process::id()));
            std::fs::create_dir_all(&d).unwrap();
            d.join(name)
        }

        /// 25 single-record runs with distinct sorted keys.
        fn many_runs() -> Vec<Vec<u8>> {
            (0..25)
                .map(|i| run_of(&[(&format!("k{i:02}"), "v")]))
                .collect()
        }

        #[test]
        fn reduces_run_count_to_fan_in() {
            let out = reduce_to_fan_in(many_runs(), &Plain, false, 4, &scratch("a.bin")).unwrap();
            assert!(out.runs.len() <= 4, "got {} runs", out.runs.len());
            assert!(out.passes >= 1);
            assert!(out.io_ns > 0, "intermediate passes must pay I/O");
            // No records lost.
            let total: usize = out.runs.iter().map(|r| count_records(r)).sum();
            assert_eq!(total, 25);
        }

        #[test]
        fn final_merge_over_reduced_runs_is_sorted_and_complete() {
            let out = reduce_to_fan_in(many_runs(), &Plain, false, 3, &scratch("b.bin")).unwrap();
            let mut keys = Vec::new();
            merge_grouped(&out.runs, &|a, b| a.cmp(b), |k, vs| {
                keys.push(k.to_vec());
                assert_eq!(vs.len(), 1);
            });
            assert_eq!(keys.len(), 25);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn under_fan_in_is_untouched() {
            let runs = vec![run_of(&[("a", "1")]), run_of(&[("b", "2")])];
            let out = reduce_to_fan_in(runs.clone(), &Plain, false, 10, &scratch("c.bin")).unwrap();
            assert_eq!(out.passes, 0);
            assert_eq!(out.runs, runs);
            assert_eq!(out.io_ns, 0);
        }

        #[test]
        fn combiner_runs_on_intermediate_passes() {
            use crate::codec::{decode_u64, encode_u64};
            use crate::job::ValueSink;
            struct Sum;
            impl Job for Sum {
                fn name(&self) -> &str {
                    "sum"
                }
                fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
                fn has_combiner(&self) -> bool {
                    true
                }
                fn combine(
                    &self,
                    _k: &[u8],
                    values: &mut dyn ValueCursor,
                    out: &mut dyn ValueSink,
                ) {
                    let mut s = 0;
                    while let Some(v) = values.next() {
                        s += decode_u64(v).unwrap();
                    }
                    out.push(&encode_u64(s));
                }
                fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
            }
            // 8 runs all holding key "x" with value 1.
            let one = {
                let mut buf = Vec::new();
                crate::codec::write_record(&mut buf, b"x", &encode_u64(1));
                buf
            };
            let runs = vec![one; 8];
            let out = reduce_to_fan_in(runs, &Sum, true, 2, &scratch("d.bin")).unwrap();
            // Total mass preserved across intermediate combining.
            let mut total = 0u64;
            merge_grouped(&out.runs, &|a, b| a.cmp(b), |_k, vs| {
                for v in vs {
                    total += decode_u64(v).unwrap();
                }
            });
            assert_eq!(total, 8);
            assert!(out.combine_ns > 0);
        }
    }
}
