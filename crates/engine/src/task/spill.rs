//! Sorting, combining and writing one spill segment — the support thread's
//! work.
//!
//! Given an in-memory [`Segment`], this module sorts record indices by
//! `(partition, key)` (the job's key comparator), runs the user's
//! `combine()` over equal-key groups, and streams the result into a
//! [`SpillFile`]. Each stage is measured separately because the paper's
//! breakdown (Fig. 2/8) distinguishes sort (framework), combine (user) and
//! spill I/O (framework).

use crate::io::spill_file::SpillFile;
use crate::job::{combine_values, Job};
use crate::metrics::Stopwatch;
use crate::task::segment::Segment;
use std::io;
use std::path::PathBuf;

/// Measured result of spilling a segment.
#[derive(Debug)]
pub struct SpillOutcome {
    /// The on-disk spill file.
    pub file: SpillFile,
    /// Records entering the spill (segment records).
    pub records_in: u64,
    /// Records written after combining.
    pub records_out: u64,
    /// Time sorting, ns.
    pub sort_ns: u64,
    /// Time in the user's combiner, ns.
    pub combine_ns: u64,
    /// Time grouping + writing, ns.
    pub write_ns: u64,
}

impl SpillOutcome {
    /// Total support-thread (consumer) time for this spill.
    pub fn consume_ns(&self) -> u64 {
        self.sort_ns + self.combine_ns + self.write_ns
    }
}

/// Sort record indices of `seg` by `(partition, key)` using the job's key
/// comparator. Exposed for benches and property tests.
pub fn sort_indices(seg: &Segment, job: &dyn Job) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..seg.len() as u32).collect();
    // textmr-lint: allow(sort-unstable-key-runs, reason = "shipped figures pin this equal-key order; value order within a group is unspecified by the job contract")
    idx.sort_unstable_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        seg.part(a)
            .cmp(&seg.part(b))
            .then_with(|| job.compare_keys(seg.key(a), seg.key(b)))
    });
    idx
}

/// Sort, combine and write `seg` to a new spill file at `path`.
pub fn spill_segment(seg: &Segment, job: &dyn Job, path: PathBuf) -> io::Result<SpillOutcome> {
    let sw = Stopwatch::start();
    let idx = sort_indices(seg, job);
    let sort_ns = sw.elapsed_ns();

    let sw_write = Stopwatch::start();
    let mut combine_ns = 0u64;
    let mut records_out = 0u64;
    let mut writer = SpillFile::create(path)?;
    let use_combiner = job.has_combiner();

    let mut i = 0usize;
    let mut cur_part: Option<usize> = None;
    let mut values: Vec<&[u8]> = Vec::new();
    while i < idx.len() {
        let r = idx[i] as usize;
        let part = seg.part(r);
        if cur_part != Some(part) {
            writer.start_partition(part)?;
            cur_part = Some(part);
        }
        let key = seg.key(r);
        // Gather the group of equal keys within this partition.
        values.clear();
        values.push(seg.value(r));
        let mut j = i + 1;
        while j < idx.len() {
            let r2 = idx[j] as usize;
            if seg.part(r2) != part
                || job.compare_keys(seg.key(r2), key) != std::cmp::Ordering::Equal
            {
                break;
            }
            values.push(seg.value(r2));
            j += 1;
        }
        if use_combiner && values.len() > 1 {
            // A correct MapReduce combiner is run zero-or-more times, so
            // skipping it for singleton groups is semantics-preserving and
            // matches Hadoop's practical behaviour.
            let sw_c = Stopwatch::start();
            let combined = combine_values(job, key, &values);
            combine_ns = combine_ns.saturating_add(sw_c.elapsed_ns());
            for v in &combined {
                writer.write_record(key, v)?;
                records_out += 1;
            }
        } else {
            for v in &values {
                writer.write_record(key, v)?;
                records_out += 1;
            }
        }
        i = j;
    }
    let file = writer.finish()?;
    let write_ns = sw_write.elapsed_ns().saturating_sub(combine_ns);

    Ok(SpillOutcome {
        file,
        records_in: seg.len() as u64,
        records_out,
        sort_ns,
        combine_ns,
        write_ns,
    })
}

/// [`spill_segment`] writing each partition as a *framed run* (the
/// out-of-core format): same sort, same combiner application, same record
/// stream, but records pack into compressed frames with a per-run frame
/// index so later consumers can read windows. `frame_bytes` is the target
/// uncompressed frame size.
pub fn spill_segment_framed(
    seg: &Segment,
    job: &dyn Job,
    path: PathBuf,
    frame_bytes: usize,
) -> io::Result<SpillOutcome> {
    use crate::io::frame::FrameEncoder;

    let sw = Stopwatch::start();
    let idx = sort_indices(seg, job);
    let sort_ns = sw.elapsed_ns();

    let sw_write = Stopwatch::start();
    let mut combine_ns = 0u64;
    let mut records_out = 0u64;
    let mut writer = SpillFile::create(path)?;
    let use_combiner = job.has_combiner();

    let mut i = 0usize;
    let mut cur_part: Option<usize> = None;
    let mut enc: Option<FrameEncoder> = None;
    let mut part_records = 0u64;
    let mut values: Vec<&[u8]> = Vec::new();
    let flush = |writer: &mut crate::io::spill_file::SpillFileWriter,
                 enc: Option<FrameEncoder>,
                 part: Option<usize>,
                 part_records: u64|
     -> io::Result<()> {
        if let (Some(enc), Some(part)) = (enc, part) {
            let (stored, metas, _) = enc.finish();
            writer.write_framed_partition(part, &stored, metas, part_records)?;
        }
        Ok(())
    };
    while i < idx.len() {
        let r = idx[i] as usize;
        let part = seg.part(r);
        if cur_part != Some(part) {
            flush(&mut writer, enc.take(), cur_part, part_records)?;
            enc = Some(FrameEncoder::new(frame_bytes));
            part_records = 0;
            cur_part = Some(part);
        }
        let key = seg.key(r);
        values.clear();
        values.push(seg.value(r));
        let mut j = i + 1;
        while j < idx.len() {
            let r2 = idx[j] as usize;
            if seg.part(r2) != part
                || job.compare_keys(seg.key(r2), key) != std::cmp::Ordering::Equal
            {
                break;
            }
            values.push(seg.value(r2));
            j += 1;
        }
        let e = enc.as_mut().expect("encoder open for current partition");
        if use_combiner && values.len() > 1 {
            let sw_c = Stopwatch::start();
            let combined = combine_values(job, key, &values);
            combine_ns = combine_ns.saturating_add(sw_c.elapsed_ns());
            for v in &combined {
                e.push_record(key, v);
                records_out += 1;
                part_records += 1;
            }
        } else {
            for v in &values {
                e.push_record(key, v);
                records_out += 1;
                part_records += 1;
            }
        }
        i = j;
    }
    flush(&mut writer, enc.take(), cur_part, part_records)?;
    let file = writer.finish()?;
    let write_ns = sw_write.elapsed_ns().saturating_sub(combine_ns);

    Ok(SpillOutcome {
        file,
        records_in: seg.len() as u64,
        records_out,
        sort_ns,
        combine_ns,
        write_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_u64, encode_u64, read_record};
    use crate::job::{Emit, Record, ValueCursor, ValueSink};

    struct SumJob;
    impl Job for SumJob {
        fn name(&self) -> &str {
            "sum"
        }
        fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut sum = 0u64;
            while let Some(v) = values.next() {
                sum += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(sum));
        }
        fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("textmr-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn spill_sorts_by_partition_then_key() {
        let mut seg = Segment::new();
        seg.push(1, b"b", &encode_u64(1));
        seg.push(0, b"z", &encode_u64(1));
        seg.push(1, b"a", &encode_u64(1));
        seg.push(0, b"a", &encode_u64(1));
        let out = spill_segment(&seg, &SumJob, tmp("s1.bin")).unwrap();
        assert_eq!(out.records_out, 4);

        let p0 = out.file.read_partition(0).unwrap();
        let mut pos = 0;
        let (k1, _) = read_record(&p0, &mut pos).unwrap();
        let (k2, _) = read_record(&p0, &mut pos).unwrap();
        assert_eq!((k1, k2), (&b"a"[..], &b"z"[..]));

        let p1 = out.file.read_partition(1).unwrap();
        let mut pos = 0;
        let (k1, _) = read_record(&p1, &mut pos).unwrap();
        assert_eq!(k1, b"a");
    }

    #[test]
    fn combiner_collapses_duplicates() {
        let mut seg = Segment::new();
        for _ in 0..10 {
            seg.push(0, b"the", &encode_u64(1));
        }
        seg.push(0, b"rare", &encode_u64(1));
        let out = spill_segment(&seg, &SumJob, tmp("s2.bin")).unwrap();
        assert_eq!(out.records_in, 11);
        assert_eq!(out.records_out, 2);

        let p0 = out.file.read_partition(0).unwrap();
        let mut pos = 0;
        let (k, v) = read_record(&p0, &mut pos).unwrap();
        assert_eq!(k, b"rare");
        assert_eq!(decode_u64(v), Some(1));
        let (k, v) = read_record(&p0, &mut pos).unwrap();
        assert_eq!(k, b"the");
        assert_eq!(decode_u64(v), Some(10));
    }

    #[test]
    fn empty_segment_yields_empty_file() {
        let seg = Segment::new();
        let out = spill_segment(&seg, &SumJob, tmp("s3.bin")).unwrap();
        assert_eq!(out.records_out, 0);
        assert_eq!(out.file.total_bytes(), 0);
    }

    #[test]
    fn sort_indices_is_a_permutation() {
        let mut seg = Segment::new();
        for i in 0..50 {
            seg.push(i % 3, format!("k{}", 50 - i).as_bytes(), b"v");
        }
        let idx = sort_indices(&seg, &SumJob);
        let mut seen = [false; 50];
        for &i in &idx {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
