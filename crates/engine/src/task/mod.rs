//! Task execution: segments, the virtual-time pipeline, sort/combine/spill,
//! k-way merge, and the map/reduce task runners. (Shuffle fetching lives in
//! [`crate::shuffle`]; the reduce runner delegates to it.)

pub mod map_task;
pub mod merge;
pub mod pipeline;
pub mod reduce_task;
pub mod segment;
pub mod spill;
