//! Task execution: segments, the virtual-time pipeline, sort/combine/spill,
//! k-way merge, and the map/reduce task runners.

pub mod map_task;
pub mod merge;
pub mod pipeline;
pub mod reduce_task;
pub mod segment;
pub mod spill;
