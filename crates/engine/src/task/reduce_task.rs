//! Execution of one reduce task: shuffle fetch → merge → reduce → write.
//!
//! The reducer fetches its partition from every map output (a real disk
//! read, plus virtual network time for remote sources), k-way merges the
//! sorted runs, groups by key, invokes the user's `reduce()`, and
//! serializes the output. Fetching is delegated to [`crate::shuffle`]: a
//! bounded pool of parallel fetchers (like Hadoop's parallel copiers) whose
//! virtual time comes from a contention-aware per-node NIC model — with one
//! fetcher it degenerates to the sequential independent-flow accounting,
//! which is where the EC2 configuration's shuffle penalty enters (Table IV).

use crate::fault::FaultPlan;
// textmr-lint: allow(unordered-iteration, reason = "hash-grouping accumulator; groups are collected and sorted by key bytes before any reduce call")
use crate::hash::FnvHashMap;
use crate::io::frame::{decode_run, scan_frames, RunStore};
use crate::io::StreamingConfig;
use crate::job::{Emit, Job, SliceValues};
use crate::metrics::{Op, OpTimes, Stopwatch, TaskProfile, VNanos};
use crate::net::NetworkConfig;
use crate::shuffle::{run_shuffle, FlowInput, ShuffleStats};
use crate::task::map_task::MapOutput;
use crate::task::merge::{
    merge_grouped, merge_grouped_cursors, reduce_sources_to_fan_in, CursorSource,
};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How a reduce task groups values by key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Grouping {
    /// Hadoop's sort-merge grouping: reduce input (and hence output, when
    /// reduce emits its grouping key) arrives in key order. Required by
    /// order-dependent consumers such as inverted indexes (Sec. II-A).
    #[default]
    Sort,
    /// Hash-based grouping (the paper's Sec. II-A/VII alternative, after
    /// Lin et al.): skips the reduce-side merge sort entirely; output
    /// order is unspecified. Only valid for order-insensitive jobs.
    Hash,
}

/// Why a reduce task did not complete (mirror of
/// [`MapTaskError`](crate::task::map_task::MapTaskError)).
#[derive(Debug)]
pub enum ReduceTaskError {
    /// Underlying I/O failure (including exhausted shuffle-fetch retries).
    Io(io::Error),
    /// Injected fault: the attempt died after its budgeted number of key
    /// groups. Carries the virtual time the attempt consumed (shuffle +
    /// partial reduce), so the driver can schedule the dead attempt's slot
    /// occupancy before the retry.
    Injected {
        /// Virtual nanoseconds elapsed at the point of failure.
        virtual_elapsed: VNanos,
    },
    /// The driver cancelled the job while this attempt was running.
    Cancelled,
}

impl From<io::Error> for ReduceTaskError {
    fn from(e: io::Error) -> Self {
        ReduceTaskError::Io(e)
    }
}

/// A finished reduce task.
#[derive(Debug)]
pub struct ReduceResult {
    /// Final `(key, value)` pairs in key order.
    pub pairs: Vec<(Vec<u8>, Vec<u8>)>,
    /// Task profile (ops + virtual duration).
    pub profile: TaskProfile,
    /// Shuffle statistics: byte totals, fetch-size histogram, and the
    /// NIC-model schedule for this task's fetches.
    pub shuffle: ShuffleStats,
    /// Per-flow measured inputs (map-task-id order), for the job driver's
    /// phase-level replay under shared node ingress.
    pub flow_inputs: Vec<FlowInput>,
    /// Post-shuffle time decomposed as `[merge, combine, reduce, write]`
    /// nanoseconds — the exact clamped cascade the profile's ops carry, so
    /// the driver can rebuild the trace's reduce lane around a replayed
    /// shuffle schedule.
    pub post_parts: [u64; 4],
}

/// Output sink measuring serialization cost separately from user reduce
/// time.
struct ReduceSink {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
    out_buf: Vec<u8>,
    write_ns: u64,
}

impl Emit for ReduceSink {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        let sw = Stopwatch::start();
        crate::codec::write_record(&mut self.out_buf, key, value);
        self.pairs.push((key.to_vec(), value.to_vec()));
        self.write_ns = self.write_ns.saturating_add(sw.elapsed_ns());
    }
}

/// Configuration of one reduce-task execution.
#[derive(Debug, Clone)]
pub struct ReduceTaskConfig {
    /// Partition this reducer owns.
    pub partition: usize,
    /// Node the reducer runs on.
    pub node: usize,
    /// Maximum merge fan-in (sort grouping only).
    pub merge_fan_in: usize,
    /// Scratch directory for intermediate merge passes.
    pub scratch_dir: std::path::PathBuf,
    /// Grouping strategy.
    pub grouping: Grouping,
    /// Parallel shuffle fetchers (1 = sequential legacy behaviour; clamped
    /// to [`crate::shuffle::MAX_FETCHERS`]).
    pub fetchers: usize,
    /// Fault injection: abort (as a retryable task failure) after reducing
    /// this many key groups.
    pub fail_after_groups: Option<u64>,
    /// Fault plan consulted for transient shuffle-fetch failures (keyed by
    /// map-task id and fetch attempt). `None` disables fetch faults.
    pub faults: Option<Arc<FaultPlan>>,
    /// Attempts per shuffle fetch before it becomes a hard error (the
    /// driver passes the job's `max_attempts`; clamped to ≥ 1).
    pub max_fetch_attempts: usize,
    /// Cooperative cancellation token, set by the driver when the job is
    /// aborting; checked between key groups.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Record a per-thread span timeline (reduce lane + fetcher lanes)
    /// into `TaskProfile::trace`. Off by default.
    pub trace: bool,
    /// Out-of-core streaming knobs. Relevant only when the map outputs
    /// are framed: with `materialize_reads` off, fetched runs spool to a
    /// scratch [`RunStore`] and merge through
    /// one-frame windows; with it on, every frame is decoded up front.
    /// Same bytes, same output — different residency. Hash grouping
    /// always materializes (it needs every record in its accumulator
    /// anyway).
    pub streaming: StreamingConfig,
}

#[inline]
fn is_cancelled(cancel: &Option<Arc<AtomicBool>>) -> bool {
    cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Why the group loop stopped before draining every key group.
enum Abort {
    Injected,
    Cancelled,
}

/// Run one reduce task against all map outputs.
pub fn run_reduce_task(
    job: &Arc<dyn Job>,
    map_outputs: &[MapOutput],
    net: &NetworkConfig,
    cfg: &ReduceTaskConfig,
) -> Result<ReduceResult, ReduceTaskError> {
    let partition = cfg.partition;
    let mut ops = OpTimes::new();
    if is_cancelled(&cfg.cancel) {
        return Err(ReduceTaskError::Cancelled);
    }

    // ---- shuffle fetch (see crate::shuffle) ----------------------------------
    // Network virtual time pays for the bytes as stored (compressed when
    // the map side compressed them).
    let fetched = run_shuffle(
        map_outputs,
        partition,
        cfg.node,
        net,
        cfg.fetchers,
        cfg.faults.as_deref(),
        cfg.max_fetch_attempts.max(1),
        cfg.trace,
    )?;
    ops.add_nanos(Op::ShuffleFetch, fetched.fetch_work_ns);
    ops.add_nanos(Op::ShuffleWait, fetched.stats.wait_ns);
    ops.add_nanos(Op::ShuffleRetry, fetched.stats.backoff_ns);
    let shuffle_virtual_ns = fetched.stats.virtual_ns;
    let runs = fetched.runs;
    let flows = fetched.flows;
    let flow_inputs = fetched.inputs;
    let shuffle = fetched.stats;

    let framed = map_outputs.iter().any(|m| m.framed);
    let sw_all = Stopwatch::start();
    let peak_buffer_bytes;
    let mut sink = ReduceSink {
        pairs: Vec::new(),
        out_buf: Vec::new(),
        write_ns: 0,
    };
    let mut reduce_ns = 0u64;
    let mut input_records = 0u64;
    let mut intermediate_combine_ns = 0u64;
    // Group-fault / cancellation bookkeeping: the group loops cannot early-
    // return (merge_grouped drives a callback), so they record the abort and
    // skip the remaining groups' user work instead.
    let mut groups_done = 0u64;
    let mut aborted: Option<Abort> = None;
    let reduce_group =
        |key: &[u8], values: &[&[u8]], sink: &mut ReduceSink, reduce_ns: &mut u64| {
            let write_before = sink.write_ns;
            let sw_r = Stopwatch::start();
            let mut cursor = SliceValues::new(values);
            job.reduce(key, &mut cursor, sink);
            let group_ns = sw_r.elapsed_ns();
            *reduce_ns =
                reduce_ns.saturating_add(group_ns.saturating_sub(sink.write_ns - write_before));
        };
    match cfg.grouping {
        Grouping::Sort if framed && !cfg.streaming.materialize_reads => {
            // ---- streamed framed merge --------------------------------------
            // Spool each fetched (stored, compressed) run into a scratch
            // store and drop the in-memory copies; every later pass reads
            // one-frame windows, so at most `fan_in + 1` windows are
            // resident. The record stream — and hence the output — is
            // identical to the materialized path below.
            let mut store = RunStore::create(
                cfg.scratch_dir
                    .join(format!("r{partition}_mergescratch.frames")),
            )?;
            let mut sources: Vec<CursorSource<'_>> = Vec::with_capacity(runs.len());
            for run in &runs {
                let metas = scan_frames(run).map_err(io::Error::from)?;
                sources.push(CursorSource::Stored(store.append(run, metas, 0)?));
            }
            drop(runs);
            let multi = reduce_sources_to_fan_in(
                sources,
                job.as_ref(),
                job.has_combiner(),
                cfg.merge_fan_in,
                cfg.streaming.frame_bytes,
                &mut store,
            )?;
            intermediate_combine_ns = multi.combine_ns;
            let mut cursors = multi.cursors;
            peak_buffer_bytes = cursors.iter().map(|c| c.window_bytes() as u64).sum();
            merge_grouped_cursors(
                &mut cursors,
                &|a, b| job.compare_keys(a, b),
                |key, values| {
                    if aborted.is_some() {
                        return;
                    }
                    input_records += values.len() as u64;
                    reduce_group(key, values, &mut sink, &mut reduce_ns);
                    groups_done += 1;
                    if cfg.fail_after_groups == Some(groups_done) {
                        aborted = Some(Abort::Injected);
                    } else if groups_done.is_multiple_of(64) && is_cancelled(&cfg.cancel) {
                        aborted = Some(Abort::Cancelled);
                    }
                },
            )?;
        }
        Grouping::Sort => {
            // ---- multi-pass merge down to the fan-in limit ------------------
            let runs = if framed {
                // Materialized framed reads: decode every frame up front.
                runs.iter()
                    .map(|r| decode_run(r).map_err(io::Error::from))
                    .collect::<io::Result<Vec<_>>>()?
            } else {
                runs
            };
            peak_buffer_bytes = runs.iter().map(|r| r.len() as u64).sum();
            let scratch = cfg
                .scratch_dir
                .join(format!("r{partition}_mergescratch.bin"));
            let multi = crate::task::merge::reduce_to_fan_in(
                runs,
                job.as_ref(),
                job.has_combiner(),
                cfg.merge_fan_in,
                &scratch,
            )?;
            let runs = multi.runs;
            intermediate_combine_ns = multi.combine_ns;

            // ---- final merge + reduce + write --------------------------------
            merge_grouped(&runs, &|a, b| job.compare_keys(a, b), |key, values| {
                if aborted.is_some() {
                    return;
                }
                input_records += values.len() as u64;
                reduce_group(key, values, &mut sink, &mut reduce_ns);
                groups_done += 1;
                if cfg.fail_after_groups == Some(groups_done) {
                    aborted = Some(Abort::Injected);
                } else if groups_done.is_multiple_of(64) && is_cancelled(&cfg.cancel) {
                    aborted = Some(Abort::Cancelled);
                }
            });
        }
        Grouping::Hash => {
            // ---- hash grouping: no sort, no merge passes ----------------------
            // Hash grouping always materializes framed runs: its
            // accumulator holds every record regardless, so windowed
            // reads would bound nothing.
            let runs = if framed {
                runs.iter()
                    .map(|r| decode_run(r).map_err(io::Error::from))
                    .collect::<io::Result<Vec<_>>>()?
            } else {
                runs
            };
            peak_buffer_bytes = runs.iter().map(|r| r.len() as u64).sum();
            // Values per key accumulate as framed bytes in one buffer.
            // textmr-lint: allow(unordered-iteration, reason = "iteration below goes through sorted_groups, sorted by key bytes")
            let mut groups: FnvHashMap<Vec<u8>, Vec<u8>> = FnvHashMap::default();
            for run in &runs {
                let mut pos = 0usize;
                while let Some((k, v)) = crate::codec::read_record(run, &mut pos) {
                    input_records += 1;
                    let buf = groups.entry(k.to_vec()).or_default();
                    crate::codec::write_bytes(buf, v);
                }
            }
            // FnvHashMap iteration order is seed/layout-dependent; sort
            // groups by key bytes so output (and hence signatures) are
            // deterministic. This is NOT the sort-merge key order the Sort
            // grouping guarantees — just a stable iteration order.
            let mut sorted_groups: Vec<(&Vec<u8>, &Vec<u8>)> = groups.iter().collect();
            // textmr-lint: allow(sort-unstable-key-runs, reason = "group keys are unique, so no equal-key runs exist")
            sorted_groups.sort_unstable_by(|a, b| a.0.cmp(b.0));
            let mut values: Vec<&[u8]> = Vec::new();
            for (key, buf) in sorted_groups {
                values.clear();
                let mut pos = 0usize;
                while let Some(v) = crate::codec::read_bytes(buf, &mut pos) {
                    values.push(v);
                }
                reduce_group(key, &values, &mut sink, &mut reduce_ns);
                groups_done += 1;
                if cfg.fail_after_groups == Some(groups_done) {
                    aborted = Some(Abort::Injected);
                    break;
                }
                if groups_done.is_multiple_of(64) && is_cancelled(&cfg.cancel) {
                    aborted = Some(Abort::Cancelled);
                    break;
                }
            }
        }
    }
    match aborted {
        Some(Abort::Injected) => {
            // The dead attempt consumed its shuffle plus the partial reduce.
            return Err(ReduceTaskError::Injected {
                virtual_elapsed: shuffle_virtual_ns + sw_all.elapsed_ns(),
            });
        }
        Some(Abort::Cancelled) => return Err(ReduceTaskError::Cancelled),
        None => {}
    }
    let total_ns = sw_all.elapsed_ns();
    // Decompose the post-shuffle time as a clamped cascade so the four
    // components sum to `total_ns` *exactly* (the trace's reduce lane must
    // tile it); in the normal case (components measured inside `sw_all`,
    // so their sum never exceeds it) each equals the plain subtraction
    // used before.
    let reduce_c = reduce_ns.min(total_ns);
    let write_c = sink.write_ns.min(total_ns - reduce_c);
    let ic_c = intermediate_combine_ns.min(total_ns - reduce_c - write_c);
    let merge_c = total_ns - reduce_c - write_c - ic_c;
    ops.add_nanos(Op::ReduceMerge, merge_c);
    ops.add_nanos(Op::Combine, ic_c);
    ops.add_nanos(Op::Reduce, reduce_c);
    ops.add_nanos(Op::OutputWrite, write_c);

    let trace = flows.map(|fl| {
        Box::new(crate::trace::build_reduce_trace(
            &fl,
            shuffle.wait_ns,
            shuffle_virtual_ns,
            merge_c,
            ic_c,
            reduce_c,
            write_c,
        ))
    });
    let output_bytes = sink.out_buf.len() as u64;
    let profile = TaskProfile {
        ops,
        virtual_duration: shuffle_virtual_ns + total_ns,
        input_records,
        output_bytes,
        peak_buffer_bytes,
        trace,
        ..Default::default()
    };
    Ok(ReduceResult {
        pairs: sink.pairs,
        profile,
        shuffle,
        flow_inputs,
        post_parts: [merge_c, ic_c, reduce_c, write_c],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_u64, encode_u64};
    use crate::controller::FixedSpill;
    use crate::io::dfs::SimDfs;
    use crate::io::input::InputSplit;
    use crate::job::{Record, ValueCursor, ValueSink};
    use crate::task::map_task::{run_map_task, MapTaskConfig};
    use std::path::PathBuf;

    struct WordSum;
    impl Job for WordSum {
        fn name(&self) -> &str {
            "wordsum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                e.emit(w, &encode_u64(1));
            }
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("textmr-reduce-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rcfg(partition: usize, node: usize, fetchers: usize) -> ReduceTaskConfig {
        ReduceTaskConfig {
            partition,
            node,
            merge_fan_in: 10,
            scratch_dir: tmpdir(),
            grouping: Grouping::Sort,
            fetchers,
            fail_after_groups: None,
            faults: None,
            max_fetch_attempts: 4,
            cancel: None,
            trace: false,
            streaming: StreamingConfig::default(),
        }
    }

    fn map_all(texts: &[&str], parts: usize) -> Vec<MapOutput> {
        let job: Arc<dyn Job> = Arc::new(WordSum);
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut dfs = SimDfs::new(4, 1 << 20);
                dfs.put("in", t.as_bytes().to_vec());
                let split = InputSplit::from_file(dfs.get("in").unwrap(), 0).remove(0);
                let cfg = MapTaskConfig {
                    task_id: i,
                    node: i % 4,
                    num_partitions: parts,
                    buffer_capacity: 1 << 20,
                    controller: Box::new(FixedSpill(0.8)),
                    filter: None,
                    merge_fan_in: 10,
                    compress_output: false,
                    spill_dir: tmpdir(),
                    fail_after_records: None,
                    fail_spill: None,
                    cancel: None,
                    trace: false,
                    streaming: StreamingConfig::default(),
                };
                run_map_task(&job, &split, cfg)
                    .map_err(|e| format!("{e:?}"))
                    .unwrap()
                    .0
            })
            .collect()
    }

    #[test]
    fn reduce_aggregates_across_map_outputs() {
        let outputs = map_all(&["a b a\n", "a c\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let r = run_reduce_task(
            &job,
            &outputs,
            &NetworkConfig::local_cluster(),
            &rcfg(0, 0, 1),
        )
        .unwrap();
        let m: std::collections::HashMap<String, u64> = r
            .pairs
            .iter()
            .map(|(k, v)| {
                (
                    String::from_utf8(k.clone()).unwrap(),
                    decode_u64(v).unwrap(),
                )
            })
            .collect();
        assert_eq!(m["a"], 3);
        assert_eq!(m["b"], 1);
        assert_eq!(m["c"], 1);
        // Output is key-sorted.
        let keys: Vec<_> = r.pairs.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let outputs = map_all(&["x y z w v u\n"], 3);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let mut all = Vec::new();
        for p in 0..3 {
            let r = run_reduce_task(
                &job,
                &outputs,
                &NetworkConfig::local_cluster(),
                &rcfg(p, 0, 1),
            )
            .unwrap();
            all.extend(r.pairs);
        }
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn remote_bytes_counted_only_for_remote_sources() {
        // Map task ran on node 1 (i % 4 with i=1... here single text → node 0).
        let outputs = map_all(&["k k k\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let local = run_reduce_task(
            &job,
            &outputs,
            &NetworkConfig::local_cluster(),
            &rcfg(0, 0, 1),
        )
        .unwrap();
        assert_eq!(local.shuffle.remote_bytes, 0);
        let remote = run_reduce_task(
            &job,
            &outputs,
            &NetworkConfig::local_cluster(),
            &rcfg(0, 1, 1),
        )
        .unwrap();
        assert!(remote.shuffle.remote_bytes > 0);
        assert_eq!(remote.shuffle.fetched_bytes, local.shuffle.fetched_bytes);
        // Remote fetch costs more virtual time.
        assert!(remote.profile.virtual_duration >= local.profile.virtual_duration);
    }

    #[test]
    fn parallel_fetchers_produce_identical_output() {
        let outputs = map_all(&["a b a\n", "a c d e\n", "b d f\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let run = |fetchers: usize| {
            // node 1: all sources remote → real flows in the NIC model
            run_reduce_task(
                &job,
                &outputs,
                &NetworkConfig::local_cluster(),
                &rcfg(0, 1, fetchers),
            )
            .unwrap()
        };
        let seq = run(1);
        assert_eq!(seq.shuffle.virtual_ns, seq.shuffle.sequential_ns);
        assert_eq!(seq.shuffle.wait_ns, 0);
        for f in [2, 4] {
            let par = run(f);
            assert_eq!(par.pairs, seq.pairs, "fetchers={f}");
            assert_eq!(par.shuffle.fetched_bytes, seq.shuffle.fetched_bytes);
            assert_eq!(par.shuffle.size_hist, seq.shuffle.size_hist);
            assert!(par.shuffle.virtual_ns <= par.shuffle.sequential_ns);
            assert!(par.shuffle.virtual_ns >= par.shuffle.max_flow_ns);
        }
    }

    #[test]
    fn empty_partition_is_fine() {
        let outputs = map_all(&["solo\n"], 4);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let mut nonempty = 0;
        for p in 0..4 {
            let r = run_reduce_task(
                &job,
                &outputs,
                &NetworkConfig::local_cluster(),
                &rcfg(p, 0, 1),
            )
            .unwrap();
            if !r.pairs.is_empty() {
                nonempty += 1;
            }
        }
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn group_fault_reports_injected_failure() {
        let outputs = map_all(&["a b c d e f g h\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let mut cfg = rcfg(0, 0, 1);
        cfg.fail_after_groups = Some(3);
        let err =
            run_reduce_task(&job, &outputs, &NetworkConfig::local_cluster(), &cfg).unwrap_err();
        match err {
            ReduceTaskError::Injected { virtual_elapsed } => {
                assert!(virtual_elapsed > 0);
            }
            other => panic!("expected injected failure, got {other:?}"),
        }
        // A budget beyond the group count never fires.
        cfg.fail_after_groups = Some(1000);
        let ok = run_reduce_task(&job, &outputs, &NetworkConfig::local_cluster(), &cfg).unwrap();
        assert_eq!(ok.pairs.len(), 8);
    }

    #[test]
    fn group_fault_fires_under_hash_grouping_too() {
        let outputs = map_all(&["a b c d\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let mut cfg = rcfg(0, 0, 1);
        cfg.grouping = Grouping::Hash;
        cfg.fail_after_groups = Some(2);
        let err =
            run_reduce_task(&job, &outputs, &NetworkConfig::local_cluster(), &cfg).unwrap_err();
        assert!(
            matches!(err, ReduceTaskError::Injected { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn cancelled_reduce_task_stops_before_fetching() {
        let outputs = map_all(&["a b\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let mut cfg = rcfg(0, 0, 1);
        cfg.cancel = Some(Arc::new(AtomicBool::new(true)));
        let err =
            run_reduce_task(&job, &outputs, &NetworkConfig::local_cluster(), &cfg).unwrap_err();
        assert!(matches!(err, ReduceTaskError::Cancelled), "got {err:?}");
    }

    #[test]
    fn injected_shuffle_faults_retry_transparently() {
        let outputs = map_all(&["a b a\n", "a c\n"], 1);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let clean = run_reduce_task(
            &job,
            &outputs,
            &NetworkConfig::local_cluster(),
            &rcfg(0, 0, 1),
        )
        .unwrap();
        let mut cfg = rcfg(0, 0, 1);
        cfg.faults = Some(Arc::new(
            crate::fault::FaultPlan::new()
                .shuffle_fail(0, 0)
                .shuffle_fail(1, 0),
        ));
        let faulty =
            run_reduce_task(&job, &outputs, &NetworkConfig::local_cluster(), &cfg).unwrap();
        assert_eq!(faulty.pairs, clean.pairs);
        assert_eq!(faulty.shuffle.retries, 2);
        // The virtual backoff lands on the idle ShuffleRetry op, keeping the
        // work breakdown (total_work) free of retry noise.
        assert_eq!(
            faulty.profile.ops.get(Op::ShuffleRetry),
            faulty.shuffle.backoff_ns
        );
        assert!(faulty.shuffle.backoff_ns > 0);
    }
}
