//! Execution of one map task: read → map → emit → (filter) → spill buffer →
//! sort/combine/spill → merge.
//!
//! All user and framework work runs for real and is measured; the
//! producer/consumer overlap between the map thread and the support thread
//! is advanced on the virtual clocks of [`Pipeline`]. The paper's
//! optimizations plug in here: an [`EmitFilter`] (frequency-buffering) sees
//! every emitted pair before the spill path, and a [`SpillController`]
//! (spill-matcher) picks the spill fraction after every spill.

use crate::controller::{EmitFilter, SpillController, SpillObservation};
use crate::io::frame::{FrameEncoder, FrameRunCursor, RunStore};
use crate::io::input::{InputSplit, SplitReader};
use crate::io::spill_file::SpillFile;
use crate::io::StreamingConfig;
use crate::job::{combine_values, Emit, Job};
use crate::metrics::{Op, OpTimes, SpillStat, Stopwatch, TaskProfile, VNanos};
use crate::task::merge::{
    merge_grouped, merge_grouped_cursors, reduce_sources_to_fan_in, CursorSource,
};
use crate::task::pipeline::{Admission, Pipeline};
use crate::task::segment::Segment;
use crate::task::spill::{spill_segment, spill_segment_framed};
use crate::trace::MapTraceRecorder;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Lower clamp for controller-proposed spill fractions; guards against a
/// degenerate controller melting the task into per-record spills.
const MIN_FRACTION: f64 = 0.01;

/// Configuration of one map-task execution.
pub struct MapTaskConfig {
    /// Task index within the job.
    pub task_id: usize,
    /// Node the task runs on (for the output's shuffle source).
    pub node: usize,
    /// Number of reduce partitions.
    pub num_partitions: usize,
    /// Spill buffer capacity M in accounted bytes (already net of any
    /// filter carve-out).
    pub buffer_capacity: usize,
    /// Spill-fraction policy.
    pub controller: Box<dyn SpillController>,
    /// Optional map-side emit filter (frequency-buffering).
    pub filter: Option<Box<dyn EmitFilter>>,
    /// Maximum merge fan-in (Hadoop's `io.sort.factor`).
    pub merge_fan_in: usize,
    /// Compress the final map-output partitions.
    pub compress_output: bool,
    /// Directory for spill and output files.
    pub spill_dir: PathBuf,
    /// Fault injection: abort (as a task failure) after this many input
    /// records.
    pub fail_after_records: Option<u64>,
    /// Fault injection: fail the spill write with this 0-based index. The
    /// attempt dies like a record fault (an `Injected` error, retried by
    /// the driver), but from inside the I/O path rather than user code.
    pub fail_spill: Option<usize>,
    /// Cooperative cancellation token, set by the driver when the job is
    /// aborting (another task exhausted its retries or hit an I/O error).
    /// Checked between input records so a doomed job does not keep worker
    /// threads busy.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Record a per-thread span timeline into `TaskProfile::trace`. Off by
    /// default; the untraced path allocates nothing.
    pub trace: bool,
    /// Out-of-core streaming knobs. With `framed` off (the default) the
    /// task runs the legacy byte-for-byte paths; with it on, spills and
    /// the map output are written as framed runs and the final merge
    /// reads them either as one-frame windows (streamed) or whole runs
    /// (`materialize_reads`) — same bytes, different residency.
    pub streaming: StreamingConfig,
}

/// A finished map task's output, fetchable by partition during shuffle.
#[derive(Debug)]
pub struct MapOutput {
    /// The merged, partition-indexed output file.
    pub file: SpillFile,
    /// Node that produced it (shuffle source).
    pub node: usize,
    /// Whether partitions are stored compressed (reducers must
    /// decompress after fetching).
    pub compressed: bool,
    /// Whether partitions are framed runs (per-frame compression with a
    /// frame index; see [`crate::io::frame`]). Framed output supersedes
    /// whole-blob compression, so `compressed` and `framed` are mutually
    /// exclusive.
    pub framed: bool,
}

/// Why a map task did not complete.
#[derive(Debug)]
pub enum MapTaskError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Injected fault (testing / failure-handling exercises). Carries the
    /// virtual time the attempt consumed before dying.
    Injected {
        /// Virtual nanoseconds elapsed at the point of failure.
        virtual_elapsed: VNanos,
    },
    /// The driver cancelled the job while this attempt was running; the
    /// attempt's partial state is discarded without being counted as a
    /// task failure.
    Cancelled,
}

impl From<io::Error> for MapTaskError {
    fn from(e: io::Error) -> Self {
        MapTaskError::Io(e)
    }
}

/// The spill path: active segment + virtual pipeline + spill files.
/// Implements [`Emit`] so it can serve directly as the filter's flush sink.
struct SpillPath<'a> {
    job: &'a dyn Job,
    num_partitions: usize,
    pipeline: Pipeline,
    seg: Segment,
    controller: Box<dyn SpillController>,
    spills: Vec<SpillFile>,
    stats: Vec<SpillStat>,
    ops: OpTimes,
    spill_dir: &'a Path,
    task_id: usize,
    /// Support-thread (consume) work performed inside the current emit
    /// call; the producer's measured time must exclude it.
    consume_pending_ns: u64,
    /// Deferred I/O error (the `Emit` trait is infallible).
    io_error: Option<io::Error>,
    /// Injected spill fault: fail the spill write with this index.
    fail_spill: Option<usize>,
    /// Write spills as framed runs (out-of-core format).
    framed: bool,
    /// Target uncompressed bytes per frame when `framed`.
    frame_bytes: usize,
    /// Set when `io_error` came from an injected fault, so the task is
    /// reported as `Injected` (retryable) instead of a hard I/O failure.
    injected: bool,
    /// Span recorder for the map/support lanes (tracing enabled only).
    trace: Option<Box<MapTraceRecorder>>,
}

impl<'a> SpillPath<'a> {
    fn append(&mut self, key: &[u8], value: &[u8]) {
        let part = self.job.partition(key, self.num_partitions);
        let cost = Segment::record_cost(key, value);
        if self.pipeline.admit(cost) == Admission::SpillThenAppend {
            self.do_spill();
        }
        self.seg.push(part, key, value);
        self.pipeline.appended(cost);
        if self.pipeline.should_spill() {
            self.do_spill();
        }
    }

    /// Sort/combine/write the active segment and advance the virtual
    /// pipeline. No-op on an empty segment.
    fn do_spill(&mut self) {
        if self.seg.is_empty() || self.io_error.is_some() {
            return;
        }
        if self.fail_spill == Some(self.spills.len()) {
            self.injected = true;
            self.io_error = Some(io::Error::other(format!(
                "injected fault: spill write {} of map task {}",
                self.spills.len(),
                self.task_id
            )));
            return;
        }
        let path = self
            .spill_dir
            .join(format!("t{}_s{}.spill", self.task_id, self.spills.len()));
        let spilled = if self.framed {
            spill_segment_framed(&self.seg, self.job, path, self.frame_bytes)
        } else {
            spill_segment(&self.seg, self.job, path)
        };
        match spilled {
            Ok(out) => {
                self.ops.add_nanos(Op::Sort, out.sort_ns);
                self.ops.add_nanos(Op::Combine, out.combine_ns);
                self.ops.add_nanos(Op::SpillWrite, out.write_ns);
                let consume_ns = out.consume_ns();
                let fraction = self.pipeline.fraction();
                // The consumer is idle at handover, so it starts at the
                // producer's clock — capture it for the support-lane span.
                let handover_at = self.pipeline.producer_clock();
                let (bytes, produce_ns) = self.pipeline.handover(consume_ns);
                if let Some(tr) = &mut self.trace {
                    tr.on_spill(handover_at, out.sort_ns, out.combine_ns, out.write_ns);
                }
                self.stats.push(SpillStat {
                    bytes,
                    records: out.records_in as usize,
                    records_after_combine: out.records_out as usize,
                    produce_ns,
                    consume_ns,
                    fraction,
                });
                let obs = SpillObservation {
                    bytes,
                    produce_ns,
                    consume_ns,
                    capacity: self.pipeline.capacity(),
                };
                let next = self.controller.next_fraction(&obs).clamp(MIN_FRACTION, 1.0);
                self.pipeline.set_fraction(next);
                self.consume_pending_ns = self.consume_pending_ns.saturating_add(consume_ns);
                self.seg.clear();
                self.spills.push(out.file);
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    fn take_consume_pending(&mut self) -> u64 {
        std::mem::take(&mut self.consume_pending_ns)
    }
}

impl<'a> Emit for SpillPath<'a> {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        self.append(key, value);
    }
}

/// The emitter handed to user `map()` code: times emits, routes pairs
/// through the optional filter, and keeps producer-time bookkeeping.
struct MapEmitter<'a> {
    path: SpillPath<'a>,
    filter: Option<Box<dyn EmitFilter>>,
    emit_ns: u64,
    handover_ns: u64,
    emitted: u64,
}

impl<'a> Emit for MapEmitter<'a> {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        let sw = Stopwatch::start();
        self.emitted += 1;
        let absorbed = match &mut self.filter {
            Some(f) => f.offer(key, value, &mut self.path),
            None => false,
        };
        if !absorbed {
            self.path.append(key, value);
        }
        let total = sw.elapsed_ns();
        let consumed = self.path.take_consume_pending();
        self.handover_ns = self.handover_ns.saturating_add(consumed);
        self.emit_ns = self.emit_ns.saturating_add(total.saturating_sub(consumed));
    }
}

#[inline]
fn is_cancelled(cancel: &Option<Arc<AtomicBool>>) -> bool {
    cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Run one map task over `split`.
pub fn run_map_task(
    job: &Arc<dyn Job>,
    split: &InputSplit,
    cfg: MapTaskConfig,
) -> Result<(MapOutput, TaskProfile), MapTaskError> {
    let mut controller = cfg.controller;
    let initial = controller.initial_fraction().clamp(MIN_FRACTION, 1.0);
    let path = SpillPath {
        job: job.as_ref(),
        num_partitions: cfg.num_partitions,
        pipeline: Pipeline::new(cfg.buffer_capacity, initial),
        seg: Segment::new(),
        controller,
        spills: Vec::new(),
        stats: Vec::new(),
        ops: OpTimes::new(),
        spill_dir: &cfg.spill_dir,
        task_id: cfg.task_id,
        consume_pending_ns: 0,
        io_error: None,
        fail_spill: cfg.fail_spill,
        framed: cfg.streaming.framed,
        frame_bytes: cfg.streaming.frame_bytes,
        injected: false,
        trace: cfg.trace.then(|| Box::new(MapTraceRecorder::new())),
    };
    let mut emitter = MapEmitter {
        path,
        filter: cfg.filter,
        emit_ns: 0,
        handover_ns: 0,
        emitted: 0,
    };

    // ---- producer loop: read → map → emit ---------------------------------
    let mut reader = SplitReader::with_chunk(split, cfg.streaming.input_chunk_bytes);
    let mut input_records = 0u64;
    // High-water mark of tracked buffer residency: spill-buffer bytes plus
    // the input chunk window plus (during the merge) cursor windows. This
    // is the quantity a RAM budget bounds; see `TaskProfile`.
    let mut peak_buffer_bytes = 0u64;
    // Producer-wait watermark for the trace: the delta per record is the
    // blocked-on-full-buffer time that preceded the record's busy time.
    let mut last_pw = 0u64;
    loop {
        let sw_rec = Stopwatch::start();
        let Some(rec) = reader.next() else { break };
        let read_ns = sw_rec.elapsed_ns();
        if let Some(f) = &mut emitter.filter {
            f.on_input_record();
        }
        job.map(&rec, &mut emitter);
        let total_ns = sw_rec.elapsed_ns();
        input_records += 1;

        let emit_ns = std::mem::take(&mut emitter.emit_ns);
        let handover_ns = std::mem::take(&mut emitter.handover_ns);
        // Combine work performed inside the filter is user code: report it
        // under `combine`, not `emit` (it remains producer-side time).
        let filter_combine_ns = emitter
            .filter
            .as_mut()
            .map_or(0, |f| f.take_user_combine_ns())
            .min(emit_ns);
        // Decompose the record's producer time as a clamped cascade so the
        // components sum to `produce_ns` *exactly* (the trace's map-lane
        // spans must tile the producer's busy time). In the normal case
        // (read + emit + handover ≤ total, the measured invariant) every
        // component equals the plain subtraction used before.
        let produce_ns = total_ns.saturating_sub(handover_ns);
        let read_c = read_ns.min(produce_ns);
        let emit_c = emit_ns.min(produce_ns - read_c);
        let map_c = produce_ns - read_c - emit_c;
        let combine_c = filter_combine_ns.min(emit_c);
        let ops = &mut emitter.path.ops;
        ops.add_nanos(Op::Read, read_c);
        ops.add_nanos(Op::Emit, emit_c - combine_c);
        ops.add_nanos(Op::Combine, combine_c);
        ops.add_nanos(Op::Map, map_c);
        emitter.path.pipeline.produce(produce_ns);
        let resident = emitter.path.pipeline.active_bytes() + reader.window_bytes();
        peak_buffer_bytes = peak_buffer_bytes.max(resident as u64);
        if emitter.path.trace.is_some() {
            let pw = emitter.path.pipeline.producer_wait;
            let wait = pw - last_pw;
            last_pw = pw;
            if let Some(tr) = &mut emitter.path.trace {
                tr.on_record(wait, read_c, map_c, emit_c - combine_c, combine_c);
            }
        }

        if let Some(e) = emitter.path.io_error.take() {
            if emitter.path.injected {
                return Err(MapTaskError::Injected {
                    virtual_elapsed: emitter.path.pipeline.pipeline_end(),
                });
            }
            return Err(e.into());
        }
        if cfg.fail_after_records == Some(input_records) {
            return Err(MapTaskError::Injected {
                virtual_elapsed: emitter.path.pipeline.pipeline_end(),
            });
        }
        if is_cancelled(&cfg.cancel) {
            return Err(MapTaskError::Cancelled);
        }
    }

    // ---- drain the filter ---------------------------------------------------
    let mut freq_absorbed = 0u64;
    if let Some(mut f) = emitter.filter.take() {
        let sw = Stopwatch::start();
        f.finish(&mut emitter.path);
        let total = sw.elapsed_ns();
        let consumed = emitter.path.take_consume_pending();
        let produce = total.saturating_sub(consumed);
        let combine = f.take_user_combine_ns().min(produce);
        emitter.path.ops.add_nanos(Op::Emit, produce - combine);
        emitter.path.ops.add_nanos(Op::Combine, combine);
        emitter.path.pipeline.produce(produce);
        if emitter.path.trace.is_some() {
            let pw = emitter.path.pipeline.producer_wait;
            let wait = pw - last_pw;
            last_pw = pw;
            if let Some(tr) = &mut emitter.path.trace {
                tr.on_record(wait, 0, 0, produce - combine, combine);
            }
        }
        freq_absorbed = f.absorbed();
    }

    // ---- final spill ---------------------------------------------------------
    let mut path = emitter.path;
    path.pipeline.drain_barrier();
    if path.trace.is_some() {
        let wait = path.pipeline.producer_wait - last_pw;
        if let Some(tr) = &mut path.trace {
            tr.on_barrier(wait);
        }
    }
    path.do_spill();
    if let Some(e) = path.io_error.take() {
        if path.injected {
            return Err(MapTaskError::Injected {
                virtual_elapsed: path.pipeline.pipeline_end(),
            });
        }
        return Err(e.into());
    }
    let pipeline_end = path.pipeline.pipeline_end();

    // ---- merge spills into the map output -----------------------------------
    if is_cancelled(&cfg.cancel) {
        return Err(MapTaskError::Cancelled);
    }
    let sw_merge = Stopwatch::start();
    let mut combine_in_merge_ns = 0u64;
    let out_path = cfg.spill_dir.join(format!("t{}_out.bin", cfg.task_id));
    let mut writer = SpillFile::create(out_path)?;
    let has_combiner = job.has_combiner();
    let scratch = cfg
        .spill_dir
        .join(format!("t{}_mergescratch.bin", cfg.task_id));
    if cfg.streaming.framed {
        // Framed merge. Streamed and materialized reads produce identical
        // output bytes: multi-pass batching, combiner application, and the
        // merged record stream are the same (pinned by the merge-module
        // tests); only how much of each run is resident differs.
        let frame_bytes = cfg.streaming.frame_bytes;
        let mut run_store: Option<RunStore> = None;
        for part in 0..cfg.num_partitions {
            let mut enc = FrameEncoder::new(frame_bytes);
            let mut records = 0u64;
            if cfg.streaming.materialize_reads {
                // Decode every frame of every run up front — whole-run
                // residency, the byte-identical reference point.
                let mut runs: Vec<Vec<u8>> = Vec::with_capacity(path.spills.len());
                for s in &path.spills {
                    let stored = s.read_partition(part)?;
                    let mut raw = Vec::new();
                    if !stored.is_empty() {
                        let metas = s
                            .frames(part)
                            .expect("framed spill has a frame index for non-empty partitions");
                        for m in metas {
                            raw.extend(
                                crate::io::frame::decode_frame(&stored, m)
                                    .map_err(io::Error::from)?,
                            );
                        }
                    }
                    runs.push(raw);
                }
                if runs.iter().all(|r| r.is_empty()) {
                    continue;
                }
                let resident: usize = runs.iter().map(Vec::len).sum();
                peak_buffer_bytes = peak_buffer_bytes.max((resident + frame_bytes) as u64);
                let multi = crate::task::merge::reduce_to_fan_in(
                    runs,
                    job.as_ref(),
                    has_combiner,
                    cfg.merge_fan_in,
                    &scratch,
                )?;
                combine_in_merge_ns = combine_in_merge_ns.saturating_add(multi.combine_ns);
                merge_grouped(
                    &multi.runs,
                    &|a, b| job.compare_keys(a, b),
                    |key, values| {
                        if has_combiner && values.len() > 1 {
                            let sw_c = Stopwatch::start();
                            let combined = combine_values(job.as_ref(), key, values);
                            combine_in_merge_ns =
                                combine_in_merge_ns.saturating_add(sw_c.elapsed_ns());
                            for v in &combined {
                                enc.push_record(key, v);
                                records += 1;
                            }
                        } else {
                            for v in values {
                                enc.push_record(key, v);
                                records += 1;
                            }
                        }
                    },
                );
            } else {
                // Streamed: sources open lazily (batch by batch), so at
                // most fan_in + 1 frame windows are live at once.
                if path.spills.iter().all(|s| s.frames(part).is_none()) {
                    continue;
                }
                let sources: Vec<CursorSource<'_>> = path
                    .spills
                    .iter()
                    .map(|s| CursorSource::Spill { file: s, part })
                    .collect();
                let store = match &mut run_store {
                    Some(s) => s,
                    None => run_store.insert(RunStore::create(
                        cfg.spill_dir
                            .join(format!("t{}_mergescratch.frames", cfg.task_id)),
                    )?),
                };
                let multi = reduce_sources_to_fan_in(
                    sources,
                    job.as_ref(),
                    has_combiner,
                    cfg.merge_fan_in,
                    frame_bytes,
                    store,
                )?;
                combine_in_merge_ns = combine_in_merge_ns.saturating_add(multi.combine_ns);
                let mut cursors = multi.cursors;
                let resident: usize = cursors.iter().map(FrameRunCursor::window_bytes).sum();
                peak_buffer_bytes = peak_buffer_bytes.max((resident + frame_bytes) as u64);
                merge_grouped_cursors(
                    &mut cursors,
                    &|a, b| job.compare_keys(a, b),
                    |key, values| {
                        if has_combiner && values.len() > 1 {
                            let sw_c = Stopwatch::start();
                            let combined = combine_values(job.as_ref(), key, values);
                            combine_in_merge_ns =
                                combine_in_merge_ns.saturating_add(sw_c.elapsed_ns());
                            for v in &combined {
                                enc.push_record(key, v);
                                records += 1;
                            }
                        } else {
                            for v in values {
                                enc.push_record(key, v);
                                records += 1;
                            }
                        }
                    },
                )?;
            }
            let (stored, metas, _) = enc.finish();
            writer.write_framed_partition(part, &stored, metas, records)?;
        }
        let file = writer.finish()?;
        let merge_total_ns = sw_merge.elapsed_ns();
        let cim = combine_in_merge_ns.min(merge_total_ns);
        path.ops.add_nanos(Op::Merge, merge_total_ns - cim);
        path.ops.add_nanos(Op::Combine, cim);
        let trace = path
            .trace
            .take()
            .map(|tr| Box::new(tr.finish(pipeline_end, merge_total_ns - cim, cim)));
        let profile = TaskProfile {
            ops: path.ops,
            virtual_duration: pipeline_end + merge_total_ns,
            produce_busy: path.pipeline.produce_busy,
            consume_busy: path.pipeline.consume_busy,
            producer_wait: path.pipeline.producer_wait,
            consumer_wait: path.pipeline.consumer_wait,
            spills: path.stats,
            input_records,
            emitted_records: emitter.emitted,
            freq_absorbed_records: freq_absorbed,
            output_bytes: file.total_bytes(),
            peak_buffer_bytes,
            trace,
        };
        return Ok((
            MapOutput {
                file,
                node: cfg.node,
                compressed: false,
                framed: true,
            },
            profile,
        ));
    }
    for part in 0..cfg.num_partitions {
        let runs: Vec<Vec<u8>> = path
            .spills
            .iter()
            .map(|s| s.read_partition(part))
            .collect::<io::Result<_>>()?;
        if runs.iter().all(|r| r.is_empty()) {
            continue;
        }
        let resident: usize = runs.iter().map(Vec::len).sum();
        peak_buffer_bytes = peak_buffer_bytes.max(resident as u64);
        // Bound the final pass's fan-in, merging through scratch disk as
        // Hadoop does when spills exceed io.sort.factor.
        let multi = crate::task::merge::reduce_to_fan_in(
            runs,
            job.as_ref(),
            has_combiner,
            cfg.merge_fan_in,
            &scratch,
        )?;
        combine_in_merge_ns = combine_in_merge_ns.saturating_add(multi.combine_ns);
        let runs = multi.runs;
        if cfg.compress_output {
            // Merge into an in-memory run, compress it, store as one blob;
            // reducers decompress after fetching (trading CPU for shuffle
            // bytes — the paper's future-work item).
            let mut merged = Vec::new();
            let mut records = 0u64;
            merge_grouped(&runs, &|a, b| job.compare_keys(a, b), |key, values| {
                if has_combiner && values.len() > 1 {
                    let sw_c = Stopwatch::start();
                    let combined = combine_values(job.as_ref(), key, values);
                    combine_in_merge_ns = combine_in_merge_ns.saturating_add(sw_c.elapsed_ns());
                    for v in &combined {
                        crate::codec::write_record(&mut merged, key, v);
                        records += 1;
                    }
                } else {
                    for v in values {
                        crate::codec::write_record(&mut merged, key, v);
                        records += 1;
                    }
                }
            });
            let blob = crate::io::compress::compress(&merged);
            writer.write_raw_partition(part, &blob, records)?;
        } else {
            writer.start_partition(part)?;
            let mut write_err: Option<io::Error> = None;
            merge_grouped(&runs, &|a, b| job.compare_keys(a, b), |key, values| {
                if write_err.is_some() {
                    return;
                }
                let mut write = |k: &[u8], v: &[u8]| {
                    if let Err(e) = writer.write_record(k, v) {
                        write_err = Some(e);
                    }
                };
                if has_combiner && values.len() > 1 {
                    let sw_c = Stopwatch::start();
                    let combined = combine_values(job.as_ref(), key, values);
                    combine_in_merge_ns = combine_in_merge_ns.saturating_add(sw_c.elapsed_ns());
                    for v in &combined {
                        write(key, v);
                    }
                } else {
                    for v in values {
                        write(key, v);
                    }
                }
            });
            if let Some(e) = write_err {
                return Err(e.into());
            }
        }
    }
    let file = writer.finish()?;
    let merge_total_ns = sw_merge.elapsed_ns();
    // Clamp so Merge + Combine == merge_total_ns exactly (combine time is
    // measured inside the merge stopwatch, so the clamp never bites in
    // practice; the trace's merge spans must tile the merge interval).
    let cim = combine_in_merge_ns.min(merge_total_ns);
    path.ops.add_nanos(Op::Merge, merge_total_ns - cim);
    path.ops.add_nanos(Op::Combine, cim);

    // ---- profile -------------------------------------------------------------
    let trace = path
        .trace
        .take()
        .map(|tr| Box::new(tr.finish(pipeline_end, merge_total_ns - cim, cim)));
    let profile = TaskProfile {
        ops: path.ops,
        virtual_duration: pipeline_end + merge_total_ns,
        produce_busy: path.pipeline.produce_busy,
        consume_busy: path.pipeline.consume_busy,
        producer_wait: path.pipeline.producer_wait,
        consumer_wait: path.pipeline.consumer_wait,
        spills: path.stats,
        input_records,
        emitted_records: emitter.emitted,
        freq_absorbed_records: freq_absorbed,
        output_bytes: file.total_bytes(),
        peak_buffer_bytes,
        trace,
    };
    Ok((
        MapOutput {
            file,
            node: cfg.node,
            compressed: cfg.compress_output,
            framed: false,
        },
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_u64, encode_u64, read_record};
    use crate::controller::FixedSpill;
    use crate::io::dfs::SimDfs;
    use crate::job::{Record, ValueCursor, ValueSink};

    struct WordSum;
    impl Job for WordSum {
        fn name(&self) -> &str {
            "wordsum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                e.emit(w, &encode_u64(1));
            }
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("textmr-maptask-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn one_split(text: &str) -> InputSplit {
        let mut dfs = SimDfs::new(1, 1 << 20);
        dfs.put("in", text.as_bytes().to_vec());
        InputSplit::from_file(dfs.get("in").unwrap(), 0).remove(0)
    }

    fn cfg(buffer: usize) -> MapTaskConfig {
        MapTaskConfig {
            task_id: 0,
            node: 0,
            num_partitions: 2,
            buffer_capacity: buffer,
            controller: Box::new(FixedSpill(0.8)),
            filter: None,
            merge_fan_in: 10,
            compress_output: false,
            spill_dir: tmpdir(),
            fail_after_records: None,
            fail_spill: None,
            cancel: None,
            trace: false,
            streaming: StreamingConfig::default(),
        }
    }

    fn output_counts(out: &MapOutput, parts: usize) -> std::collections::HashMap<String, u64> {
        let mut m = std::collections::HashMap::new();
        for p in 0..parts {
            let run = out.file.read_partition(p).unwrap();
            let mut pos = 0;
            while let Some((k, v)) = read_record(&run, &mut pos) {
                *m.entry(String::from_utf8(k.to_vec()).unwrap()).or_insert(0) +=
                    decode_u64(v).unwrap();
            }
        }
        m
    }

    #[test]
    fn small_input_single_spill() {
        let split = one_split("a b a\nb c\n");
        let (out, prof) = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, cfg(1 << 20))
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        assert_eq!(prof.input_records, 2);
        assert_eq!(prof.emitted_records, 5);
        assert_eq!(prof.spills.len(), 1);
        let counts = output_counts(&out, 2);
        assert_eq!(counts["a"], 2);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
    }

    #[test]
    fn tiny_buffer_forces_many_spills_same_result() {
        let text: String = (0..200)
            .map(|i| format!("w{} common x\n", i % 17))
            .collect();
        let split = one_split(&text);
        let job: Arc<dyn Job> = Arc::new(WordSum);
        let (out_big, _) = run_map_task(&job, &split, cfg(1 << 22))
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        let mut small = cfg(512);
        small.task_id = 1;
        let (out_small, prof_small) = run_map_task(&job, &split, small)
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        assert!(
            prof_small.spills.len() > 3,
            "expected many spills, got {}",
            prof_small.spills.len()
        );
        assert_eq!(output_counts(&out_big, 2), output_counts(&out_small, 2));
    }

    #[test]
    fn combiner_shrinks_output() {
        let text: String = "the the the the\n".repeat(100);
        let split = one_split(&text);
        let (out, prof) = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, cfg(1 << 20))
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        assert_eq!(prof.emitted_records, 400);
        assert_eq!(out.file.total_records(), 1);
        let counts = output_counts(&out, 2);
        assert_eq!(counts["the"], 400);
    }

    #[test]
    fn fault_injection_reports_partial_progress() {
        let split = one_split("a\nb\nc\nd\n");
        let mut c = cfg(1 << 20);
        c.fail_after_records = Some(2);
        let err = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, c).unwrap_err();
        match err {
            MapTaskError::Injected { .. } => {}
            other => panic!("expected injected failure, got {other:?}"),
        }
    }

    #[test]
    fn spill_fault_reports_injected_failure() {
        let text: String = (0..200)
            .map(|i| format!("w{} common x\n", i % 17))
            .collect();
        let split = one_split(&text);
        let mut c = cfg(512); // tiny buffer → several spills
        c.fail_spill = Some(1);
        let err = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, c).unwrap_err();
        match err {
            MapTaskError::Injected { .. } => {}
            other => panic!("expected injected spill failure, got {other:?}"),
        }
    }

    #[test]
    fn spill_fault_beyond_last_spill_never_fires() {
        let split = one_split("a b a\nb c\n");
        let mut c = cfg(1 << 20); // one final spill only
        c.fail_spill = Some(5);
        let (_, prof) = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, c)
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        assert_eq!(prof.spills.len(), 1);
    }

    #[test]
    fn cancelled_task_stops_early() {
        let split = one_split("a b\nc d\ne f\n");
        let mut c = cfg(1 << 20);
        c.cancel = Some(Arc::new(AtomicBool::new(true)));
        let err = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, c).unwrap_err();
        assert!(matches!(err, MapTaskError::Cancelled), "got {err:?}");
    }

    #[test]
    fn profile_times_are_consistent() {
        let text: String = (0..500)
            .map(|i| format!("word{} b c d e\n", i % 29))
            .collect();
        let split = one_split(&text);
        let (_, prof) = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, cfg(4096))
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        // Virtual duration covers at least the busy producer time.
        assert!(prof.virtual_duration >= prof.produce_busy);
        // Consume busy equals the sum of per-spill consume times.
        let consume_sum: u64 = prof.spills.iter().map(|s| s.consume_ns).sum();
        assert_eq!(prof.consume_busy, consume_sum);
        // Spilled bytes equal total emitted payload + metadata.
        assert!(
            prof.spills.iter().map(|s| s.records).sum::<usize>() as u64 == prof.emitted_records
        );
    }

    fn framed_output_counts(
        out: &MapOutput,
        parts: usize,
    ) -> std::collections::HashMap<String, u64> {
        assert!(out.framed);
        let mut m = std::collections::HashMap::new();
        for p in 0..parts {
            let stored = out.file.read_partition(p).unwrap();
            if stored.is_empty() {
                continue;
            }
            let mut raw = Vec::new();
            for meta in crate::io::frame::scan_frames(&stored).unwrap() {
                raw.extend(crate::io::frame::decode_frame(&stored, &meta).unwrap());
            }
            let mut pos = 0;
            while let Some((k, v)) = read_record(&raw, &mut pos) {
                *m.entry(String::from_utf8(k.to_vec()).unwrap()).or_insert(0) +=
                    decode_u64(v).unwrap();
            }
        }
        m
    }

    #[test]
    fn framed_streamed_matches_materialized_byte_for_byte() {
        let text: String = (0..300)
            .map(|i| format!("w{} common tail{}\n", i % 23, i % 7))
            .collect();
        let split = one_split(&text);
        let job: Arc<dyn Job> = Arc::new(WordSum);

        let mut legacy = cfg(512);
        legacy.task_id = 10;
        let (out_legacy, _) = run_map_task(&job, &split, legacy).unwrap();

        let mut streamed = cfg(512);
        streamed.task_id = 11;
        streamed.streaming = crate::io::StreamingConfig::streamed();
        let (out_s, prof_s) = run_map_task(&job, &split, streamed).unwrap();

        let mut mat = cfg(512);
        mat.task_id = 12;
        mat.streaming = crate::io::StreamingConfig::materialized();
        let (out_m, prof_m) = run_map_task(&job, &split, mat).unwrap();

        // Same logical output as the legacy path.
        assert_eq!(
            framed_output_counts(&out_s, 2),
            output_counts(&out_legacy, 2)
        );
        // Byte-identical partitions and timing-free signatures across
        // residency modes.
        for p in 0..2 {
            assert_eq!(
                out_s.file.read_partition(p).unwrap(),
                out_m.file.read_partition(p).unwrap(),
                "partition {p} bytes differ streamed vs materialized"
            );
        }
        assert_eq!(prof_s.signature(), prof_m.signature());
        assert!(prof_s.spills.len() > 3, "want multi-spill coverage");
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let split = one_split("");
        let (out, prof) = run_map_task(&(Arc::new(WordSum) as Arc<dyn Job>), &split, cfg(1024))
            .map_err(|e| format!("{e:?}"))
            .unwrap();
        assert_eq!(prof.emitted_records, 0);
        assert_eq!(out.file.total_records(), 0);
    }
}
