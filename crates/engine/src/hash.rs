//! FNV-1a hashing for the hot-path hash tables.
//!
//! The frequency buffer performs one hash lookup per emitted record — the
//! "small profiling and hashing overhead" the paper says must stay below
//! the savings. `std`'s default SipHash is DoS-resistant but several times
//! slower on short text keys; FNV-1a is the standard fast choice for
//! trusted keys (cf. the perf-book guidance this repo follows). Keys here
//! are corpus words / URLs the job itself produced, so HashDoS is not a
//! concern.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit [`Hasher`].
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with FNV-1a.
// textmr-lint: allow(unordered-iteration, reason = "alias definition: FnvBuildHasher is fixed-seed, so iteration order is a deterministic function of the key set (unlike RandomState); users must still sort anything that reaches outputs or signatures")
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` keyed with FNV-1a.
// textmr-lint: allow(unordered-iteration, reason = "alias definition: fixed-seed hasher, deterministic iteration; see FnvHashMap note")
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_keys_and_is_deterministic() {
        let mut m: FnvHashMap<Vec<u8>, u32> = FnvHashMap::default();
        m.insert(b"the".to_vec(), 1);
        m.insert(b"they".to_vec(), 2);
        assert_eq!(m.get(b"the".as_slice()), Some(&1));
        assert_eq!(m.get(b"they".as_slice()), Some(&2));
        assert_eq!(m.get(b"them".as_slice()), None);
    }

    #[test]
    fn hasher_matches_fnv1a_for_single_write() {
        let mut h = FnvHasher::default();
        h.write(b"hello");
        assert_eq!(h.finish(), crate::job::fnv1a(b"hello"));
    }
}
