//! Streaming Chrome-trace export with bounded resident state.
//!
//! [`JobTrace::to_chrome_json`](super::JobTrace::to_chrome_json) holds the
//! whole trace — every entry's lanes *and* the full rendered JSON string —
//! in memory at once. For an out-of-core run that is exactly the kind of
//! unbounded buffer the engine is trying to avoid: a multi-GB input
//! produces traces whose JSON dwarfs the configured map budget.
//!
//! [`TraceStreamWriter`] inverts the lifecycle. Span events are formatted
//! and appended to an on-disk spool file as each [`TraceEntry`] is pushed;
//! the entry can be dropped immediately afterwards. The writer keeps only
//! O(lanes) state in memory — the thread-name table (one short string per
//! `(node, tid)` lane, independent of run length) — plus a small copy
//! buffer. [`TraceStreamWriter::finish`] then assembles the final file:
//! the self-describing `textmr` header (which needs the wall clock and
//! happens-before edges, known only at the end), the process/thread
//! metadata events, the spooled span events copied through in bounded
//! chunks, and the closing bracket.
//!
//! **Byte parity is guaranteed by construction**: the writer calls the
//! same `pub(crate)` emission helpers as the batch exporter
//! (`write_trace_header`, `write_meta_events`, `write_entry_events`),
//! so a streamed file is byte-identical to `to_chrome_json()` over the
//! same entries — pinned by this module's tests and by the cluster test
//! that diffs a streamed job export against its batch twin. The
//! determinism audit can therefore treat streamed traces exactly like
//! batch ones.
//!
//! One subtlety the parity tests pin: metadata events always precede span
//! events in the batch export, so every spooled span event is written
//! comma-prefixed. If a degenerate trace has no metadata events at all
//! (zero nodes and no lanes), `finish` drops the spool's leading comma so
//! the JSON stays valid either way.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::{
    note_entry_threads, write_entry_events, write_meta_events, write_trace_header, LaneLayout,
    TraceEdge, TraceEntry,
};
use crate::metrics::VNanos;

/// Incremental Chrome-trace writer: push entries as they retire, finish
/// with the wall clock and edges once the run is over.
///
/// Create with the cluster's lane geometry (the same values
/// [`JobTrace`](super::JobTrace) carries: clamped slot counts and fetcher
/// width), push every [`TraceEntry`] **in the order the batch exporter
/// would iterate them**, then call [`finish`](TraceStreamWriter::finish).
/// Dropping an unfinished writer removes the spool file; the final path is
/// only ever created by a successful `finish`, so readers never observe a
/// half-written trace.
#[derive(Debug)]
pub struct TraceStreamWriter {
    path: PathBuf,
    spool_path: PathBuf,
    spool: Option<BufWriter<File>>,
    nodes: usize,
    layout: LaneLayout,
    threads: BTreeMap<(usize, usize), String>,
    entries: u64,
}

impl TraceStreamWriter {
    /// Open a streaming writer targeting `path`.
    ///
    /// Span events spool to `<path>.spool` until [`finish`] assembles the
    /// final file. `map_slots`/`reduce_slots`/`fetchers` must match the
    /// values the equivalent [`JobTrace`](super::JobTrace) would carry
    /// (the driver clamps slot counts to ≥ 1 and fetchers to the NIC
    /// model's maximum before constructing either).
    ///
    /// [`finish`]: TraceStreamWriter::finish
    pub fn create(
        path: PathBuf,
        nodes: usize,
        map_slots: usize,
        reduce_slots: usize,
        fetchers: usize,
    ) -> io::Result<TraceStreamWriter> {
        let spool_path = PathBuf::from(format!("{}.spool", path.display()));
        // Read+write: `finish` seeks back and copies the spool into the
        // final file through the same descriptor.
        let spool = BufWriter::new(
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&spool_path)?,
        );
        Ok(TraceStreamWriter {
            path,
            spool_path,
            spool: Some(spool),
            nodes,
            layout: LaneLayout {
                map_slots,
                reduce_slots,
                fetchers,
            },
            threads: BTreeMap::new(),
            entries: 0,
        })
    }

    /// Spool one entry's span events and note its lane labels.
    ///
    /// The entry's lanes are not retained — the caller may drop the entry
    /// as soon as this returns, which is the whole point.
    pub fn push_entry(&mut self, e: &TraceEntry) -> io::Result<()> {
        note_entry_threads(&self.layout, e, &mut self.threads);
        let mut buf = String::new();
        // Metadata events precede span events in the final file, so every
        // spooled event is comma-prefixed (`first = false`); `finish`
        // strips the lead comma in the no-metadata degenerate case.
        let mut first = false;
        write_entry_events(&mut buf, &self.layout, e, &mut first);
        self.entries += 1;
        self.spool
            .as_mut()
            .expect("spool lives until finish")
            .write_all(buf.as_bytes())
    }

    /// Entries pushed so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Assemble the final trace file and remove the spool.
    ///
    /// `wall` and `edges` go in the `textmr` header — they are the only
    /// pieces of the export that need the whole run to have completed,
    /// which is why they arrive here rather than at [`create`]. The file
    /// at the target path is complete and valid once this returns.
    ///
    /// [`create`]: TraceStreamWriter::create
    pub fn finish(mut self, wall: VNanos, edges: &[TraceEdge]) -> io::Result<()> {
        let spool = self.spool.take().expect("finish runs once");
        let mut spool = spool.into_inner().map_err(|e| e.into_error())?;
        spool.seek(SeekFrom::Start(0))?;

        let mut head = String::with_capacity(4096);
        write_trace_header(
            &mut head,
            self.nodes,
            self.layout.map_slots,
            self.layout.reduce_slots,
            self.layout.fetchers,
            wall,
            edges,
        );
        let mut first = true;
        write_meta_events(&mut head, self.nodes, &self.threads, &mut first);

        let mut out = BufWriter::new(File::create(&self.path)?);
        out.write_all(head.as_bytes())?;
        copy_spool(&mut spool, &mut out, first)?;
        out.write_all(b"]}")?;
        out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        drop(spool);
        std::fs::remove_file(&self.spool_path)?;
        Ok(())
    }

    /// Final path this writer targets.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TraceStreamWriter {
    fn drop(&mut self) {
        // Unfinished writer: don't leave a stale spool behind. `finish`
        // already removed it (and took `spool`), so this only fires on
        // early drops and error paths.
        if self.spool.take().is_some() {
            let _ = std::fs::remove_file(&self.spool_path);
        }
    }
}

/// Copy the spooled span events through a bounded chunk buffer. When no
/// metadata event was written (`drop_lead_comma`), skip the spool's
/// leading comma so the events array stays valid JSON.
fn copy_spool<W: Write>(spool: &mut File, out: &mut W, drop_lead_comma: bool) -> io::Result<()> {
    let mut buf = vec![0u8; 64 * 1024];
    let mut lead = drop_lead_comma;
    loop {
        let n = spool.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        let mut chunk = &buf[..n];
        if lead {
            debug_assert!(chunk[0] == b',', "spooled events are comma-prefixed");
            chunk = &chunk[1..];
            lead = false;
        }
        out.write_all(chunk)?;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        AttemptKind, EdgeEnd, EdgeKind, EntryDetail, IdleKind, JobTrace, LaneBuilder, LaneRole,
        SpanKind, TaskKind,
    };
    use super::*;
    use crate::metrics::Op;

    fn lanes_entry(round: usize, task: usize, node: usize, slot: usize, at: VNanos) -> TraceEntry {
        let mut map = LaneBuilder::new(LaneRole::Map);
        map.push(700, SpanKind::Op(Op::Read));
        map.push(300, SpanKind::Op(Op::Map));
        let mut support = LaneBuilder::new(LaneRole::Support);
        support.pad_to(600, IdleKind::Done);
        support.push(400, SpanKind::Op(Op::SpillWrite));
        let mut lanes = vec![map.finish(), support.finish()];
        for lane in &mut lanes {
            for s in &mut lane.spans {
                s.start += at;
                s.end += at;
            }
        }
        TraceEntry {
            kind: TaskKind::Map,
            job: 0,
            round,
            task,
            attempt: 0,
            backup: false,
            node,
            slot,
            factor: 1,
            start: at,
            end: at + 1000,
            detail: EntryDetail::Lanes(lanes),
        }
    }

    fn flat_entry(task: usize, node: usize, at: VNanos) -> TraceEntry {
        TraceEntry {
            kind: TaskKind::Reduce,
            job: 0,
            round: 0,
            task,
            attempt: 1,
            backup: true,
            node,
            slot: 0,
            factor: 2,
            start: at,
            end: at + 500,
            detail: EntryDetail::Flat(AttemptKind::Lost),
        }
    }

    fn sample_trace() -> JobTrace {
        JobTrace {
            nodes: 2,
            map_slots: 2,
            reduce_slots: 1,
            fetchers: 2,
            wall: 9_999,
            entries: vec![
                lanes_entry(0, 0, 0, 0, 0),
                lanes_entry(0, 1, 1, 1, 0),
                flat_entry(0, 1, 2000),
                lanes_entry(1, 2, 0, 0, 3000),
            ],
            edges: vec![TraceEdge {
                kind: EdgeKind::Slot,
                src: EdgeEnd {
                    entry: 0,
                    at: Some((0, 1)),
                },
                dst: EdgeEnd { entry: 1, at: None },
            }],
        }
    }

    fn stream_bytes(trace: &JobTrace, dir: &Path) -> Vec<u8> {
        let path = dir.join("streamed.json");
        let mut w = TraceStreamWriter::create(
            path.clone(),
            trace.nodes,
            trace.map_slots,
            trace.reduce_slots,
            trace.fetchers,
        )
        .unwrap();
        for e in &trace.entries {
            w.push_entry(e).unwrap();
        }
        assert_eq!(w.entries(), trace.entries.len() as u64);
        w.finish(trace.wall, &trace.edges).unwrap();
        assert!(!dir.join("streamed.json.spool").exists(), "spool left over");
        std::fs::read(path).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("textmr-tstream-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn streamed_bytes_match_batch_export() {
        let dir = tmp_dir("parity");
        let trace = sample_trace();
        let streamed = stream_bytes(&trace, &dir);
        assert_eq!(streamed, trace.to_chrome_json().into_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_file_round_trips_and_validates() {
        let dir = tmp_dir("roundtrip");
        let trace = sample_trace();
        let text = String::from_utf8(stream_bytes(&trace, &dir)).unwrap();
        super::super::validate_chrome_trace(&text).unwrap();
        // Lossless like the batch export: importing the streamed file and
        // re-exporting reproduces it byte-for-byte.
        let reimported = JobTrace::from_chrome_json(&text).unwrap();
        assert_eq!(reimported.to_chrome_json(), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_edgeless_traces_stream_identically() {
        let dir = tmp_dir("empty");
        for trace in [
            JobTrace {
                nodes: 1,
                map_slots: 1,
                reduce_slots: 1,
                fetchers: 1,
                wall: 0,
                entries: vec![],
                edges: vec![],
            },
            // Degenerate: no nodes and no entries — no metadata events at
            // all, exercising the lead-comma strip (trivially, an empty
            // spool) and the `"traceEvents":[]` form.
            JobTrace::default(),
        ] {
            let streamed = stream_bytes(&trace, &dir);
            assert_eq!(streamed, trace.to_chrome_json().into_bytes());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_writer_removes_spool() {
        let dir = tmp_dir("drop");
        let path = dir.join("t.json");
        let w = TraceStreamWriter::create(path.clone(), 1, 1, 1, 1).unwrap();
        assert!(dir.join("t.json.spool").exists());
        drop(w);
        assert!(!dir.join("t.json.spool").exists());
        assert!(!path.exists(), "final file must not exist without finish");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
