//! Vector-clock happens-before race checking over a [`JobTrace`].
//!
//! [`JobTrace::check`] proves per-lane tiling and per-slot non-overlap, but
//! says nothing about *cross-lane* ordering: a trace can tile perfectly
//! while a reducer fetches a map output before the map task sealed it, or a
//! merge reads a spill file the support thread has not written yet. This
//! module checks the schedule's synchronization edges and reports any pair
//! of spans that touch the same logical resource without a happens-before
//! path between them — a virtual-time race.
//!
//! ## Model
//!
//! * **Threads**: every lane of every entry is a thread; a flat attempt
//!   (failed / speculation-lost / dead-backup) is a one-event thread.
//! * **Events**: a thread's spans in lane order. Program order within a
//!   thread is always a happens-before edge.
//! * **Synchronization edges** come from one of two places:
//!   * **Recorded** ([`JobTrace::edges`] non-empty): the unified event
//!     loop emitted the edges while scheduling — slot chains, retries,
//!     and speculative hand-offs off the event graph; map-output
//!     publication, spill hand-ins, and shuffle barriers off the
//!     producer-side task structure. The checker consumes them as ground
//!     truth instead of reconstructing orderings from span timings.
//!   * **Derived** (legacy traces with no recorded edges): the checker
//!     reconstructs the same edge families from the entries themselves —
//!     slot reuse on one `(node, phase, slot)` ordered by span timing,
//!     retry chains by attempt number, map-output publication to each
//!     flow group (matched by [`Span::flow`] tag), spill hand-offs, and
//!     the per-flow shuffle barrier into the reduce lane's first op.
//!
//!   Either way an edge is *applied* only when timing-consistent (the
//!   source event ends no later than the destination starts): an edge the
//!   timing contradicts is no evidence of ordering, and dropping it is
//!   what surfaces the race on the resource it was meant to order.
//!   Recorded endpoints that no longer resolve (a mutated trace dropped
//!   an entry, lane, or span) are dropped the same way.
//! * **Resources**: scheduler slots, task attempt serialization, map
//!   outputs, spill files, fetched runs, and reduce output partitions.
//!   Accesses are always derived from the entries' structure — recorded
//!   edges assert *orderings*, never hide an access. Two accesses
//!   conflict when they share a resource and at least one writes; a
//!   conflict with no happens-before path in either direction is a race.
//!   Structural invariants (one attempt of record per task, support
//!   bursts paired with spill-wait hand-offs) are checked unconditionally
//!   in both modes.
//!
//! Because every applied edge is timing-consistent and consecutive lane
//! spans touch, any happens-before chain is monotone in virtual time — the
//! checker can never "order" two time-overlapping accesses, so a reported
//! race is always a genuine lack of synchronization evidence.
//!
//! ## The frequent-key registry
//!
//! The registry synchronizes in *real* time (publisher / waiter handshake
//! inside a map wave); its outcome is deterministic and its waits are
//! invisible in virtual time by design, so the publisher's and waiters'
//! virtual spans may freely overlap. Traces from the unified loop record
//! the designated-publisher hand-offs as [`EdgeKind::Registry`] edges;
//! the checker validates them as *protocol* edges — endpoints must be map
//! entries, the publisher must carry the node's lowest task id, no waiter
//! may have two publishers or be a publisher itself, and a publisher's
//! node must not host an unconnected map task — instead of feeding them
//! to the vector clocks, where their timing-overlap would be
//! misread as a race.
//!
//! ## Deliberate non-resources
//!
//! * The **NIC ingress** is a fairly-*shared* resource: concurrent
//!   transfers into one node are the NIC model's whole point, not a race.
//!   Transfer spans are tallied in [`RaceReport::accesses`] for visibility
//!   but carry no exclusivity obligation; per-fetcher-slot exclusivity is
//!   already proven by lane tiling.

use super::{
    EdgeEnd, EdgeKind, EntryDetail, IdleKind, JobTrace, LaneRole, Span, SpanKind, TaskKind,
};
use crate::metrics::{Op, VNanos};
use std::collections::BTreeMap;

/// A reference to one event: `(thread index, event index)`.
type EvRef = (usize, usize);

/// What a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two conflicting accesses with no happens-before path.
    Race,
    /// A structural invariant of the schedule shape is broken (duplicate
    /// attempt of record, support burst with no hand-off, missing
    /// producer).
    Structure,
}

/// One finding of the race checker.
#[derive(Debug, Clone)]
pub struct RaceDiagnostic {
    /// Race or structural violation.
    pub kind: RaceKind,
    /// The logical resource involved (e.g. `mapout:3`, `slot:n0/map/1`).
    pub resource: String,
    /// Human-readable description of the finding.
    pub message: String,
}

/// Result of [`check_races`].
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Logical threads examined (lanes + flat attempts).
    pub threads: usize,
    /// Total events across all threads.
    pub events: usize,
    /// Synchronization edges that were timing-consistent and used.
    pub edges: usize,
    /// Accesses tallied per resource kind (`slot`, `task`, `mapout`,
    /// `spill`, `runs`, `out`, `nic-shared`).
    pub accesses: BTreeMap<&'static str, usize>,
    /// All findings, races first.
    pub diagnostics: Vec<RaceDiagnostic>,
}

impl RaceReport {
    /// True when the trace shows no races and no structural violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render a compact text summary (one line per finding).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "race check: {} threads, {} events, {} edges, {} findings",
            self.threads,
            self.events,
            self.edges,
            self.diagnostics.len()
        );
        for (kind, n) in &self.accesses {
            let _ = writeln!(out, "  accesses[{kind}] = {n}");
        }
        for d in &self.diagnostics {
            let tag = match d.kind {
                RaceKind::Race => "RACE",
                RaceKind::Structure => "STRUCTURE",
            };
            let _ = writeln!(out, "  {tag} {}: {}", d.resource, d.message);
        }
        out
    }
}

/// One logical thread: a lane of an entry, or a flat attempt.
struct Thread {
    /// `(start, end)` per event, in lane order.
    events: Vec<(VNanos, VNanos)>,
}

/// One access to a logical resource, spanning `first..=last` events on a
/// single envelope (both ends may be the same event).
struct Access {
    resource: String,
    res_kind: &'static str,
    write: bool,
    first: EvRef,
    last: EvRef,
    who: String,
}

/// Run the happens-before race check over a job trace.
pub fn check_races(trace: &JobTrace) -> RaceReport {
    Checker::new(trace).run()
}

/// Attempts of record keyed by `(job, kind, round, task)` — job first so
/// one serve job's tasks never alias another's.
type OfRecord = BTreeMap<(usize, TaskKind, usize, usize), usize>;

struct Checker<'t> {
    trace: &'t JobTrace,
    threads: Vec<Thread>,
    /// `(entry index, lane index)` → thread index (flat attempts use lane 0).
    tix: BTreeMap<(usize, usize), usize>,
    edges: Vec<(EvRef, EvRef)>,
    accesses: Vec<Access>,
    diagnostics: Vec<RaceDiagnostic>,
}

impl<'t> Checker<'t> {
    fn new(trace: &'t JobTrace) -> Self {
        let mut threads = Vec::new();
        let mut tix = BTreeMap::new();
        for (ei, e) in trace.entries.iter().enumerate() {
            match &e.detail {
                EntryDetail::Lanes(lanes) => {
                    for (li, lane) in lanes.iter().enumerate() {
                        if lane.spans.is_empty() {
                            continue;
                        }
                        tix.insert((ei, li), threads.len());
                        threads.push(Thread {
                            events: lane.spans.iter().map(|s| (s.start, s.end)).collect(),
                        });
                    }
                }
                EntryDetail::Flat(_) => {
                    tix.insert((ei, 0), threads.len());
                    threads.push(Thread {
                        events: vec![(e.start, e.end)],
                    });
                }
            }
        }
        Checker {
            trace,
            threads,
            tix,
            edges: Vec::new(),
            accesses: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    fn who(&self, ei: usize) -> String {
        let e = &self.trace.entries[ei];
        format!(
            "{}{}{} {} attempt {}{}",
            if e.job > 0 {
                format!("job {} ", e.job)
            } else {
                String::new()
            },
            if e.round > 0 {
                format!("round {} ", e.round)
            } else {
                String::new()
            },
            e.kind.label(),
            e.task,
            e.attempt,
            if e.backup { " (backup)" } else { "" }
        )
    }

    /// Round qualifier for resource names: empty for round 0 so every
    /// legacy (single-round) diagnostic string is unchanged.
    fn rq(round: usize) -> String {
        if round > 0 {
            format!("r{round}:")
        } else {
            String::new()
        }
    }

    /// Serve-job qualifier for resource names: empty for job 0 so every
    /// single-job diagnostic string is unchanged. Multi-job resource keys
    /// compose as `j{id}:r{k}:…` — data resources (tasks, map outputs,
    /// spills, runs, output partitions, hand-offs, registries) are private
    /// to a job, while physical resources (slots, NICs) stay shared.
    fn jq(job: usize) -> String {
        if job > 0 {
            format!("j{job}:")
        } else {
            String::new()
        }
    }

    /// Combined `j{id}:r{k}:` qualifier for an entry's data resources.
    fn jrq(job: usize, round: usize) -> String {
        format!("{}{}", Self::jq(job), Self::rq(round))
    }

    fn ev_time(&self, (t, i): EvRef) -> (VNanos, VNanos) {
        self.threads[t].events[i]
    }

    /// First event of every thread of entry `ei`.
    fn entry_firsts(&self, ei: usize) -> Vec<EvRef> {
        self.tix
            .range((ei, 0)..(ei + 1, 0))
            .map(|(_, &t)| (t, 0))
            .collect()
    }

    /// Last event of every thread of entry `ei`.
    fn entry_lasts(&self, ei: usize) -> Vec<EvRef> {
        self.tix
            .range((ei, 0)..(ei + 1, 0))
            .map(|(_, &t)| (t, self.threads[t].events.len() - 1))
            .collect()
    }

    /// Add a synchronization edge if the timing supports it; an edge the
    /// timing contradicts is dropped (the conflict it should have ordered
    /// then surfaces as a race).
    fn edge(&mut self, src: EvRef, dst: EvRef) {
        if self.ev_time(src).1 <= self.ev_time(dst).0 {
            self.edges.push((src, dst));
        }
    }

    fn edge_all(&mut self, srcs: &[EvRef], dsts: &[EvRef]) {
        for &s in srcs {
            for &d in dsts {
                self.edge(s, d);
            }
        }
    }

    /// Representative envelope (earliest-starting first event,
    /// latest-ending last event) of a whole entry, for entry-granular
    /// accesses.
    fn entry_envelope(&self, ei: usize) -> (EvRef, EvRef) {
        let first = self
            .entry_firsts(ei)
            .into_iter()
            .min_by_key(|&r| self.ev_time(r))
            .expect("entry has threads");
        let last = self
            .entry_lasts(ei)
            .into_iter()
            .max_by_key(|&r| (self.ev_time(r).1, self.ev_time(r).0))
            .expect("entry has threads");
        (first, last)
    }

    /// The lane index of `role` within entry `ei`'s lanes, if present.
    fn lane_of(&self, ei: usize, role: LaneRole) -> Option<usize> {
        match &self.trace.entries[ei].detail {
            EntryDetail::Lanes(lanes) => lanes.iter().position(|l| l.role == role),
            EntryDetail::Flat(_) => None,
        }
    }

    fn lane_spans(&self, ei: usize, li: usize) -> &'t [Span] {
        let trace = self.trace;
        match &trace.entries[ei].detail {
            EntryDetail::Lanes(lanes) => &lanes[li].spans,
            EntryDetail::Flat(_) => &[],
        }
    }

    fn run(mut self) -> RaceReport {
        // Recorded mode: the trace carries ground-truth edges from the
        // unified event loop; skip timing-derived edge reconstruction and
        // apply the recorded edges instead. Accesses and structural
        // invariants are derived from the entries either way.
        let derive = self.trace.edges.is_empty();
        self.slot_edges_and_accesses(derive);
        self.attempt_edges_and_accesses(derive);
        let of_record = self.of_record_map();
        self.map_entry_accesses(&of_record, derive);
        self.reduce_entry_accesses(&of_record, derive);
        if !derive {
            self.apply_recorded_edges(&of_record);
        }
        self.check_races_on_accesses()
    }

    /// Resolve one recorded edge endpoint to concrete events. An
    /// entry-level endpoint fans out to every thread of the entry (last
    /// events on the source side, first events on the destination side); a
    /// span-level endpoint names one event. Endpoints that no longer
    /// resolve — a mutated trace dropped the entry, lane, or span — yield
    /// `None`, which drops the edge and lets the conflict it should have
    /// ordered surface as a race.
    fn resolve_end(&self, end: EdgeEnd, src_side: bool) -> Option<Vec<EvRef>> {
        if end.entry >= self.trace.entries.len() {
            return None;
        }
        match end.at {
            None => Some(if src_side {
                self.entry_lasts(end.entry)
            } else {
                self.entry_firsts(end.entry)
            }),
            Some((lane, span)) => {
                let &t = self.tix.get(&(end.entry, lane))?;
                if span >= self.threads[t].events.len() {
                    return None;
                }
                Some(vec![(t, span)])
            }
        }
    }

    /// Apply the trace's recorded edges. Every edge except
    /// [`EdgeKind::Registry`] feeds the vector clocks through the same
    /// timing filter as derived edges; registry hand-offs synchronize in
    /// real time, so they are validated as protocol edges instead (see the
    /// module docs).
    fn apply_recorded_edges(&mut self, of_record: &OfRecord) {
        let recorded = self.trace.edges.clone();
        let mut registry = Vec::new();
        for e in recorded {
            if e.kind == EdgeKind::Registry {
                registry.push(e);
                continue;
            }
            let (Some(srcs), Some(dsts)) = (
                self.resolve_end(e.src, true),
                self.resolve_end(e.dst, false),
            ) else {
                continue;
            };
            self.edge_all(&srcs, &dsts);
        }
        self.validate_registry_protocol(&registry, of_record);
    }

    /// Validate the frequent-key registry's designated-publisher protocol.
    ///
    /// Registry edges are exempt from the timing filter and the vector
    /// clocks — the publisher / waiter handshake happens in *real* time
    /// inside a map wave, so the endpoints' virtual spans legitimately
    /// overlap. What must hold is the protocol shape: both endpoints are
    /// map entries, the publisher carries the lower task id (the driver
    /// designates the node's first map task), no task is both a publisher
    /// and a waiter, no waiter has two publishers, endpoints share a node
    /// unless speculation moved a backup winner, and every non-backup map
    /// attempt of record on a publishing node is connected to that node's
    /// publisher.
    fn validate_registry_protocol(&mut self, edges: &[super::TraceEdge], of_record: &OfRecord) {
        if edges.is_empty() {
            return;
        }
        let structure = |resource: String, message: String| RaceDiagnostic {
            kind: RaceKind::Structure,
            resource,
            message,
        };
        let mut publishers: BTreeMap<usize, usize> = BTreeMap::new(); // src entry -> node
        let mut waiter_of: BTreeMap<usize, usize> = BTreeMap::new(); // dst entry -> src entry
        let mut diags = Vec::new();
        for e in edges {
            let resource = "registry".to_string();
            let ok = |end: EdgeEnd| {
                end.at.is_none()
                    && self
                        .trace
                        .entries
                        .get(end.entry)
                        .is_some_and(|t| t.kind == TaskKind::Map)
            };
            if !ok(e.src) || !ok(e.dst) {
                diags.push(structure(
                    resource,
                    "registry edge endpoint is not a map entry".into(),
                ));
                continue;
            }
            let (src, dst) = (
                &self.trace.entries[e.src.entry],
                &self.trace.entries[e.dst.entry],
            );
            if src.job != dst.job {
                diags.push(structure(
                    format!("{}registry:n{}", Self::jq(src.job), src.node),
                    format!(
                        "hand-off from job {} map {} to job {} map {} crosses jobs",
                        src.job, src.task, dst.job, dst.task
                    ),
                ));
                continue;
            }
            if src.task >= dst.task {
                diags.push(structure(
                    format!("{}registry:n{}", Self::jq(src.job), src.node),
                    format!(
                        "publisher map {} does not carry the lowest task id (waiter map {})",
                        src.task, dst.task
                    ),
                ));
            }
            if src.node != dst.node && !src.backup && !dst.backup {
                diags.push(structure(
                    format!("{}registry:n{}", Self::jq(src.job), src.node),
                    format!(
                        "hand-off from map {} (node {}) to map {} (node {}) crosses nodes \
                         without a backup winner",
                        src.task, src.node, dst.task, dst.node
                    ),
                ));
            }
            publishers.insert(e.src.entry, src.node);
            if let Some(&prev) = waiter_of.get(&e.dst.entry) {
                if prev != e.src.entry {
                    diags.push(structure(
                        format!("{}registry:n{}", Self::jq(dst.job), dst.node),
                        format!("waiter map {} has two publishers", dst.task),
                    ));
                }
            } else {
                waiter_of.insert(e.dst.entry, e.src.entry);
            }
        }
        for (&pei, &node) in &publishers {
            let p = &self.trace.entries[pei];
            if waiter_of.contains_key(&pei) {
                diags.push(structure(
                    format!("{}registry:n{node}", Self::jq(p.job)),
                    format!("map {} is both a publisher and a waiter", p.task),
                ));
            }
            // Per-node completeness: every other non-backup map attempt of
            // record on the publisher's node must be one of its waiters. A
            // backup publisher ran away from the home node, so its entry's
            // node says nothing about which tasks should wait on it.
            if p.backup {
                continue;
            }
            for (&(job, kind, round, task), &ei) in of_record {
                if kind != TaskKind::Map || job != p.job || round != p.round || ei == pei {
                    continue;
                }
                let w = &self.trace.entries[ei];
                if w.backup || w.node != node {
                    continue;
                }
                if waiter_of.get(&ei) != Some(&pei) {
                    diags.push(structure(
                        format!("{}registry:n{node}", Self::jq(job)),
                        format!(
                            "map {} on node {node} has no hand-off edge from publisher map {}",
                            task, p.task
                        ),
                    ));
                }
            }
        }
        self.diagnostics.extend(diags);
    }

    /// Group entries by `(node, phase, slot)`: consecutive attempts on a
    /// slot are serialized, and every attempt is a write to the slot.
    /// `derive` controls whether the serialization edges are reconstructed
    /// here (legacy traces) or left to the recorded slot chains.
    fn slot_edges_and_accesses(&mut self, derive: bool) {
        let mut by_slot: BTreeMap<(usize, TaskKind, usize), Vec<usize>> = BTreeMap::new();
        for (ei, e) in self.trace.entries.iter().enumerate() {
            by_slot
                .entry((e.node, e.kind, e.slot))
                .or_default()
                .push(ei);
        }
        for ((node, kind, slot), mut eis) in by_slot {
            eis.sort_by_key(|&ei| {
                let e = &self.trace.entries[ei];
                (e.start, e.end, ei)
            });
            if derive {
                for w in eis.windows(2) {
                    let srcs = self.entry_lasts(w[0]);
                    let dsts = self.entry_firsts(w[1]);
                    self.edge_all(&srcs, &dsts);
                }
            }
            for ei in eis {
                let (first, last) = self.entry_envelope(ei);
                self.accesses.push(Access {
                    resource: format!("slot:n{node}/{}/{slot}", kind.label()),
                    res_kind: "slot",
                    write: true,
                    first,
                    last,
                    who: self.who(ei),
                });
            }
        }
    }

    /// Non-backup attempts of one task are serialized retries; each is a
    /// write to the task's attempt slot. Backups race their primary by
    /// design (first completion wins) and are exempt. `derive` controls
    /// whether retry edges are reconstructed here (legacy traces) or left
    /// to the recorded retry chains.
    fn attempt_edges_and_accesses(&mut self, derive: bool) {
        let mut by_task: BTreeMap<(usize, TaskKind, usize, usize), Vec<usize>> = BTreeMap::new();
        for (ei, e) in self.trace.entries.iter().enumerate() {
            if !e.backup {
                by_task
                    .entry((e.job, e.kind, e.round, e.task))
                    .or_default()
                    .push(ei);
            }
        }
        for ((job, kind, round, task), mut eis) in by_task {
            eis.sort_by_key(|&ei| self.trace.entries[ei].attempt);
            if derive {
                for w in eis.windows(2) {
                    let srcs = self.entry_lasts(w[0]);
                    let dsts = self.entry_firsts(w[1]);
                    self.edge_all(&srcs, &dsts);
                }
            }
            let rq = Self::jrq(job, round);
            for ei in eis {
                let (first, last) = self.entry_envelope(ei);
                self.accesses.push(Access {
                    resource: format!("task:{}/{rq}{task}", kind.label()),
                    res_kind: "task",
                    write: true,
                    first,
                    last,
                    who: self.who(ei),
                });
            }
        }
    }

    /// The attempt of record (the one `Lanes` entry) per `(job, round,
    /// task)`; duplicates and missing attempts of record are structural
    /// findings.
    fn of_record_map(&mut self) -> OfRecord {
        let mut of_record: OfRecord = BTreeMap::new();
        let mut seen: BTreeMap<(usize, TaskKind, usize, usize), bool> = BTreeMap::new();
        for (ei, e) in self.trace.entries.iter().enumerate() {
            seen.entry((e.job, e.kind, e.round, e.task))
                .or_insert(false);
            if matches!(e.detail, EntryDetail::Lanes(_)) {
                if let Some(&prev) = of_record.get(&(e.job, e.kind, e.round, e.task)) {
                    self.diagnostics.push(RaceDiagnostic {
                        kind: RaceKind::Structure,
                        resource: format!(
                            "task:{}/{}{}",
                            e.kind.label(),
                            Self::jrq(e.job, e.round),
                            e.task
                        ),
                        message: format!(
                            "two attempts of record: {} and {}",
                            self.who(prev),
                            self.who(ei)
                        ),
                    });
                } else {
                    of_record.insert((e.job, e.kind, e.round, e.task), ei);
                }
                seen.insert((e.job, e.kind, e.round, e.task), true);
            }
        }
        for ((job, kind, round, task), has) in seen {
            if !has {
                self.diagnostics.push(RaceDiagnostic {
                    kind: RaceKind::Structure,
                    resource: format!("task:{}/{}{task}", kind.label(), Self::jrq(job, round)),
                    message: "no attempt of record (every attempt is flat)".into(),
                });
            }
        }
        of_record
    }

    /// Map attempts of record: spill-file accesses + hand-off structure on
    /// the support lane, merge reads, and the map-output write envelope.
    /// `derive` controls whether the spill hand-in edges are reconstructed
    /// here (legacy traces) or left to the recorded spill edges.
    fn map_entry_accesses(&mut self, of_record: &OfRecord, derive: bool) {
        for (&(job, kind, round, task), &ei) in of_record {
            if kind != TaskKind::Map {
                continue;
            }
            let rq = Self::jrq(job, round);
            let who = self.who(ei);
            let map_lane = self.lane_of(ei, LaneRole::Map);
            let support_lane = self.lane_of(ei, LaneRole::Support);
            // The map lane's merge span reads every spill file.
            let merge = map_lane.and_then(|li| {
                let t = *self.tix.get(&(ei, li))?;
                let idx = self
                    .lane_spans(ei, li)
                    .iter()
                    .position(|s| s.kind == SpanKind::Op(Op::Merge))?;
                Some((t, idx))
            });
            if let (Some(sli), Some(st)) = (
                support_lane,
                support_lane.and_then(|li| self.tix.get(&(ei, li)).copied()),
            ) {
                let spans = self.lane_spans(ei, sli);
                let mut spill = 0usize;
                for (i, s) in spans.iter().enumerate() {
                    // Hand-off structure: a support burst must begin right
                    // after a spill-wait (the producer's hand-off is the
                    // only synchronization the support thread has).
                    let is_op = matches!(s.kind, SpanKind::Op(_));
                    let starts_burst =
                        is_op && (i == 0 || !matches!(spans[i - 1].kind, SpanKind::Op(_)));
                    if starts_burst
                        && !matches!(
                            i.checked_sub(1).map(|p| spans[p].kind),
                            Some(SpanKind::Idle(IdleKind::SpillWait))
                        )
                    {
                        self.diagnostics.push(RaceDiagnostic {
                            kind: RaceKind::Structure,
                            resource: format!("handoff:{rq}{task}"),
                            message: format!(
                                "{who}: support burst at {} starts without a \
                                 preceding spill-wait (no hand-off from the producer)",
                                s.start
                            ),
                        });
                    }
                    if s.kind == SpanKind::Op(Op::SpillWrite) {
                        let resource = format!("spill:{rq}{task}/{spill}");
                        spill += 1;
                        self.accesses.push(Access {
                            resource: resource.clone(),
                            res_kind: "spill",
                            write: true,
                            first: (st, i),
                            last: (st, i),
                            who: format!("{who} support"),
                        });
                        if let Some(m) = merge {
                            if derive {
                                self.edge((st, i), m);
                            }
                            self.accesses.push(Access {
                                resource,
                                res_kind: "spill",
                                write: false,
                                first: m,
                                last: m,
                                who: format!("{who} merge"),
                            });
                        }
                    }
                }
            }
            // The map output is written during the merge (fallback: the map
            // lane's whole tail) and published at the map lane's last event.
            if let Some(li) = map_lane {
                if let Some(&t) = self.tix.get(&(ei, li)) {
                    let last = self.threads[t].events.len() - 1;
                    let first = merge.map_or((t, last), |m| m);
                    self.accesses.push(Access {
                        resource: format!("mapout:{rq}{task}"),
                        res_kind: "mapout",
                        write: true,
                        first,
                        last: (t, last),
                        who: who.clone(),
                    });
                }
            }
        }
    }

    /// Reduce attempts of record: flow-group reads of map outputs, run
    /// writes, the shuffle barrier into the reduce lane, and the output
    /// partition write. `derive` controls whether publication and barrier
    /// edges are reconstructed here (legacy traces) or left to the
    /// recorded map-out and barrier edges.
    fn reduce_entry_accesses(&mut self, of_record: &OfRecord, derive: bool) {
        for (&(job, kind, round, partition), &ei) in of_record {
            if kind != TaskKind::Reduce {
                continue;
            }
            let rq = Self::jrq(job, round);
            let who = self.who(ei);
            let trace = self.trace;
            let e = &trace.entries[ei];
            // First post-shuffle op span on the reduce lane: the merge that
            // consumes every fetched run.
            let reduce_first_op = self.lane_of(ei, LaneRole::Reduce).and_then(|li| {
                let t = *self.tix.get(&(ei, li))?;
                let idx = self
                    .lane_spans(ei, li)
                    .iter()
                    .position(|s| matches!(s.kind, SpanKind::Op(_)))?;
                Some((t, idx))
            });
            let lanes_n = match &e.detail {
                EntryDetail::Lanes(lanes) => lanes.len(),
                EntryDetail::Flat(_) => 0,
            };
            for li in 0..lanes_n {
                let Some(&t) = self.tix.get(&(ei, li)) else {
                    continue;
                };
                let role = match &e.detail {
                    EntryDetail::Lanes(lanes) => lanes[li].role,
                    EntryDetail::Flat(_) => continue,
                };
                if !matches!(role, LaneRole::Fetcher(_)) {
                    continue;
                }
                let spans = self.lane_spans(ei, li);
                // Flow groups: spans tagged with a source map task.
                let mut groups: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
                for (i, s) in spans.iter().enumerate() {
                    if let Some(src) = s.flow {
                        let g = groups.entry(src).or_insert((i, i));
                        g.0 = g.0.min(i);
                        g.1 = g.1.max(i);
                    }
                    if s.kind == SpanKind::Idle(IdleKind::NetTransfer) {
                        self.accesses.push(Access {
                            resource: format!("nic:n{}", e.node),
                            res_kind: "nic-shared",
                            write: false,
                            first: (t, i),
                            last: (t, i),
                            who: who.clone(),
                        });
                    }
                }
                for (src, (gf, gl)) in groups {
                    let flow_who = format!("{who} fetch of map {src}");
                    // The flow reads the published map output — shuffles
                    // stay within the entry's own job and round.
                    match of_record.get(&(job, TaskKind::Map, round, src as usize)) {
                        Some(&mei) => {
                            if derive {
                                if let Some(mli) = self.lane_of(mei, LaneRole::Map) {
                                    if let Some(&mt) = self.tix.get(&(mei, mli)) {
                                        let mlast = self.threads[mt].events.len() - 1;
                                        self.edge((mt, mlast), (t, gf));
                                    }
                                }
                            }
                            self.accesses.push(Access {
                                resource: format!("mapout:{rq}{src}"),
                                res_kind: "mapout",
                                write: false,
                                first: (t, gf),
                                last: (t, gl),
                                who: flow_who.clone(),
                            });
                        }
                        None => self.diagnostics.push(RaceDiagnostic {
                            kind: RaceKind::Structure,
                            resource: format!("mapout:{rq}{src}"),
                            message: format!("{flow_who}: no producing map task in the trace"),
                        }),
                    }
                    // ...and writes the fetched run the merge will read.
                    self.accesses.push(Access {
                        resource: format!("runs:{rq}{partition}/{src}"),
                        res_kind: "runs",
                        write: true,
                        first: (t, gf),
                        last: (t, gl),
                        who: flow_who,
                    });
                    // Shuffle barrier: the merge starts only after this
                    // flow's run has fully arrived — the group's *last*
                    // event (transfer or decompress completion), not the
                    // fetch op that merely issued the request.
                    if let Some(rf) = reduce_first_op {
                        if derive {
                            self.edge((t, gl), rf);
                        }
                        self.accesses.push(Access {
                            resource: format!("runs:{rq}{partition}/{src}"),
                            res_kind: "runs",
                            write: false,
                            first: rf,
                            last: rf,
                            who: format!("{who} merge"),
                        });
                    }
                }
            }
            // The reduce output partition is written once, by the attempt
            // of record's output-write span.
            if let Some(li) = self.lane_of(ei, LaneRole::Reduce) {
                if let Some(&t) = self.tix.get(&(ei, li)) {
                    if let Some(ow) = self
                        .lane_spans(ei, li)
                        .iter()
                        .position(|s| s.kind == SpanKind::Op(Op::OutputWrite))
                    {
                        self.accesses.push(Access {
                            resource: format!("out:{rq}{partition}"),
                            res_kind: "out",
                            write: true,
                            first: (t, ow),
                            last: (t, ow),
                            who,
                        });
                    }
                }
            }
        }
    }

    /// Compute vector clocks over the edge set and report every
    /// conflicting access pair with no happens-before path.
    fn check_races_on_accesses(mut self) -> RaceReport {
        let n = self.threads.len();
        let events: usize = self.threads.iter().map(|t| t.events.len()).sum();

        // Process events in virtual-time order; every edge source is
        // processed before its destination because edges are
        // timing-consistent and spans are non-empty (a zero-length source
        // tied with its destination sorts first on the end key).
        let mut seq: Vec<(VNanos, VNanos, usize, usize)> = Vec::with_capacity(events);
        for (t, th) in self.threads.iter().enumerate() {
            for (i, &(s, e)) in th.events.iter().enumerate() {
                seq.push((s, e, t, i));
            }
        }
        seq.sort_unstable();

        let mut incoming: BTreeMap<EvRef, Vec<EvRef>> = BTreeMap::new();
        let mut is_src: std::collections::BTreeSet<EvRef> = std::collections::BTreeSet::new();
        for &(src, dst) in &self.edges {
            incoming.entry(dst).or_default().push(src);
            is_src.insert(src);
        }

        // cur[t] = the clock thread t carries right now; joins[t] = the
        // history of (event index, clock) at each point new knowledge
        // arrived, for happens-before queries.
        let mut cur: Vec<Vec<u32>> = vec![vec![0; n]; n];
        let mut joins: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); n];
        let mut snap: BTreeMap<EvRef, Vec<u32>> = BTreeMap::new();
        for &(_, _, t, i) in &seq {
            let mut changed = false;
            if let Some(srcs) = incoming.get(&(t, i)) {
                for src in srcs {
                    if let Some(sc) = snap.get(src) {
                        for (a, b) in cur[t].iter_mut().zip(sc) {
                            if *b > *a {
                                *a = *b;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if changed {
                joins[t].push((i, cur[t].clone()));
            }
            cur[t][t] = (i + 1) as u32;
            if is_src.contains(&(t, i)) {
                snap.insert((t, i), cur[t].clone());
            }
        }

        // hb(a, b): does event a happen before (or program-order precede)
        // event b?
        let hb = |a: EvRef, b: EvRef| -> bool {
            if a.0 == b.0 {
                return a.1 <= b.1;
            }
            let js = &joins[b.0];
            let at = js.partition_point(|(i, _)| *i <= b.1);
            at > 0 && js[at - 1].1[a.0] as usize > a.1
        };

        let mut access_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for a in &self.accesses {
            *access_counts.entry(a.res_kind).or_default() += 1;
        }

        let mut by_resource: BTreeMap<&str, Vec<&Access>> = BTreeMap::new();
        for a in &self.accesses {
            if a.res_kind == "nic-shared" {
                continue; // tallied, but shared by design
            }
            by_resource.entry(a.resource.as_str()).or_default().push(a);
        }
        let mut races = Vec::new();
        for (resource, accs) in by_resource {
            for (i, a) in accs.iter().enumerate() {
                for b in &accs[i + 1..] {
                    if !(a.write || b.write) {
                        continue;
                    }
                    if hb(a.last, b.first) || hb(b.last, a.first) {
                        continue;
                    }
                    let (a_start, _) = self.ev_time(a.first);
                    let (_, a_end) = self.ev_time(a.last);
                    let (b_start, _) = self.ev_time(b.first);
                    let (_, b_end) = self.ev_time(b.last);
                    races.push(RaceDiagnostic {
                        kind: RaceKind::Race,
                        resource: resource.to_string(),
                        message: format!(
                            "{} [{a_start}..{a_end}] and {} [{b_start}..{b_end}] \
                             are unordered",
                            a.who, b.who
                        ),
                    });
                }
            }
        }
        races.append(&mut self.diagnostics);
        RaceReport {
            threads: n,
            events,
            edges: self.edges.len(),
            accesses: access_counts,
            diagnostics: races,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        build_reduce_trace, AttemptKind, FlowTrace, JobTrace, MapTraceRecorder, TaskLane,
        TraceEdge, TraceEntry,
    };
    use super::*;

    /// A small but complete one-map, one-reduce job trace whose cross-lane
    /// edges all exist and are timing-consistent.
    fn micro_trace() -> JobTrace {
        let mut rec = MapTraceRecorder::new();
        rec.on_record(0, 5, 10, 3, 2);
        rec.on_record(4, 5, 10, 3, 2);
        rec.on_spill(24, 6, 1, 3);
        rec.on_barrier(0);
        let map = rec.finish(54, 7, 1); // map ends at 62
        let flows = vec![FlowTrace {
            map_task: 0,
            src_node: 1,
            remote: true,
            io_ns: 10,
            backoff_ns: 0,
            slot: 0,
            start: 0,
            pre_end: 10,
            latency_end: 20,
            transfer_end: 50,
            finish: 55,
        }];
        let reduce = build_reduce_trace(&flows, 0, 55, 4, 1, 6, 2); // ends at 68
        JobTrace {
            nodes: 2,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
            wall: 200,
            edges: Vec::new(),
            entries: vec![
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 0,
                    factor: 1,
                    start: 0,
                    end: 62,
                    detail: EntryDetail::Lanes(map.into_absolute(0, 1)),
                },
                TraceEntry {
                    kind: TaskKind::Reduce,
                    job: 0,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 1,
                    slot: 0,
                    factor: 1,
                    start: 100,
                    end: 168,
                    detail: EntryDetail::Lanes(reduce.into_absolute(100, 1)),
                },
            ],
        }
    }

    fn lanes_mut(e: &mut TraceEntry) -> &mut Vec<TaskLane> {
        match &mut e.detail {
            EntryDetail::Lanes(l) => l,
            EntryDetail::Flat(_) => panic!("flat entry"),
        }
    }

    #[test]
    fn clean_micro_trace_has_no_findings() {
        let trace = micro_trace();
        trace.check().unwrap();
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render()
        );
        assert!(report.edges > 0);
        assert!(report.accesses["mapout"] >= 2); // one write + one read
        assert!(report.accesses["spill"] >= 2);
        assert!(report.accesses["runs"] >= 2);
    }

    #[test]
    fn fetch_before_map_output_is_a_race() {
        let mut trace = micro_trace();
        // Shift the whole reduce attempt to start before the map sealed
        // its output: tiling still holds, but the fetch now overlaps the
        // producing map attempt.
        let e = &mut trace.entries[1];
        let shift = 90u64;
        e.start -= shift;
        e.end -= shift;
        for lane in lanes_mut(e) {
            for s in &mut lane.spans {
                s.start -= shift;
                s.end -= shift;
            }
        }
        trace.check().unwrap(); // per-lane checks cannot see it
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource == "mapout:0"),
            "expected a mapout race:\n{}",
            report.render()
        );
    }

    /// Two copies of the micro trace interleaved as serve jobs 1 and 2:
    /// identical task ids on the same physical slots, disjoint in time.
    fn two_job_trace(shift: u64) -> JobTrace {
        let base = micro_trace();
        let mut trace = base.clone();
        for e in &mut trace.entries {
            e.job = 1;
        }
        for mut e in base.entries {
            e.job = 2;
            e.start += shift;
            e.end += shift;
            for lane in lanes_mut(&mut e) {
                for s in &mut lane.spans {
                    s.start += shift;
                    s.end += shift;
                }
            }
            trace.entries.push(e);
        }
        trace.wall = trace.entries.iter().map(|e| e.end).max().unwrap_or(0);
        trace
    }

    #[test]
    fn interleaved_jobs_with_identical_task_ids_do_not_alias() {
        let trace = two_job_trace(300);
        trace.check().unwrap();
        // Without the job id in the of-record key, job 2's "map 0" would
        // collide with job 1's as a duplicate attempt of record.
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render()
        );
    }

    #[test]
    fn races_inside_a_job_carry_its_qualifier() {
        let mut trace = two_job_trace(300);
        // Pull job 2's reduce attempt back before job 2's map sealed its
        // output (mirrors `fetch_before_map_output_is_a_race`).
        let e = trace
            .entries
            .iter_mut()
            .find(|e| e.job == 2 && e.kind == TaskKind::Reduce)
            .unwrap();
        let shift = 90u64;
        e.start -= shift;
        e.end -= shift;
        for lane in lanes_mut(e) {
            for s in &mut lane.spans {
                s.start -= shift;
                s.end -= shift;
            }
        }
        trace.check().unwrap();
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource == "mapout:j2:0"),
            "expected a job-qualified mapout race:\n{}",
            report.render()
        );
        // Job 1's identically-numbered task is untouched: no j1 findings.
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.resource.contains("j1:")),
            "job 1 must stay clean:\n{}",
            report.render()
        );
    }

    #[test]
    fn overlapping_slot_attempts_are_a_race() {
        let mut trace = micro_trace();
        // A duplicate map attempt occupying the same slot at the same time.
        let mut dup = trace.entries[0].clone();
        dup.attempt = 1;
        trace.entries.push(dup);
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource.starts_with("slot:")),
            "expected a slot race:\n{}",
            report.render()
        );
    }

    #[test]
    fn merge_before_spill_write_is_a_race() {
        let mut trace = micro_trace();
        // Pull the map lane's merge (and everything after the barrier)
        // before the support lane's spill write by rebuilding the map lane
        // shifted left; keep entry boundaries by padding at the end.
        let e = &mut trace.entries[0];
        let lanes = lanes_mut(e);
        let map_lane = lanes
            .iter_mut()
            .find(|l| matches!(l.role, LaneRole::Map))
            .unwrap();
        // The merge span currently sits at [54, 61]; the spill write ends
        // at 34. Move the merge to [20, 27]: now it reads a spill that has
        // not been written.
        for s in &mut map_lane.spans {
            if s.kind == SpanKind::Op(Op::Merge) {
                s.start = 20;
                s.end = 27;
            }
        }
        map_lane.spans.sort_by_key(|s| (s.start, s.end));
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource.starts_with("spill:")),
            "expected a spill race:\n{}",
            report.render()
        );
    }

    #[test]
    fn support_burst_without_handoff_is_structural() {
        let mut trace = micro_trace();
        let e = &mut trace.entries[0];
        let lanes = lanes_mut(e);
        let support = lanes
            .iter_mut()
            .find(|l| matches!(l.role, LaneRole::Support))
            .unwrap();
        // Swap the hand-off order: rotate the burst in front of its
        // spill-wait while keeping the lane tiled.
        let burst: Vec<_> = support
            .spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Op(_)))
            .cloned()
            .collect();
        assert!(!burst.is_empty());
        let mut rebuilt = Vec::new();
        let mut cursor = 0;
        for b in &burst {
            let d = b.end - b.start;
            let mut s = *b;
            s.start = cursor;
            s.end = cursor + d;
            rebuilt.push(s);
            cursor += d;
        }
        for s in &support.spans {
            if !matches!(s.kind, SpanKind::Op(_)) {
                let d = s.end - s.start;
                let mut moved = *s;
                moved.start = cursor;
                moved.end = cursor + d;
                rebuilt.push(moved);
                cursor += d;
            }
        }
        assert_eq!(cursor, 62);
        support.spans = rebuilt;
        trace.check().unwrap();
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Structure && d.resource.starts_with("handoff:")),
            "expected a hand-off finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn dropped_shuffle_barrier_is_a_race() {
        let mut trace = micro_trace();
        // Move the reduce lane's post-shuffle ops before the flow finishes
        // (merge starts at 10 while the fetch is still in flight), padding
        // the tail so the lane still tiles.
        let e = &mut trace.entries[1];
        let (e_start, e_end) = (e.start, e.end);
        let lanes = lanes_mut(e);
        let rl = lanes
            .iter_mut()
            .find(|l| matches!(l.role, LaneRole::Reduce))
            .unwrap();
        let ops: Vec<_> = rl
            .spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Op(_)))
            .cloned()
            .collect();
        let mut rebuilt = Vec::new();
        let mut cursor = e_start;
        for o in &ops {
            let d = o.end - o.start;
            let mut s = *o;
            s.start = cursor;
            s.end = cursor + d;
            rebuilt.push(s);
            cursor += d;
        }
        rebuilt.push(Span {
            start: cursor,
            end: e_end,
            kind: SpanKind::Idle(IdleKind::Done),
            flow: None,
        });
        rl.spans = rebuilt;
        trace.check().unwrap();
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource.starts_with("runs:")),
            "expected a runs race:\n{}",
            report.render()
        );
    }

    /// Rebuild the edges the unified event loop would have recorded for a
    /// micro trace: entry-level map-out publication, span-level spill
    /// hand-ins, and span-level shuffle barriers.
    fn recorded_micro_edges(trace: &JobTrace) -> Vec<TraceEdge> {
        let lanes = |ei: usize| match &trace.entries[ei].detail {
            EntryDetail::Lanes(l) => l.as_slice(),
            EntryDetail::Flat(_) => panic!("flat entry"),
        };
        let mut edges = Vec::new();
        let (map_eis, reduce_eis): (Vec<usize>, Vec<usize>) = {
            let m = (0..trace.entries.len())
                .filter(|&i| trace.entries[i].kind == TaskKind::Map)
                .collect();
            let r = (0..trace.entries.len())
                .filter(|&i| trace.entries[i].kind == TaskKind::Reduce)
                .collect();
            (m, r)
        };
        for &mi in &map_eis {
            for &ri in &reduce_eis {
                edges.push(TraceEdge {
                    kind: EdgeKind::MapOut,
                    src: EdgeEnd::entry(mi),
                    dst: EdgeEnd::entry(ri),
                });
            }
            let ml = lanes(mi);
            let mli = ml.iter().position(|l| l.role == LaneRole::Map).unwrap();
            let sli = ml.iter().position(|l| l.role == LaneRole::Support).unwrap();
            let merge_si = ml[mli]
                .spans
                .iter()
                .position(|s| s.kind == SpanKind::Op(Op::Merge))
                .unwrap();
            for (si, s) in ml[sli].spans.iter().enumerate() {
                if s.kind == SpanKind::Op(Op::SpillWrite) {
                    edges.push(TraceEdge {
                        kind: EdgeKind::Spill,
                        src: EdgeEnd::span(mi, sli, si),
                        dst: EdgeEnd::span(mi, mli, merge_si),
                    });
                }
            }
        }
        for &ri in &reduce_eis {
            let rl = lanes(ri);
            let rli = rl.iter().position(|l| l.role == LaneRole::Reduce).unwrap();
            let rsi = rl[rli]
                .spans
                .iter()
                .position(|s| matches!(s.kind, SpanKind::Op(_)))
                .unwrap();
            for (li, lane) in rl.iter().enumerate() {
                if !matches!(lane.role, LaneRole::Fetcher(_)) {
                    continue;
                }
                let mut last: BTreeMap<u32, usize> = BTreeMap::new();
                for (si, s) in lane.spans.iter().enumerate() {
                    if let Some(f) = s.flow {
                        last.insert(f, si);
                    }
                }
                for (_, si) in last {
                    edges.push(TraceEdge {
                        kind: EdgeKind::Barrier,
                        src: EdgeEnd::span(ri, li, si),
                        dst: EdgeEnd::span(ri, rli, rsi),
                    });
                }
            }
        }
        edges
    }

    #[test]
    fn recorded_edges_replace_timing_derivation() {
        let mut trace = micro_trace();
        trace.edges = recorded_micro_edges(&trace);
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "recorded mode must accept the clean trace:\n{}",
            report.render()
        );
        assert!(report.edges > 0, "recorded edges must feed the clocks");
    }

    #[test]
    fn recorded_edge_contradicted_by_timing_is_dropped() {
        let mut trace = micro_trace();
        trace.edges = recorded_micro_edges(&trace);
        // Shift the reduce attempt before the map sealed its output: the
        // recorded MapOut edge is now timing-inconsistent, so it must be
        // dropped and the mapout conflict surfaces as a race.
        let e = &mut trace.entries[1];
        let shift = 90u64;
        e.start -= shift;
        e.end -= shift;
        for lane in lanes_mut(e) {
            for s in &mut lane.spans {
                s.start -= shift;
                s.end -= shift;
            }
        }
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource == "mapout:0"),
            "expected a mapout race despite the recorded edge:\n{}",
            report.render()
        );
    }

    #[test]
    fn recorded_edge_with_dangling_endpoint_is_dropped() {
        let mut trace = micro_trace();
        trace.edges = recorded_micro_edges(&trace);
        // Point a barrier edge at a span past the end of its lane: the
        // endpoint no longer resolves, so the edge is dropped and the runs
        // conflict it ordered becomes a race.
        for e in &mut trace.edges {
            if e.kind == EdgeKind::Barrier {
                if let Some((_, span)) = &mut e.dst.at {
                    *span += 1000;
                }
            }
        }
        let report = check_races(&trace);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == RaceKind::Race && d.resource.starts_with("runs:")),
            "expected a runs race:\n{}",
            report.render()
        );
    }

    /// Two co-homed map tasks plus the reduce consumer, with a registry
    /// hand-off recorded from the designated publisher (lowest task id on
    /// the node) to its waiter. Publisher and waiter overlap in virtual
    /// time — that is the point of the real-time protocol.
    fn registry_trace() -> JobTrace {
        let mut trace = micro_trace();
        let mut second = trace.entries[0].clone();
        second.task = 1;
        second.slot = 1;
        trace.map_slots = 2;
        trace.entries.insert(1, second);
        trace.edges = recorded_micro_edges(&trace);
        trace.edges.push(TraceEdge {
            kind: EdgeKind::Registry,
            src: EdgeEnd::entry(0),
            dst: EdgeEnd::entry(1),
        });
        trace
    }

    #[test]
    fn registry_handoff_is_protocol_not_a_race() {
        let trace = registry_trace();
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "overlapping publisher/waiter must not race:\n{}",
            report.render()
        );
    }

    #[test]
    fn registry_publisher_must_carry_lowest_task_id() {
        let mut trace = registry_trace();
        for e in &mut trace.edges {
            if e.kind == EdgeKind::Registry {
                std::mem::swap(&mut e.src, &mut e.dst);
            }
        }
        let report = check_races(&trace);
        assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Structure
                    && d.resource.starts_with("registry:")
                    && d.message.contains("lowest task id")
            }),
            "expected a publisher-designation finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn registry_waiter_without_handoff_is_structural() {
        let mut trace = registry_trace();
        // A third co-homed map task with no hand-off edge from the node's
        // publisher: the wave protocol covers every same-node map task.
        let mut third = trace.entries[0].clone();
        third.task = 2;
        third.slot = 2;
        trace.map_slots = 3;
        trace.entries.insert(2, third);
        trace.edges = recorded_micro_edges(&trace);
        trace.edges.push(TraceEdge {
            kind: EdgeKind::Registry,
            src: EdgeEnd::entry(0),
            dst: EdgeEnd::entry(1),
        });
        let report = check_races(&trace);
        assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Structure
                    && d.resource.starts_with("registry:")
                    && d.message.contains("no hand-off edge")
            }),
            "expected a completeness finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn registry_publisher_cannot_also_wait() {
        let mut trace = registry_trace();
        let mut third = trace.entries[0].clone();
        third.task = 2;
        third.slot = 2;
        trace.map_slots = 3;
        trace.entries.insert(2, third);
        trace.edges = recorded_micro_edges(&trace);
        // Chain 0 -> 1 -> 2: map 1 is both a waiter and a publisher.
        trace.edges.push(TraceEdge {
            kind: EdgeKind::Registry,
            src: EdgeEnd::entry(0),
            dst: EdgeEnd::entry(1),
        });
        trace.edges.push(TraceEdge {
            kind: EdgeKind::Registry,
            src: EdgeEnd::entry(1),
            dst: EdgeEnd::entry(2),
        });
        let report = check_races(&trace);
        assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Structure
                    && d.resource.starts_with("registry:")
                    && d.message.contains("both a publisher and a waiter")
            }),
            "expected a publisher-is-waiter finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn registry_edge_must_join_map_entries() {
        let mut trace = registry_trace();
        let reduce_ei = trace
            .entries
            .iter()
            .position(|e| e.kind == TaskKind::Reduce)
            .unwrap();
        trace.edges.push(TraceEdge {
            kind: EdgeKind::Registry,
            src: EdgeEnd::entry(0),
            dst: EdgeEnd::entry(reduce_ei),
        });
        let report = check_races(&trace);
        assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Structure && d.message.contains("not a map entry")
            }),
            "expected an endpoint finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn failed_then_retried_attempts_are_ordered() {
        let mut trace = micro_trace();
        // A failed first attempt on the same slot before the retry.
        let retried = trace.entries[0].clone();
        trace.entries[0] = TraceEntry {
            attempt: 0,
            detail: EntryDetail::Flat(AttemptKind::Failed),
            start: 0,
            end: 0,
            ..retried.clone()
        };
        let mut retry = retried;
        retry.attempt = 1;
        trace.entries.insert(1, retry);
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render()
        );
    }
}
