//! Deterministic virtual-time tracing: per-task span timelines, the
//! job-level [`JobTrace`], and Chrome-trace/Perfetto export.
//!
//! The metrics module answers "how much time went to each operation?";
//! this module answers "*when*, and on which thread lane?". Every task
//! attempt records a set of [`TaskLane`]s — map thread, support thread,
//! reduce thread, shuffle fetcher slots — whose [`Span`]s exactly tile the
//! attempt's virtual duration with no gaps and no overlap. The job driver
//! then shifts each attempt onto its scheduled `(node, slot, start)` and
//! applies the node's straggler factor, producing a [`JobTrace`] whose
//! entries reproduce the virtual schedule the makespan was computed from.
//!
//! Determinism guarantees:
//!
//! * Spans are derived from the *same* measured nanosecond deltas that feed
//!   [`OpTimes`], never re-measured, so with tracing enabled the sum of all
//!   `Op` spans of the attempts of record equals
//!   [`JobProfile::total_ops`](crate::metrics::JobProfile::total_ops)
//!   exactly (each entry's durations are divided back by its straggler
//!   factor, which is exact because scaling multiplied them).
//! * Per-lane tiling is exact *by construction*: lanes are built with a
//!   cursor ([`LaneBuilder`]) and residual op components are computed as
//!   "interval minus the other components", so no rounding can open a gap.
//! * With tracing disabled nothing is recorded and nothing is allocated —
//!   the hot paths check one `bool` (or an `Option` that is `None`).
//!
//! Two exporters: [`JobTrace::to_chrome_json`] writes the Chrome trace
//! event format (open in Perfetto / `chrome://tracing`; `pid` = node,
//! `tid` = slot lane, timestamps in virtual microseconds), and
//! [`JobTrace::render_text`] draws a compact ASCII timeline for terminals
//! and tests. For out-of-core runs whose traces should never be resident
//! as one big string, [`stream::TraceStreamWriter`] spools the same span
//! events to disk incrementally and produces a byte-identical file. [`validate_chrome_trace`] is a minimal dependency-free JSON
//! schema check used by the tests and the `trace` bench bin. The export is
//! lossless for auditing purposes: [`JobTrace::from_chrome_json`] rebuilds
//! a `JobTrace` from its own export (cluster layout travels in a `textmr`
//! metadata object), which is how `textmr-lint --trace` audits shipped
//! trace files offline.
//!
//! The [`race`] submodule is a vector-clock happens-before checker over a
//! `JobTrace`. Traces produced by the unified event loop
//! ([`crate::event`]) carry their ordering edges explicitly in
//! [`JobTrace::edges`] — each [`TraceEdge`] is emitted by the scheduler's
//! event graph (slot reuse, retries, backups) or by the task recorders'
//! structure (spill hand-offs, map-output→fetch, shuffle barriers,
//! registry hand-offs) — and the checker consumes that ground truth
//! directly. For legacy edge-less traces (including all shipped
//! `results/trace_*.json` files) the checker falls back to reconstructing
//! the same edges from span structure and timing. Either way it reports
//! span pairs that touch the same logical resource without a
//! happens-before path — virtual-time races the per-lane tiling checks in
//! [`JobTrace::check`] cannot see.

pub mod diff;
pub mod race;
pub mod stream;

use crate::metrics::{Op, OpTimes, VNanos};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Span model
// ---------------------------------------------------------------------------

/// Why a lane is idle during a span (idle time that is *not* charged to any
/// [`Op`] — the map-side idle fractions of Table II are derived from the
/// pipeline counters, never added to `OpTimes`, and the trace mirrors that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleKind {
    /// Map thread blocked on a full spill buffer (producer wait).
    BufferFull,
    /// Map thread at the end-of-input drain barrier / final-spill wait.
    Barrier,
    /// Support thread waiting for a segment to be handed over.
    SpillWait,
    /// Lane finished all its work; padding to the attempt's end.
    Done,
    /// Network latency phase of a shuffle flow (fetcher waits on the wire).
    NetLatency,
    /// Network transfer phase of a shuffle flow (bytes in flight at the
    /// NIC-shared rate).
    NetTransfer,
    /// Reduce thread waiting for its shuffle to complete.
    Shuffle,
    /// Fetcher slot idle between flows.
    FetcherIdle,
}

impl IdleKind {
    /// All idle kinds, for name lookups.
    pub const ALL: [IdleKind; 8] = [
        IdleKind::BufferFull,
        IdleKind::Barrier,
        IdleKind::SpillWait,
        IdleKind::Done,
        IdleKind::NetLatency,
        IdleKind::NetTransfer,
        IdleKind::Shuffle,
        IdleKind::FetcherIdle,
    ];

    /// Inverse of [`IdleKind::name`].
    pub fn from_name(name: &str) -> Option<IdleKind> {
        IdleKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Display name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            IdleKind::BufferFull => "buffer-full",
            IdleKind::Barrier => "barrier",
            IdleKind::SpillWait => "spill-wait",
            IdleKind::Done => "done",
            IdleKind::NetLatency => "net-latency",
            IdleKind::NetTransfer => "net-transfer",
            IdleKind::Shuffle => "shuffle",
            IdleKind::FetcherIdle => "fetcher-idle",
        }
    }
}

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Measured work (or virtual wait) charged to an [`Op`]. Summing these
    /// spans reproduces the profile's op totals.
    Op(Op),
    /// Idle time not charged to any op (see [`IdleKind`]).
    Idle(IdleKind),
}

impl SpanKind {
    /// Display name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Op(op) => op.name(),
            SpanKind::Idle(k) => k.name(),
        }
    }

    /// Recover a span kind from its exported `name` and `cat`. The `cat`
    /// disambiguates the one collision in the name tables:
    /// `Op::ShuffleFetch` and `IdleKind::Shuffle` both print as "shuffle"
    /// but export with different categories.
    pub fn from_name(name: &str, cat: &str) -> Option<SpanKind> {
        if cat == "idle" {
            if let Some(k) = IdleKind::from_name(name) {
                return Some(SpanKind::Idle(k));
            }
        }
        Op::ALL
            .into_iter()
            .find(|op| op.name() == name)
            .map(SpanKind::Op)
    }
}

/// One half-open interval `[start, end)` on a lane, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Virtual start time.
    pub start: VNanos,
    /// Virtual end time.
    pub end: VNanos,
    /// What the lane was doing.
    pub kind: SpanKind,
    /// For shuffle-flow spans: the map task whose output the flow carries.
    /// `None` everywhere else. Gives the race checker (and the Chrome
    /// export's `src` arg) the flow ↔ map-output association.
    pub flow: Option<u32>,
}

/// Which thread of a task a lane models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneRole {
    /// Map task's producer (map) thread.
    Map,
    /// Map task's support (spill) thread.
    Support,
    /// Reduce task's main thread.
    Reduce,
    /// Reduce task's shuffle fetcher slot `i`.
    Fetcher(usize),
}

impl LaneRole {
    /// Short display label used in exports.
    pub fn label(self) -> String {
        match self {
            LaneRole::Map => "map".to_string(),
            LaneRole::Support => "support".to_string(),
            LaneRole::Reduce => "reduce".to_string(),
            LaneRole::Fetcher(i) => format!("fetcher {i}"),
        }
    }

    /// Lane index within its slot's thread group (`tid` offset).
    fn sub_index(self) -> usize {
        match self {
            LaneRole::Map | LaneRole::Reduce => 0,
            LaneRole::Support => 1,
            LaneRole::Fetcher(i) => 1 + i,
        }
    }
}

/// One thread lane of a task attempt: spans in ascending, gap-free order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLane {
    /// Which thread this lane models.
    pub role: LaneRole,
    /// The lane's spans, tiling the attempt's duration.
    pub spans: Vec<Span>,
}

/// Trace of one task attempt in task-local virtual time `[0,
/// virtual_duration]`. Every lane tiles that interval exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTrace {
    /// Thread lanes (map tasks: map + support; reduce tasks: reduce +
    /// one lane per fetcher slot).
    pub lanes: Vec<TaskLane>,
}

impl TaskTrace {
    /// Sum of all `Op` spans across lanes (must equal the attempt's
    /// `TaskProfile::ops` — the trace ↔ metrics cross-check).
    pub fn op_times(&self) -> OpTimes {
        let mut agg = OpTimes::new();
        for lane in &self.lanes {
            for s in &lane.spans {
                if let SpanKind::Op(op) = s.kind {
                    agg.add_nanos(op, s.end - s.start);
                }
            }
        }
        agg
    }

    /// Check every lane tiles `[0, virtual_duration]` exactly: ascending,
    /// gap-free, starting at 0 and ending at `virtual_duration`.
    pub fn check_tiles(&self, virtual_duration: VNanos) -> Result<(), String> {
        for lane in &self.lanes {
            check_lane_tiles(lane, 0, virtual_duration)?;
        }
        Ok(())
    }

    /// Shift this attempt's lanes to absolute virtual time: each boundary
    /// becomes `start + boundary × factor` (`factor` is the node's
    /// straggler multiplier). Exact — tiling is preserved.
    pub fn into_absolute(self, start: VNanos, factor: u64) -> Vec<TaskLane> {
        let f = factor.max(1);
        self.lanes
            .into_iter()
            .map(|mut lane| {
                for s in &mut lane.spans {
                    s.start = start + s.start * f;
                    s.end = start + s.end * f;
                }
                lane
            })
            .collect()
    }
}

fn check_lane_tiles(lane: &TaskLane, start: VNanos, end: VNanos) -> Result<(), String> {
    let role = lane.role.label();
    if lane.spans.is_empty() {
        if start == end {
            return Ok(());
        }
        return Err(format!(
            "{role}: empty lane over non-empty [{start}, {end})"
        ));
    }
    let mut cursor = start;
    for s in &lane.spans {
        if s.start != cursor {
            return Err(format!(
                "{role}: span {:?} starts at {} (expected {cursor})",
                s.kind, s.start
            ));
        }
        if s.end <= s.start {
            return Err(format!("{role}: empty/inverted span {:?}", s.kind));
        }
        cursor = s.end;
    }
    if cursor != end {
        return Err(format!("{role}: lane ends at {cursor} (expected {end})"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lane builder + task-side recorders
// ---------------------------------------------------------------------------

/// Cursor-based lane builder: spans are appended back to back, so the lane
/// tiles its interval by construction. Zero-duration pushes are skipped.
#[derive(Debug)]
pub struct LaneBuilder {
    role: LaneRole,
    spans: Vec<Span>,
    cursor: VNanos,
}

impl LaneBuilder {
    /// A fresh lane starting at virtual time 0.
    pub fn new(role: LaneRole) -> Self {
        LaneBuilder {
            role,
            spans: Vec::new(),
            cursor: 0,
        }
    }

    /// Append a span of `dur` nanoseconds (no-op when `dur == 0`).
    pub fn push(&mut self, dur: VNanos, kind: SpanKind) {
        self.push_flow(dur, kind, None);
    }

    /// Append a span tagged with the map task whose shuffle flow it belongs
    /// to (no-op when `dur == 0`).
    pub fn push_flow(&mut self, dur: VNanos, kind: SpanKind, flow: Option<u32>) {
        if dur == 0 {
            return;
        }
        self.spans.push(Span {
            start: self.cursor,
            end: self.cursor.saturating_add(dur),
            kind,
            flow,
        });
        self.cursor = self.cursor.saturating_add(dur);
    }

    /// Pad with idle time up to instant `t` (no-op when already there or
    /// past it).
    pub fn pad_to(&mut self, t: VNanos, kind: IdleKind) {
        if t > self.cursor {
            let dur = t - self.cursor;
            self.push(dur, SpanKind::Idle(kind));
        }
    }

    /// Current end of the lane.
    pub fn cursor(&self) -> VNanos {
        self.cursor
    }

    /// Finish building.
    pub fn finish(self) -> TaskLane {
        TaskLane {
            role: self.role,
            spans: self.spans,
        }
    }
}

/// Records a map attempt's two lanes while the task runs. Driven by
/// `task::map_task` with the same nanosecond deltas it adds to `OpTimes`,
/// positioned on the pipeline's virtual clocks, so the finished trace
/// tiles `[0, virtual_duration]` and its op spans sum to the profile ops.
///
/// Consecutive records' op components accumulate into one "bucket" that is
/// flushed (as one span per op, canonical order read → map → emit →
/// combine) whenever a producer wait interrupts the busy interval. Within
/// a busy interval the per-op presentation order is canonical rather than
/// interleaved — the *amounts* are exact, the micro-ordering inside one
/// uninterrupted busy stretch is not observable in virtual time.
#[derive(Debug, Default)]
pub struct MapTraceRecorder {
    map: Option<(LaneBuilder, LaneBuilder)>,
    /// Pending (read, map, emit, combine) nanoseconds not yet flushed.
    pending: [u64; 4],
}

const PENDING_OPS: [Op; 4] = [Op::Read, Op::Map, Op::Emit, Op::Combine];

impl MapTraceRecorder {
    /// A fresh recorder (map + support lanes at virtual time 0).
    pub fn new() -> Self {
        MapTraceRecorder {
            map: Some((
                LaneBuilder::new(LaneRole::Map),
                LaneBuilder::new(LaneRole::Support),
            )),
            pending: [0; 4],
        }
    }

    fn lanes(&mut self) -> &mut (LaneBuilder, LaneBuilder) {
        self.map.as_mut().expect("recorder already finished")
    }

    fn flush(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        let (map, _) = self.lanes();
        for (i, op) in PENDING_OPS.iter().enumerate() {
            map.push(pending[i], SpanKind::Op(*op));
        }
    }

    /// One input record (or the filter's end-of-input drain) completed.
    /// `wait_ns` is the producer wait the record incurred (buffer full);
    /// it precedes the record's own produce time in virtual order.
    pub fn on_record(&mut self, wait_ns: u64, read: u64, map: u64, emit: u64, combine: u64) {
        if wait_ns > 0 {
            self.flush();
            self.lanes()
                .0
                .push(wait_ns, SpanKind::Idle(IdleKind::BufferFull));
        }
        self.pending[0] += read;
        self.pending[1] += map;
        self.pending[2] += emit;
        self.pending[3] += combine;
    }

    /// A segment was handed to the support thread at producer instant
    /// `handover_at`; it sorts/combines/writes for the given durations.
    pub fn on_spill(&mut self, handover_at: VNanos, sort: u64, combine: u64, write: u64) {
        let (_, support) = self.lanes();
        support.pad_to(handover_at, IdleKind::SpillWait);
        support.push(sort, SpanKind::Op(Op::Sort));
        support.push(combine, SpanKind::Op(Op::Combine));
        support.push(write, SpanKind::Op(Op::SpillWrite));
    }

    /// The producer hit the end-of-input drain barrier, waiting `wait_ns`
    /// for in-flight spills.
    pub fn on_barrier(&mut self, wait_ns: u64) {
        self.flush();
        self.lanes()
            .0
            .push(wait_ns, SpanKind::Idle(IdleKind::Barrier));
    }

    /// Close both lanes: pad the map thread to `pipeline_end` (waiting on
    /// the final spill), append the merge phase, pad the support thread to
    /// the attempt's end.
    pub fn finish(
        mut self,
        pipeline_end: VNanos,
        merge_ns: u64,
        merge_combine_ns: u64,
    ) -> TaskTrace {
        self.flush();
        let (mut map, mut support) = self.map.take().expect("recorder already finished");
        map.pad_to(pipeline_end, IdleKind::Barrier);
        map.push(merge_ns, SpanKind::Op(Op::Merge));
        map.push(merge_combine_ns, SpanKind::Op(Op::Combine));
        let end = map.cursor();
        support.pad_to(end, IdleKind::Done);
        TaskTrace {
            lanes: vec![map.finish(), support.finish()],
        }
    }
}

// ---------------------------------------------------------------------------
// Shuffle flow traces → reduce-task lanes
// ---------------------------------------------------------------------------

/// One shuffle fetch as scheduled by the NIC model (or the sequential
/// degenerate case): absolute phase boundaries within the shuffle's
/// virtual time, plus the measured split of its pre-work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTrace {
    /// Map task whose output this flow fetched.
    pub map_task: usize,
    /// Source node of the fetched output.
    pub src_node: usize,
    /// Whether the flow crossed the network.
    pub remote: bool,
    /// Measured disk-read nanoseconds (across retries).
    pub io_ns: u64,
    /// Virtual retry backoff charged before this flow's transfer.
    pub backoff_ns: u64,
    /// Fetcher slot that carried the flow.
    pub slot: usize,
    /// Instant the slot claimed the flow.
    pub start: VNanos,
    /// End of the pre phase (disk read + backoff).
    pub pre_end: VNanos,
    /// End of the network latency phase (= `pre_end` for local flows).
    pub latency_end: VNanos,
    /// End of the shared-rate transfer phase (= `pre_end` for local flows).
    pub transfer_end: VNanos,
    /// Flow completion (after decompress, when any).
    pub finish: VNanos,
}

/// Assemble a reduce attempt's [`TaskTrace`] from its shuffle flow
/// schedule and its measured post-shuffle op components. The four op
/// components must partition the measured reduce time exactly (the caller
/// computes them as a clamped cascade); `virtual_duration` then equals
/// `shuffle_virtual_ns + merge + combine + reduce + write`.
#[allow(clippy::too_many_arguments)]
pub fn build_reduce_trace(
    flows: &[FlowTrace],
    wait_ns: VNanos,
    shuffle_virtual_ns: VNanos,
    merge_ns: u64,
    combine_ns: u64,
    reduce_ns: u64,
    write_ns: u64,
) -> TaskTrace {
    let slots = flows.iter().map(|f| f.slot + 1).max().unwrap_or(0).max(1);
    let mut fetchers: Vec<LaneBuilder> = (0..slots)
        .map(|i| LaneBuilder::new(LaneRole::Fetcher(i)))
        .collect();
    let mut order: Vec<&FlowTrace> = flows.iter().collect();
    order.sort_by_key(|f| (f.slot, f.start, f.map_task));
    for f in order {
        let lane = &mut fetchers[f.slot];
        let src = u32::try_from(f.map_task).ok();
        lane.pad_to(f.start, IdleKind::FetcherIdle);
        lane.push_flow(f.io_ns, SpanKind::Op(Op::ShuffleFetch), src);
        lane.push_flow(f.backoff_ns, SpanKind::Op(Op::ShuffleRetry), src);
        lane.push_flow(
            f.latency_end.saturating_sub(f.pre_end),
            SpanKind::Idle(IdleKind::NetLatency),
            src,
        );
        lane.push_flow(
            f.transfer_end.saturating_sub(f.latency_end),
            SpanKind::Idle(IdleKind::NetTransfer),
            src,
        );
        lane.push_flow(
            f.finish.saturating_sub(f.transfer_end),
            SpanKind::Op(Op::ShuffleFetch),
            src,
        );
    }
    // The straggler tail: only the slowest source's slot is busy; show the
    // stall (Op::ShuffleWait in the profile) on one of the idle slots.
    if wait_ns > 0 && slots > 1 {
        let last_slot = flows
            .iter()
            .max_by_key(|f| (f.finish, f.slot))
            .map(|f| f.slot)
            .unwrap_or(0);
        let idle_slot = (0..slots).find(|&i| i != last_slot).unwrap_or(0);
        let lane = &mut fetchers[idle_slot];
        lane.pad_to(
            shuffle_virtual_ns.saturating_sub(wait_ns),
            IdleKind::FetcherIdle,
        );
        lane.push(wait_ns, SpanKind::Op(Op::ShuffleWait));
    }
    let vd = shuffle_virtual_ns + merge_ns + combine_ns + reduce_ns + write_ns;
    let mut main = LaneBuilder::new(LaneRole::Reduce);
    main.pad_to(shuffle_virtual_ns, IdleKind::Shuffle);
    main.push(merge_ns, SpanKind::Op(Op::ReduceMerge));
    main.push(combine_ns, SpanKind::Op(Op::Combine));
    main.push(reduce_ns, SpanKind::Op(Op::Reduce));
    main.push(write_ns, SpanKind::Op(Op::OutputWrite));
    let mut lanes = vec![main.finish()];
    for mut f in fetchers {
        f.pad_to(shuffle_virtual_ns, IdleKind::FetcherIdle);
        f.pad_to(vd, IdleKind::Done);
        lanes.push(f.finish());
    }
    TaskTrace { lanes }
}

// ---------------------------------------------------------------------------
// Recorded happens-before edges
// ---------------------------------------------------------------------------

/// What kind of ordering a recorded [`TraceEdge`] asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Consecutive occupancy of one `(node, phase, slot)`: the source
    /// attempt vacated the slot before the destination attempt claimed it.
    Slot,
    /// Retry chain: attempt `k` of a task failed before attempt `k + 1`
    /// started.
    Retry,
    /// Speculative hand-off: the primary attempt had started when its
    /// backup launched.
    Backup,
    /// A map task's output was complete before a reduce attempt's flow
    /// fetched it.
    MapOut,
    /// Shuffle barrier: a flow group's last span precedes the reduce
    /// lane's first op (the merge cannot start before its runs arrive).
    Barrier,
    /// A spill segment was written before the map-side merge read it.
    Spill,
    /// Pipeline hand-off: a map-lane spill wait precedes the support-lane
    /// burst it handed the buffer to.
    Handoff,
    /// Frequent-key registry hand-off: the node's designated publisher
    /// froze the shared key set before a same-node waiter adopted it.
    /// Registry edges describe a *real-time* protocol — the virtual spans
    /// of publisher and waiter may overlap — so the race checker validates
    /// them as protocol edges instead of adding them to vector clocks.
    Registry,
    /// Cross-round hand-off in a DAG job: a round-`k` reduce partition was
    /// complete before the round-`k+1` map attempt that consumes it
    /// started.
    Round,
}

impl EdgeKind {
    /// Every edge kind, in serialization order.
    pub const ALL: [EdgeKind; 9] = [
        EdgeKind::Slot,
        EdgeKind::Retry,
        EdgeKind::Backup,
        EdgeKind::MapOut,
        EdgeKind::Barrier,
        EdgeKind::Spill,
        EdgeKind::Handoff,
        EdgeKind::Registry,
        EdgeKind::Round,
    ];

    /// Serialized name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Slot => "slot",
            EdgeKind::Retry => "retry",
            EdgeKind::Backup => "backup",
            EdgeKind::MapOut => "mapout",
            EdgeKind::Barrier => "barrier",
            EdgeKind::Spill => "spill",
            EdgeKind::Handoff => "handoff",
            EdgeKind::Registry => "registry",
            EdgeKind::Round => "round",
        }
    }

    /// Inverse of [`EdgeKind::name`].
    pub fn from_name(name: &str) -> Option<EdgeKind> {
        EdgeKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One endpoint of a recorded edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEnd {
    /// Index into [`JobTrace::entries`].
    pub entry: usize,
    /// Anchoring `(lane, span)` within the entry, or `None` when the edge
    /// constrains the whole entry (its last events on the source side, its
    /// first events on the destination side — across every lane).
    pub at: Option<(usize, usize)>,
}

impl EdgeEnd {
    /// An endpoint constraining the whole entry.
    pub fn entry(entry: usize) -> EdgeEnd {
        EdgeEnd { entry, at: None }
    }

    /// An endpoint anchored at one span.
    pub fn span(entry: usize, lane: usize, span: usize) -> EdgeEnd {
        EdgeEnd {
            entry,
            at: Some((lane, span)),
        }
    }
}

/// One recorded happens-before edge: the source event(s) enabled the
/// destination event(s). Emitted by the unified event loop's graph and the
/// task recorders; consumed by [`race::check_races`] as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEdge {
    /// What ordering this edge asserts.
    pub kind: EdgeKind,
    /// Source (the enabling side).
    pub src: EdgeEnd,
    /// Destination (the enabled side).
    pub dst: EdgeEnd,
}

// ---------------------------------------------------------------------------
// Job-level trace
// ---------------------------------------------------------------------------

/// Which phase a trace entry's task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskKind {
    /// A map task attempt.
    Map,
    /// A reduce task attempt.
    Reduce,
}

impl TaskKind {
    /// Short display label ("map" / "reduce").
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

/// Fate of an attempt that left no detailed lanes behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptKind {
    /// A failed attempt: it occupied its slot until it died, then the
    /// retry was rescheduled.
    Failed,
    /// The losing side of a speculative race (primary or backup),
    /// cancelled when the winner completed.
    Lost,
    /// A speculative backup killed by an injected fault before the race
    /// resolved.
    Dead,
}

impl AttemptKind {
    /// Display name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            AttemptKind::Failed => "attempt-failed",
            AttemptKind::Lost => "speculation-lost",
            AttemptKind::Dead => "backup-dead",
        }
    }

    /// Inverse of [`AttemptKind::name`].
    pub fn from_name(name: &str) -> Option<AttemptKind> {
        [AttemptKind::Failed, AttemptKind::Lost, AttemptKind::Dead]
            .into_iter()
            .find(|k| k.name() == name)
    }
}

/// Payload of a [`TraceEntry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryDetail {
    /// Full thread lanes, in absolute virtual time (the attempt of record).
    Lanes(Vec<TaskLane>),
    /// A flat span: the attempt occupied its slot but kept no per-op
    /// detail (failed attempts, speculation losers, dead backups).
    Flat(AttemptKind),
}

/// One scheduled task attempt in the job trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Map or reduce phase.
    pub kind: TaskKind,
    /// Serve job the attempt belongs to (0 for single-job traces — the
    /// legacy export is byte-identical when every entry is job 0;
    /// `textmr-serve` numbers admitted jobs 1..=N). Edges carry job ids
    /// implicitly through their entry endpoints; cross-job edges (slot
    /// reuse) legitimately span two jobs.
    pub job: usize,
    /// DAG round the attempt belongs to (0 for single-round jobs — the
    /// legacy export is byte-identical when every entry is round 0).
    pub round: usize,
    /// Task id within its round (map task index / reduce partition).
    pub task: usize,
    /// Attempt number (0-based; backups restart at 0).
    pub attempt: usize,
    /// Whether this was a speculative backup attempt.
    pub backup: bool,
    /// Node the attempt was scheduled on.
    pub node: usize,
    /// Slot index within the node (map and reduce slots are separate
    /// spaces).
    pub slot: usize,
    /// The node's straggler factor applied to this attempt's durations.
    pub factor: u64,
    /// Scheduled virtual start.
    pub start: VNanos,
    /// Scheduled virtual end.
    pub end: VNanos,
    /// Lanes or a flat marker.
    pub detail: EntryDetail,
}

/// The whole job's deterministic virtual-time trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTrace {
    /// Cluster nodes.
    pub nodes: usize,
    /// Map slots per node.
    pub map_slots: usize,
    /// Reduce slots per node.
    pub reduce_slots: usize,
    /// Shuffle fetchers per reduce task (tid-layout width).
    pub fetchers: usize,
    /// Virtual end of the trace (≥ the profile's makespan; dead backups
    /// may outlive the last task of record).
    pub wall: VNanos,
    /// Every scheduled attempt, including failed ones and backups.
    pub entries: Vec<TraceEntry>,
    /// Recorded happens-before edges (empty for legacy traces; the race
    /// checker then falls back to timing-derived reconstruction).
    pub edges: Vec<TraceEdge>,
}

impl JobTrace {
    /// Slot-lane geometry for Chrome-trace thread-id computation.
    fn layout(&self) -> LaneLayout {
        LaneLayout {
            map_slots: self.map_slots,
            reduce_slots: self.reduce_slots,
            fetchers: self.fetchers,
        }
    }

    /// Sum of all `Op` spans across the attempts of record, with each
    /// entry's straggler factor divided back out — comparable to
    /// [`JobProfile::total_ops`](crate::metrics::JobProfile::total_ops).
    pub fn op_times(&self) -> OpTimes {
        let mut agg = OpTimes::new();
        for e in &self.entries {
            if let EntryDetail::Lanes(lanes) = &e.detail {
                let f = e.factor.max(1);
                for lane in lanes {
                    for s in &lane.spans {
                        if let SpanKind::Op(op) = s.kind {
                            agg.add_nanos(op, (s.end - s.start) / f);
                        }
                    }
                }
            }
        }
        agg
    }

    /// Validate the trace's structural invariants: every entry's lanes
    /// tile `[start, end]` exactly, and attempts sharing a `(node, phase,
    /// slot)` never overlap.
    pub fn check(&self) -> Result<(), String> {
        type SlotSpans = Vec<(VNanos, VNanos, String)>;
        let mut by_slot: BTreeMap<(usize, TaskKind, usize), SlotSpans> = BTreeMap::new();
        for e in &self.entries {
            let who = format!(
                "{}{}{} {} attempt {}{}",
                if e.job > 0 {
                    format!("job {} ", e.job)
                } else {
                    String::new()
                },
                if e.round > 0 {
                    format!("round {} ", e.round)
                } else {
                    String::new()
                },
                e.kind.label(),
                e.task,
                e.attempt,
                if e.backup { " (backup)" } else { "" }
            );
            if e.end < e.start {
                return Err(format!("{who}: inverted span [{}, {}]", e.start, e.end));
            }
            if let EntryDetail::Lanes(lanes) = &e.detail {
                if lanes.is_empty() {
                    return Err(format!("{who}: no lanes"));
                }
                for lane in lanes {
                    check_lane_tiles(lane, e.start, e.end)
                        .map_err(|msg| format!("{who}: {msg}"))?;
                }
            }
            by_slot
                .entry((e.node, e.kind, e.slot))
                .or_default()
                .push((e.start, e.end, who));
        }
        for ((node, kind, slot), mut spans) in by_slot {
            spans.sort();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!(
                        "node {node} {} slot {slot}: {} [{}, {}] overlaps {} [{}, {}]",
                        kind.label(),
                        w[0].2,
                        w[0].0,
                        w[0].1,
                        w[1].2,
                        w[1].0,
                        w[1].1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Export as Chrome trace event format JSON (open in Perfetto or
    /// `chrome://tracing`): `pid` = node, `tid` = slot thread lane,
    /// timestamps and durations in virtual microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        write_trace_header(
            &mut out,
            self.nodes,
            self.map_slots,
            self.reduce_slots,
            self.fetchers,
            self.wall,
            &self.edges,
        );
        let layout = self.layout();
        let mut threads: BTreeMap<(usize, usize), String> = BTreeMap::new();
        for e in &self.entries {
            note_entry_threads(&layout, e, &mut threads);
        }
        let mut first = true;
        write_meta_events(&mut out, self.nodes, &threads, &mut first);
        // Span events. The `round` and `job` args are emitted only when
        // non-zero, so single-round single-job exports stay byte-identical
        // to the legacy format.
        for e in &self.entries {
            write_entry_events(&mut out, &layout, e, &mut first);
        }
        out.push_str("]}");
        out
    }

    /// Render a compact ASCII timeline (`width` columns of virtual time per
    /// lane row), for terminals, docs, and quick eyeballing in tests.
    pub fn render_text(&self, width: usize) -> String {
        let width = width.clamp(20, 400);
        let wall = self.wall.max(1);
        // (node, round, kind, slot, lane sub-index) → row of
        // (start, end, glyph).
        type RowKey = (usize, usize, TaskKind, usize, usize);
        let mut rows: BTreeMap<RowKey, Vec<(VNanos, VNanos, char)>> = BTreeMap::new();
        for e in &self.entries {
            match &e.detail {
                EntryDetail::Lanes(lanes) => {
                    for lane in lanes {
                        let key = (e.node, e.round, e.kind, e.slot, lane.role.sub_index());
                        let row = rows.entry(key).or_default();
                        for s in &lane.spans {
                            row.push((s.start, s.end, glyph(s.kind)));
                        }
                    }
                }
                EntryDetail::Flat(kind) => {
                    let key = (e.node, e.round, e.kind, e.slot, 0);
                    rows.entry(key).or_default().push((
                        e.start,
                        e.end,
                        match kind {
                            AttemptKind::Failed => 'x',
                            AttemptKind::Lost => '-',
                            AttemptKind::Dead => 'X',
                        },
                    ));
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "virtual timeline: 0 .. {:.1} ms  ({} columns)",
            wall as f64 / 1e6,
            width
        );
        let multi_round = self.entries.iter().any(|e| e.round > 0);
        for ((node, round, kind, slot, sub), mut row) in rows {
            row.sort();
            let lane = match (kind, sub) {
                (TaskKind::Map, 0) => "map".to_string(),
                (TaskKind::Map, _) => "sup".to_string(),
                (TaskKind::Reduce, 0) => "red".to_string(),
                (TaskKind::Reduce, i) => format!("f{}", i - 1),
            };
            let prefix = match kind {
                TaskKind::Map => 'm',
                TaskKind::Reduce => 'r',
            };
            let round_tag = if multi_round {
                format!("R{round} ")
            } else {
                String::new()
            };
            let mut line = String::with_capacity(width);
            for col in 0..width {
                // Sample the column's midpoint.
                let t = u64::try_from((wall as u128 * (2 * col as u128 + 1)) / (2 * width as u128))
                    .expect("column midpoint is bounded by wall, which is u64");
                let c = row
                    .iter()
                    .find(|&&(s, e, _)| s <= t && t < e)
                    .map(|&(_, _, c)| c)
                    .unwrap_or(' ');
                line.push(c);
            }
            let _ = writeln!(out, "n{node} {round_tag}{prefix}{slot} {lane:<4}|{line}|");
        }
        out.push_str(
            "legend: r read  M map  e emit  s sort  c combine  w spill  g merge  \
             f fetch  ! retry  ~ stall  m rmerge  R reduce  o write  . idle  \
             x failed  - lost  X dead-backup\n",
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace emission internals
// ---------------------------------------------------------------------------
//
// Shared by [`JobTrace::to_chrome_json`] (batch) and
// [`stream::TraceStreamWriter`] (incremental): both paths route every byte
// through the same four helpers, so the streamed file is byte-identical to
// the batch export by construction, not by parallel maintenance.

/// Slot-lane geometry needed to compute Chrome-trace thread ids without a
/// full [`JobTrace`] in hand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneLayout {
    /// Map slots per node.
    pub map_slots: usize,
    /// Reduce slots per node.
    pub reduce_slots: usize,
    /// Shuffle fetchers per reduce task (tid-layout width).
    pub fetchers: usize,
}

impl LaneLayout {
    /// Width of one round's tid block: map slots first (two lanes each),
    /// then reduce slots (1 + `fetchers` lanes each).
    fn lane_block(&self) -> usize {
        self.map_slots * 2 + self.reduce_slots * (1 + self.fetchers)
    }

    /// Stable Chrome-trace thread id for a lane. Round 0 occupies the
    /// legacy layout; each later round gets its own block of lanes above
    /// it, so a whole DAG renders as one Perfetto timeline with per-round
    /// lane groups.
    fn tid(&self, round: usize, kind: TaskKind, slot: usize, role: LaneRole) -> usize {
        let base = round * self.lane_block();
        base + match kind {
            TaskKind::Map => slot * 2 + role.sub_index(),
            TaskKind::Reduce => self.map_slots * 2 + slot * (1 + self.fetchers) + role.sub_index(),
        }
    }
}

/// Write everything up to and including the opening `"traceEvents":[`.
///
/// Cluster layout rides along in a `textmr` metadata object so the trace
/// is self-describing: [`JobTrace::from_chrome_json`] needs it to invert
/// the tid layout. Perfetto ignores unknown keys. Recorded happens-before
/// edges travel in the same object as compact arrays `[kind, srcEntry,
/// srcLane, srcSpan, dstEntry, dstLane, dstSpan]` (`-1` marks an
/// entry-level endpoint); the key is omitted entirely for edge-less traces
/// so legacy exports stay byte-identical.
pub(crate) fn write_trace_header(
    out: &mut String,
    nodes: usize,
    map_slots: usize,
    reduce_slots: usize,
    fetchers: usize,
    wall: VNanos,
    edges: &[TraceEdge],
) {
    let _ = write!(
        out,
        "{{\"displayTimeUnit\":\"ms\",\"textmr\":{{\"nodes\":{nodes},\
         \"mapSlots\":{map_slots},\"reduceSlots\":{reduce_slots},\
         \"fetchers\":{fetchers},\"wall\":{wall}"
    );
    if !edges.is_empty() {
        out.push_str(",\"edges\":[");
        for (i, e) in edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (sl, ss) = e.src.at.map_or((-1, -1), |(l, s)| (l as i64, s as i64));
            let (dl, ds) = e.dst.at.map_or((-1, -1), |(l, s)| (l as i64, s as i64));
            let _ = write!(
                out,
                "[\"{}\",{},{sl},{ss},{},{dl},{ds}]",
                e.kind.name(),
                e.src.entry,
                e.dst.entry
            );
        }
        out.push(']');
    }
    out.push_str("},\"traceEvents\":[");
}

/// Record the thread-name labels one entry's lanes will render under.
/// Labels are keyed `(node, tid)`; first writer wins, so insertion order
/// (entry order) never changes an existing label.
pub(crate) fn note_entry_threads(
    layout: &LaneLayout,
    e: &TraceEntry,
    threads: &mut BTreeMap<(usize, usize), String>,
) {
    let roles: Vec<LaneRole> = match &e.detail {
        EntryDetail::Lanes(lanes) => lanes.iter().map(|l| l.role).collect(),
        EntryDetail::Flat(_) => vec![match e.kind {
            TaskKind::Map => LaneRole::Map,
            TaskKind::Reduce => LaneRole::Reduce,
        }],
    };
    for role in roles {
        let tid = layout.tid(e.round, e.kind, e.slot, role);
        threads.entry((e.node, tid)).or_insert_with(|| {
            format!(
                "{}{} slot {} \u{00b7} {}",
                if e.round > 0 {
                    format!("r{} ", e.round)
                } else {
                    String::new()
                },
                e.kind.label(),
                e.slot,
                role.label()
            )
        });
    }
}

/// Comma-separate `event` into `out`, tracking whether any event has been
/// written yet via `first`.
fn push_event(out: &mut String, first: &mut bool, event: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(&event);
}

/// Write the process and thread metadata events: one "process" per node,
/// then a name and sort index for every `(node, tid)` lane in `threads`.
pub(crate) fn write_meta_events(
    out: &mut String,
    nodes: usize,
    threads: &BTreeMap<(usize, usize), String>,
    first: &mut bool,
) {
    for node in 0..nodes {
        push_event(
            out,
            first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            ),
        );
        push_event(
            out,
            first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"name\":\"process_sort_index\",\
                 \"args\":{{\"sort_index\":{node}}}}}"
            ),
        );
    }
    for ((node, tid), label) in threads {
        push_event(
            out,
            first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
        );
        push_event(
            out,
            first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\
                 \"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
            ),
        );
    }
}

/// Write one entry's span events: every lane span for a detailed entry, or
/// the single flat attempt span for a lanes-less one.
pub(crate) fn write_entry_events(
    out: &mut String,
    layout: &LaneLayout,
    e: &TraceEntry,
    first: &mut bool,
) {
    let task = format!("{} {}", e.kind.label(), e.task);
    let mut tags = String::new();
    if e.job > 0 {
        let _ = write!(tags, ",\"job\":{}", e.job);
    }
    if e.round > 0 {
        let _ = write!(tags, ",\"round\":{}", e.round);
    }
    match &e.detail {
        EntryDetail::Lanes(lanes) => {
            for lane in lanes {
                let tid = layout.tid(e.round, e.kind, e.slot, lane.role);
                for s in &lane.spans {
                    let cat = match s.kind {
                        SpanKind::Op(op) if !op.is_idle() => match op.phase() {
                            crate::metrics::Phase::Map => "map",
                            crate::metrics::Phase::Shuffle => "shuffle",
                            crate::metrics::Phase::Reduce => "reduce",
                        },
                        _ => "idle",
                    };
                    let src = s.flow.map(|f| format!(",\"src\":{f}")).unwrap_or_default();
                    push_event(
                        out,
                        first,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\
                             \"dur\":{},\"name\":\"{}\",\"cat\":\"{cat}\",\
                             \"args\":{{\"task\":\"{}\",\"attempt\":{},\
                             \"backup\":{}{tags}{src}}}}}",
                            e.node,
                            fmt_us(s.start),
                            fmt_us(s.end - s.start),
                            json_escape(s.kind.name()),
                            json_escape(&task),
                            e.attempt,
                            e.backup
                        ),
                    );
                }
            }
        }
        EntryDetail::Flat(kind) => {
            let role = match e.kind {
                TaskKind::Map => LaneRole::Map,
                TaskKind::Reduce => LaneRole::Reduce,
            };
            let tid = layout.tid(e.round, e.kind, e.slot, role);
            push_event(
                out,
                first,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\
                     \"dur\":{},\"name\":\"{}\",\"cat\":\"attempt\",\
                     \"args\":{{\"task\":\"{}\",\"attempt\":{},\"backup\":{}{tags}}}}}",
                    e.node,
                    fmt_us(e.start),
                    fmt_us(e.end - e.start),
                    kind.name(),
                    json_escape(&task),
                    e.attempt,
                    e.backup
                ),
            );
        }
    }
}

fn glyph(kind: SpanKind) -> char {
    match kind {
        SpanKind::Op(op) => match op {
            Op::Read => 'r',
            Op::Map => 'M',
            Op::Emit => 'e',
            Op::Sort => 's',
            Op::Combine => 'c',
            Op::SpillWrite => 'w',
            Op::Merge => 'g',
            Op::MapIdle | Op::SupportIdle => '.',
            Op::ShuffleFetch => 'f',
            Op::ReduceMerge => 'm',
            Op::Reduce => 'R',
            Op::OutputWrite => 'o',
            Op::ShuffleWait => '~',
            Op::ShuffleRetry => '!',
        },
        SpanKind::Idle(_) => '.',
    }
}

/// Format virtual nanoseconds as decimal microseconds with three fraction
/// digits — exact, deterministic, no floats.
fn fmt_us(ns: VNanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON validation (dependency-free)
// ---------------------------------------------------------------------------

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph":"X"`) span events.
    pub complete_events: usize,
    /// Distinct `pid` values seen on complete events.
    pub pids: usize,
}

/// Check `text` is valid JSON in the Chrome trace event format: a
/// top-level object with a `traceEvents` array whose elements are objects;
/// every complete event (`"ph":"X"`) must carry a string `name` and
/// numeric `pid`/`tid`/`ts`/`dur` with `ts, dur ≥ 0`. Uses a minimal
/// built-in JSON parser (this workspace is dependency-free by design).
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let value = JsonParser::new(text).parse()?;
    let JsonValue::Obj(top) = &value else {
        return Err("top level is not an object".into());
    };
    let Some(events) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v) else {
        return Err("missing traceEvents".into());
    };
    let JsonValue::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut complete = 0usize;
    let mut pids = std::collections::BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Obj(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
        let Some(JsonValue::Str(ph)) = get("ph") else {
            return Err(format!("event {i}: missing string ph"));
        };
        if ph == "X" {
            complete += 1;
            match get("name") {
                Some(JsonValue::Str(_)) => {}
                _ => return Err(format!("event {i}: complete event without a name")),
            }
            for key in ["pid", "tid", "ts", "dur"] {
                match get(key) {
                    Some(JsonValue::Num(n)) => {
                        if (key == "ts" || key == "dur") && *n < 0.0 {
                            return Err(format!("event {i}: negative {key}"));
                        }
                        if key == "pid" {
                            pids.insert(*n as i64);
                        }
                    }
                    _ => return Err(format!("event {i}: missing numeric {key}")),
                }
            }
        }
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        complete_events: complete,
        pids: pids.len(),
    })
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON import (the inverse of `to_chrome_json`)
// ---------------------------------------------------------------------------

fn obj_field<'v>(fields: &'v [(String, JsonValue)], key: &str) -> Option<&'v JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num_field(fields: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<f64, String> {
    match obj_field(fields, key) {
        Some(JsonValue::Num(n)) => Ok(*n),
        _ => Err(format!("{ctx}: missing numeric {key}")),
    }
}

fn usize_field(fields: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<usize, String> {
    let n = num_field(fields, key, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n > usize::MAX as f64 {
        return Err(format!("{ctx}: {key} = {n} is not a valid index"));
    }
    Ok(n as usize)
}

/// Exported microseconds (three exact fraction digits) back to nanoseconds.
/// Exact for any virtual time below 2^53 ns (~104 virtual days).
fn ns_of(us: f64) -> VNanos {
    (us * 1000.0).round() as u64
}

/// Parse an exported task label ("map 3" / "reduce 7").
fn parse_task(label: &str, ctx: &str) -> Result<(TaskKind, usize), String> {
    let (kind, id) = label
        .split_once(' ')
        .ok_or_else(|| format!("{ctx}: malformed task label {label:?}"))?;
    let kind = match kind {
        "map" => TaskKind::Map,
        "reduce" => TaskKind::Reduce,
        other => return Err(format!("{ctx}: unknown task kind {other:?}")),
    };
    let id = id
        .parse::<usize>()
        .map_err(|_| format!("{ctx}: malformed task id in {label:?}"))?;
    Ok((kind, id))
}

/// One task attempt being reassembled from its exported events.
struct EntryBuild {
    kind: TaskKind,
    job: usize,
    round: usize,
    task: usize,
    attempt: usize,
    backup: bool,
    node: usize,
    slot: usize,
    flat: Option<(AttemptKind, VNanos, VNanos)>,
    /// Lane sub-index → spans (sub-index order is the builders' lane order).
    lanes: BTreeMap<usize, Vec<Span>>,
}

impl JobTrace {
    /// Rebuild a `JobTrace` from its own Chrome-trace export.
    ///
    /// The export carries the cluster layout in a top-level `textmr`
    /// metadata object; complete (`"ph":"X"`) events are grouped back into
    /// task attempts by `(node, task, attempt, backup)` and their lanes are
    /// recovered by inverting the tid layout. Straggler factors are not
    /// exported, so every reconstructed entry has `factor == 1`: the result
    /// supports structural auditing ([`JobTrace::check`],
    /// [`race::check_races`]) and lossless re-export, but not op-time
    /// accounting of straggler-scaled jobs ([`JobTrace::op_times`] divides
    /// durations by the factor).
    pub fn from_chrome_json(text: &str) -> Result<JobTrace, String> {
        let value = JsonParser::new(text).parse()?;
        let JsonValue::Obj(top) = &value else {
            return Err("top level is not an object".into());
        };
        let Some(JsonValue::Obj(meta)) = obj_field(top, "textmr") else {
            return Err("missing textmr layout metadata (not a textmr-exported trace)".into());
        };
        let nodes = usize_field(meta, "nodes", "textmr")?;
        let map_slots = usize_field(meta, "mapSlots", "textmr")?;
        let reduce_slots = usize_field(meta, "reduceSlots", "textmr")?;
        let fetchers = usize_field(meta, "fetchers", "textmr")?;
        let wall = num_field(meta, "wall", "textmr")? as u64;
        let mut edges = Vec::new();
        if let Some(JsonValue::Arr(raw)) = obj_field(meta, "edges") {
            for (i, e) in raw.iter().enumerate() {
                edges.push(parse_edge(e, i)?);
            }
        }
        let Some(JsonValue::Arr(events)) = obj_field(top, "traceEvents") else {
            return Err("missing traceEvents".into());
        };

        let mut order: Vec<EntryBuild> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut index: BTreeMap<
            (usize, usize, usize, TaskKind, usize, usize, bool),
            usize,
        > = BTreeMap::new();
        for (i, ev) in events.iter().enumerate() {
            let ctx = format!("event {i}");
            let JsonValue::Obj(f) = ev else {
                return Err(format!("{ctx}: not an object"));
            };
            let Some(JsonValue::Str(ph)) = obj_field(f, "ph") else {
                return Err(format!("{ctx}: missing string ph"));
            };
            if ph != "X" {
                continue;
            }
            let node = usize_field(f, "pid", &ctx)?;
            let tid = usize_field(f, "tid", &ctx)?;
            let start = ns_of(num_field(f, "ts", &ctx)?);
            let end = start + ns_of(num_field(f, "dur", &ctx)?);
            let Some(JsonValue::Str(name)) = obj_field(f, "name") else {
                return Err(format!("{ctx}: missing string name"));
            };
            let cat = match obj_field(f, "cat") {
                Some(JsonValue::Str(c)) => c.as_str(),
                _ => "",
            };
            let Some(JsonValue::Obj(args)) = obj_field(f, "args") else {
                return Err(format!("{ctx}: missing args"));
            };
            let Some(JsonValue::Str(task_label)) = obj_field(args, "task") else {
                return Err(format!("{ctx}: missing args.task"));
            };
            let (kind, task) = parse_task(task_label, &ctx)?;
            let attempt = usize_field(args, "attempt", &ctx)?;
            let backup = matches!(obj_field(args, "backup"), Some(JsonValue::Bool(true)));
            // Serve job id (omitted for job 0, like `round`).
            let job = match obj_field(args, "job") {
                Some(JsonValue::Num(_)) => usize_field(args, "job", &ctx)?,
                _ => 0,
            };
            // Invert the tid layout: each DAG round owns one block of
            // lanes (round 0 is the legacy layout); within a block, map
            // slots first (two lanes each), then reduce slots (1 +
            // `fetchers` lanes each).
            let block = map_slots * 2 + reduce_slots * (1 + fetchers);
            let round = tid.checked_div(block).unwrap_or(0);
            let rem = tid.checked_rem(block).unwrap_or(tid);
            let (slot, sub) = if rem < map_slots * 2 {
                if kind != TaskKind::Reduce {
                    (rem / 2, rem % 2)
                } else {
                    return Err(format!("{ctx}: reduce task on map-region tid {tid}"));
                }
            } else {
                let r = rem - map_slots * 2;
                let width = 1 + fetchers;
                if kind != TaskKind::Map {
                    (r / width, r % width)
                } else {
                    return Err(format!("{ctx}: map task on reduce-region tid {tid}"));
                }
            };
            let key = (node, job, round, kind, task, attempt, backup);
            let at = *index.entry(key).or_insert_with(|| {
                order.push(EntryBuild {
                    kind,
                    job,
                    round,
                    task,
                    attempt,
                    backup,
                    node,
                    slot,
                    flat: None,
                    lanes: BTreeMap::new(),
                });
                order.len() - 1
            });
            let b = &mut order[at];
            if b.slot != slot {
                return Err(format!(
                    "{ctx}: {task_label} attempt {attempt} spans slots {} and {slot}",
                    b.slot
                ));
            }
            if cat == "attempt" {
                let k = AttemptKind::from_name(name)
                    .ok_or_else(|| format!("{ctx}: unknown attempt fate {name:?}"))?;
                if b.flat.replace((k, start, end)).is_some() {
                    return Err(format!("{ctx}: duplicate flat event for {task_label}"));
                }
            } else {
                let kind = SpanKind::from_name(name, cat)
                    .ok_or_else(|| format!("{ctx}: unknown span kind {name:?}"))?;
                let flow = match obj_field(args, "src") {
                    Some(JsonValue::Num(n)) => u32::try_from(*n as u64).ok(),
                    _ => None,
                };
                b.lanes.entry(sub).or_default().push(Span {
                    start,
                    end,
                    kind,
                    flow,
                });
            }
        }

        let mut entries = Vec::with_capacity(order.len());
        for b in order {
            let who = format!("{} {} attempt {}", b.kind.label(), b.task, b.attempt);
            let (start, end, detail) = if let Some((k, s, e)) = b.flat {
                if !b.lanes.is_empty() {
                    return Err(format!("{who}: both flat and lane events"));
                }
                (s, e, EntryDetail::Flat(k))
            } else {
                let mut start = VNanos::MAX;
                let mut end = 0;
                let mut lanes = Vec::with_capacity(b.lanes.len());
                for (sub, mut spans) in b.lanes {
                    spans.sort_by_key(|s| (s.start, s.end));
                    start = start.min(spans.first().map_or(VNanos::MAX, |s| s.start));
                    end = end.max(spans.last().map_or(0, |s| s.end));
                    let role = match (b.kind, sub) {
                        (TaskKind::Map, 0) => LaneRole::Map,
                        (TaskKind::Map, _) => LaneRole::Support,
                        (TaskKind::Reduce, 0) => LaneRole::Reduce,
                        (TaskKind::Reduce, s) => LaneRole::Fetcher(s - 1),
                    };
                    lanes.push(TaskLane { role, spans });
                }
                if lanes.is_empty() {
                    return Err(format!("{who}: no events"));
                }
                (start, end, EntryDetail::Lanes(lanes))
            };
            entries.push(TraceEntry {
                kind: b.kind,
                job: b.job,
                round: b.round,
                task: b.task,
                attempt: b.attempt,
                backup: b.backup,
                node: b.node,
                slot: b.slot,
                factor: 1,
                start,
                end,
                detail,
            });
        }
        Ok(JobTrace {
            nodes,
            map_slots,
            reduce_slots,
            fetchers,
            wall,
            entries,
            edges,
        })
    }
}

/// Parse one serialized edge array
/// `[kind, srcEntry, srcLane, srcSpan, dstEntry, dstLane, dstSpan]`.
fn parse_edge(v: &JsonValue, i: usize) -> Result<TraceEdge, String> {
    let JsonValue::Arr(a) = v else {
        return Err(format!("edge {i}: not an array"));
    };
    if a.len() != 7 {
        return Err(format!("edge {i}: expected 7 elements, got {}", a.len()));
    }
    let JsonValue::Str(kind_name) = &a[0] else {
        return Err(format!("edge {i}: kind is not a string"));
    };
    let kind = EdgeKind::from_name(kind_name)
        .ok_or_else(|| format!("edge {i}: unknown kind {kind_name:?}"))?;
    let int = |j: usize| -> Result<i64, String> {
        match &a[j] {
            JsonValue::Num(n) => Ok(*n as i64),
            _ => Err(format!("edge {i}: element {j} is not a number")),
        }
    };
    let end = |entry: i64, lane: i64, span: i64| -> Result<EdgeEnd, String> {
        if entry < 0 {
            return Err(format!("edge {i}: negative entry index"));
        }
        Ok(if lane < 0 || span < 0 {
            EdgeEnd::entry(entry as usize)
        } else {
            EdgeEnd::span(entry as usize, lane as usize, span as usize)
        })
    };
    Ok(TraceEdge {
        kind,
        src: end(int(1)?, int(2)?, int(3)?)?,
        dst: end(int(4)?, int(5)?, int(6)?)?,
    })
}

enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn parse(mut self) -> Result<JsonValue, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(format!("trailing data at byte {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.lit("null") => Ok(JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.i
                            ))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_trace() -> TaskTrace {
        // A tiny hand-driven map attempt: two records, a wait, a spill, a
        // barrier, and a merge — amounts chosen so everything is checkable.
        let mut rec = MapTraceRecorder::new();
        rec.on_record(0, 5, 10, 3, 2); // busy 20
        rec.on_record(4, 5, 10, 3, 2); // wait 4, busy 20
        rec.on_spill(24, 6, 1, 3); // handover at 24, consume 10
        rec.on_barrier(0);
        // pipeline_end = producer 44 + final consume 10 → 54 here the
        // producer finished at 44 and waits for the spill until 54.
        rec.finish(54, 7, 1)
    }

    #[test]
    fn map_recorder_tiles_and_sums() {
        let trace = map_trace();
        // virtual_duration = 54 + merge 8.
        trace.check_tiles(62).unwrap();
        let ops = trace.op_times();
        assert_eq!(ops.get(Op::Read), 10);
        assert_eq!(ops.get(Op::Map), 20);
        assert_eq!(ops.get(Op::Emit), 6);
        assert_eq!(ops.get(Op::Combine), 2 + 2 + 1 + 1); // records + spill + merge
        assert_eq!(ops.get(Op::Sort), 6);
        assert_eq!(ops.get(Op::SpillWrite), 3);
        assert_eq!(ops.get(Op::Merge), 7);
        // Waits landed as idle spans, not ops.
        assert_eq!(ops.get(Op::MapIdle), 0);
        assert_eq!(ops.get(Op::SupportIdle), 0);
        // The map lane shows the wait where it happened: after the first
        // record's busy bucket.
        let map_lane = &trace.lanes[0];
        assert!(map_lane
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Idle(IdleKind::BufferFull) && s.end - s.start == 4));
    }

    #[test]
    fn reduce_trace_tiles_and_shows_the_stall() {
        let flows = vec![
            FlowTrace {
                map_task: 0,
                src_node: 1,
                remote: true,
                io_ns: 10,
                backoff_ns: 2,
                slot: 0,
                start: 0,
                pre_end: 12,
                latency_end: 20,
                transfer_end: 50,
                finish: 55,
            },
            FlowTrace {
                map_task: 1,
                src_node: 2,
                remote: true,
                io_ns: 8,
                backoff_ns: 0,
                slot: 1,
                start: 0,
                pre_end: 8,
                latency_end: 16,
                transfer_end: 90,
                finish: 90,
            },
        ];
        // Virtual makespan 90, of which the last 35 are a single-flow tail.
        let trace = build_reduce_trace(&flows, 35, 90, 4, 1, 6, 2);
        trace.check_tiles(90 + 13).unwrap();
        let ops = trace.op_times();
        assert_eq!(ops.get(Op::ShuffleFetch), 10 + 5 + 8); // io + decompress
        assert_eq!(ops.get(Op::ShuffleRetry), 2);
        assert_eq!(ops.get(Op::ShuffleWait), 35);
        assert_eq!(ops.get(Op::ReduceMerge), 4);
        assert_eq!(ops.get(Op::Combine), 1);
        assert_eq!(ops.get(Op::Reduce), 6);
        assert_eq!(ops.get(Op::OutputWrite), 2);
        // The stall sits on the fetcher lane that finished early (slot 0):
        // flow 1 on slot 1 is the straggler.
        let lane0 = trace
            .lanes
            .iter()
            .find(|l| l.role == LaneRole::Fetcher(0))
            .unwrap();
        assert!(lane0
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Op(Op::ShuffleWait) && s.end == 90));
    }

    fn job_trace() -> JobTrace {
        let attempt = map_trace();
        let lanes = attempt.into_absolute(100, 1);
        JobTrace {
            nodes: 2,
            map_slots: 2,
            reduce_slots: 1,
            fetchers: 1,
            wall: 162,
            edges: Vec::new(),
            entries: vec![
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round: 0,
                    task: 0,
                    attempt: 1,
                    backup: false,
                    node: 0,
                    slot: 1,
                    factor: 1,
                    start: 100,
                    end: 162,
                    detail: EntryDetail::Lanes(lanes),
                },
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 1,
                    factor: 1,
                    start: 0,
                    end: 100,
                    detail: EntryDetail::Flat(AttemptKind::Failed),
                },
            ],
        }
    }

    #[test]
    fn job_trace_checks_and_exports_valid_chrome_json() {
        let trace = job_trace();
        trace.check().unwrap();
        assert_eq!(trace.op_times().get(Op::Merge), 7);
        let json = trace.to_chrome_json();
        let summary = validate_chrome_trace(&json).unwrap();
        assert!(summary.complete_events > 0);
        assert_eq!(summary.pids, 1);
        assert!(json.contains("\"attempt-failed\""));
        // The text renderer shows the failed attempt and real work glyphs.
        let text = trace.render_text(60);
        assert!(text.contains('x'), "timeline:\n{text}");
        assert!(text.contains('g'), "timeline:\n{text}");
    }

    #[test]
    fn chrome_export_round_trips_through_import() {
        let trace = job_trace();
        let json = trace.to_chrome_json();
        let back = JobTrace::from_chrome_json(&json).unwrap();
        back.check().unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_chrome_json(), json);
    }

    #[test]
    fn multi_round_export_round_trips_and_separates_lanes() {
        // Two rounds of the same map attempt on the same physical slot:
        // round 1 starts after round 0 ends (cross-round continuity).
        let lanes0 = map_trace().into_absolute(0, 1);
        let lanes1 = map_trace().into_absolute(100, 1);
        let trace = JobTrace {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
            wall: 162,
            edges: vec![TraceEdge {
                kind: EdgeKind::Round,
                src: EdgeEnd::entry(0),
                dst: EdgeEnd::entry(1),
            }],
            entries: vec![
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 0,
                    factor: 1,
                    start: 0,
                    end: 62,
                    detail: EntryDetail::Lanes(lanes0),
                },
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round: 1,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 0,
                    factor: 1,
                    start: 100,
                    end: 162,
                    detail: EntryDetail::Lanes(lanes1),
                },
            ],
        };
        trace.check().unwrap();
        let json = trace.to_chrome_json();
        // Round 1 lanes land in their own tid block (block width = 1*2 +
        // 1*(1+1) = 4) and carry the round arg; round 0 stays legacy.
        assert!(json.contains("\"tid\":4"), "missing per-round lane: {json}");
        assert!(json.contains("\"round\":1"), "missing round arg: {json}");
        assert!(json.contains("[\"round\",0,-1,-1,1,-1,-1]"), "{json}");
        let back = JobTrace::from_chrome_json(&json).unwrap();
        back.check().unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_chrome_json(), json);
        // The ASCII renderer labels per-round rows.
        let text = trace.render_text(40);
        assert!(text.contains("R1"), "timeline:\n{text}");
    }

    #[test]
    fn multi_job_export_round_trips_and_keeps_tasks_apart() {
        // Two serve jobs interleaved on the same physical slot: both are
        // "map 0", distinguished only by the job id.
        let lanes1 = map_trace().into_absolute(0, 1);
        let lanes2 = map_trace().into_absolute(100, 1);
        let trace = JobTrace {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
            wall: 162,
            edges: vec![TraceEdge {
                kind: EdgeKind::Slot,
                src: EdgeEnd::entry(0),
                dst: EdgeEnd::entry(1),
            }],
            entries: vec![
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 1,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 0,
                    factor: 1,
                    start: 0,
                    end: 62,
                    detail: EntryDetail::Lanes(lanes1),
                },
                TraceEntry {
                    kind: TaskKind::Map,
                    job: 2,
                    round: 0,
                    task: 0,
                    attempt: 0,
                    backup: false,
                    node: 0,
                    slot: 0,
                    factor: 1,
                    start: 100,
                    end: 162,
                    detail: EntryDetail::Lanes(lanes2),
                },
            ],
        };
        trace.check().unwrap();
        let json = trace.to_chrome_json();
        assert!(json.contains("\"job\":1"), "missing job arg: {json}");
        assert!(json.contains("\"job\":2"), "missing job arg: {json}");
        let back = JobTrace::from_chrome_json(&json).unwrap();
        back.check().unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_chrome_json(), json);
        // Without the job id in the grouping key the two "map 0 attempt 0"
        // event sets would collapse into one malformed entry.
        assert_eq!(back.entries.len(), 2);
    }

    #[test]
    fn flow_tags_survive_the_round_trip() {
        let flows = vec![FlowTrace {
            map_task: 3,
            src_node: 1,
            remote: true,
            io_ns: 10,
            backoff_ns: 2,
            slot: 0,
            start: 5,
            pre_end: 17,
            latency_end: 25,
            transfer_end: 60,
            finish: 66,
        }];
        let attempt = build_reduce_trace(&flows, 0, 66, 4, 1, 6, 2);
        let trace = JobTrace {
            nodes: 1,
            map_slots: 0,
            reduce_slots: 1,
            fetchers: 1,
            wall: 79,
            edges: Vec::new(),
            entries: vec![TraceEntry {
                kind: TaskKind::Reduce,
                job: 0,
                round: 0,
                task: 0,
                attempt: 0,
                backup: false,
                node: 0,
                slot: 0,
                factor: 1,
                start: 0,
                end: 79,
                detail: EntryDetail::Lanes(attempt.into_absolute(0, 1)),
            }],
        };
        trace.check().unwrap();
        let json = trace.to_chrome_json();
        assert!(json.contains("\"src\":3"), "missing src arg: {json}");
        let back = JobTrace::from_chrome_json(&json).unwrap();
        assert_eq!(back, trace);
        let fetcher = match &back.entries[0].detail {
            EntryDetail::Lanes(lanes) => lanes
                .iter()
                .find(|l| l.role == LaneRole::Fetcher(0))
                .unwrap(),
            EntryDetail::Flat(_) => panic!("flat"),
        };
        assert!(fetcher.spans.iter().any(|s| s.flow == Some(3)));
    }

    #[test]
    fn import_rejects_non_textmr_traces() {
        let err = JobTrace::from_chrome_json("{\"traceEvents\":[]}").unwrap_err();
        assert!(err.contains("textmr"), "unexpected error: {err}");
    }

    #[test]
    fn check_rejects_overlap_and_gaps() {
        let mut trace = job_trace();
        // Overlap: the failed attempt now runs past the retry's start.
        trace.entries[1].end = 101;
        assert!(trace.check().is_err());
        let mut trace = job_trace();
        // Gap: shift the retry's lanes without shifting the entry.
        if let EntryDetail::Lanes(lanes) = &mut trace.entries[0].detail {
            lanes[0].spans[0].start += 1;
        }
        assert!(trace.check().is_err());
    }

    #[test]
    fn straggler_scaling_is_exact_and_divides_back() {
        let attempt = map_trace();
        let ops = attempt.op_times();
        let lanes = attempt.into_absolute(40, 3);
        let trace = JobTrace {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
            wall: 40 + 62 * 3,
            edges: Vec::new(),
            entries: vec![TraceEntry {
                kind: TaskKind::Map,
                job: 0,
                round: 0,
                task: 0,
                attempt: 0,
                backup: false,
                node: 0,
                slot: 0,
                factor: 3,
                start: 40,
                end: 40 + 62 * 3,
                detail: EntryDetail::Lanes(lanes),
            }],
        };
        trace.check().unwrap();
        assert_eq!(trace.op_times(), ops);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"n\",\"pid\":0,\"tid\":0,\
             \"ts\":-1,\"dur\":0}]}"
        )
        .is_err());
        let ok = validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"n\",\"pid\":0,\"tid\":0,\
             \"ts\":0.5,\"dur\":3,\"args\":{\"x\":[true,null,\"s\"]}}]}",
        )
        .unwrap();
        assert_eq!(ok.events, 1);
        assert_eq!(ok.complete_events, 1);
    }

    #[test]
    fn json_escaping_survives_the_parser() {
        let tricky = "a\"b\\c\nd\te";
        let json = format!(
            "{{\"traceEvents\":[],\"note\":\"{}\"}}",
            json_escape(tricky)
        );
        let JsonValue::Obj(top) = JsonParser::new(&json).parse().unwrap() else {
            panic!("not an object");
        };
        let JsonValue::Str(s) = &top.iter().find(|(k, _)| k == "note").unwrap().1 else {
            panic!("not a string");
        };
        assert_eq!(s, tricky);
    }
}
