//! Lane-aligned diffing of two [`JobTrace`]s.
//!
//! The Fig. 9 harness tabulates busy/wait per thread *within one run*;
//! this module answers the cross-run question — "where did the waiting
//! move?" — by aligning two traces of the same logical job (e.g. baseline
//! vs. spill-matcher, or two DAG variants) and tabulating, per round and
//! per lane role, each side's busy and wait time plus the wait delta.
//!
//! Attempts are aligned by schedule identity `(round, kind, task,
//! attempt, backup)`; attempts present on only one side are counted, not
//! silently dropped. Within an aligned pair, lanes match by role (all
//! fetcher lanes collapse into one `fetcher` row — their count may
//! legitimately differ between the traces). Busy is time in non-idle
//! [`Op`](crate::metrics::Op) spans; wait is idle-op and [`IdleKind`](super::IdleKind)
//! spans, broken down by span name in the JSON form.
//!
//! [`TraceDiff::render_text`] prints the Fig. 9-style ASCII table;
//! [`TraceDiff::to_json`] emits the same data (plus the per-kind wait
//! breakdown) as deterministic JSON for downstream tooling.

use super::{EntryDetail, JobTrace, LaneRole, SpanKind, TaskKind};
use crate::metrics::VNanos;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Busy/wait tallies for one `(round, lane)` row, on both sides.
#[derive(Debug, Clone, Default)]
pub struct LaneDelta {
    /// DAG round the lanes belong to.
    pub round: usize,
    /// Lane role label: `map`, `support`, `reduce`, or `fetcher`.
    pub lane: String,
    /// Non-idle op time, `[a, b]`, in virtual nanoseconds.
    pub busy: [VNanos; 2],
    /// Idle time (idle ops + idle spans), `[a, b]`.
    pub wait: [VNanos; 2],
    /// Wait time per span name, `[a, b]` keyed by name.
    pub wait_by_kind: BTreeMap<String, [VNanos; 2]>,
    /// Attempts of record contributing on each side.
    pub attempts: [usize; 2],
}

impl LaneDelta {
    /// `b - a` wait, signed.
    pub fn wait_delta(&self) -> i128 {
        self.wait[1] as i128 - self.wait[0] as i128
    }
}

/// Result of [`diff_traces`].
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Display labels for the two traces.
    pub labels: [String; 2],
    /// Virtual makespan of each trace.
    pub wall: [VNanos; 2],
    /// Per `(round, lane)` tallies, sorted by round then lane.
    pub rows: Vec<LaneDelta>,
    /// Attempt identities present only in trace A / only in trace B.
    pub only_a: usize,
    /// See [`TraceDiff::only_a`].
    pub only_b: usize,
}

/// Identity by which attempts align across traces.
type Identity = (usize, TaskKind, usize, usize, bool);

fn identities(t: &JobTrace) -> BTreeSet<Identity> {
    t.entries
        .iter()
        .map(|e| (e.round, e.kind, e.task, e.attempt, e.backup))
        .collect()
}

fn lane_label(role: LaneRole) -> &'static str {
    match role {
        LaneRole::Map => "map",
        LaneRole::Support => "support",
        LaneRole::Reduce => "reduce",
        LaneRole::Fetcher(_) => "fetcher",
    }
}

/// Order rows map-side first, then reduce-side, mirroring the Fig. 9
/// column order.
fn lane_order(lane: &str) -> usize {
    match lane {
        "map" => 0,
        "support" => 1,
        "reduce" => 2,
        _ => 3,
    }
}

fn tally(t: &JobTrace, side: usize, rows: &mut BTreeMap<(usize, String), LaneDelta>) {
    for e in &t.entries {
        let EntryDetail::Lanes(lanes) = &e.detail else {
            continue;
        };
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        for lane in lanes {
            let label = lane_label(lane.role);
            let row = rows
                .entry((e.round, label.to_string()))
                .or_insert_with(|| LaneDelta {
                    round: e.round,
                    lane: label.to_string(),
                    ..LaneDelta::default()
                });
            if seen.insert(label) {
                row.attempts[side] += 1;
            }
            for s in &lane.spans {
                let dur = s.end - s.start;
                let is_wait = match s.kind {
                    SpanKind::Op(op) => op.is_idle(),
                    SpanKind::Idle(_) => true,
                };
                if is_wait {
                    row.wait[side] += dur;
                    row.wait_by_kind
                        .entry(s.kind.name().to_string())
                        .or_insert([0, 0])[side] += dur;
                } else {
                    row.busy[side] += dur;
                }
            }
        }
    }
}

/// Align two traces and tabulate per-round, per-lane busy/wait deltas.
pub fn diff_traces(label_a: &str, a: &JobTrace, label_b: &str, b: &JobTrace) -> TraceDiff {
    let (ids_a, ids_b) = (identities(a), identities(b));
    let mut rows: BTreeMap<(usize, String), LaneDelta> = BTreeMap::new();
    tally(a, 0, &mut rows);
    tally(b, 1, &mut rows);
    let mut rows: Vec<LaneDelta> = rows.into_values().collect();
    rows.sort_by_key(|x| (x.round, lane_order(&x.lane)));
    TraceDiff {
        labels: [label_a.to_string(), label_b.to_string()],
        wall: [a.wall, b.wall],
        rows,
        only_a: ids_a.difference(&ids_b).count(),
        only_b: ids_b.difference(&ids_a).count(),
    }
}

fn ms(ns: VNanos) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn ms_signed(delta: i128) -> String {
    let sign = if delta < 0 { "-" } else { "+" };
    let d = delta.unsigned_abs();
    format!("{sign}{}.{:03}", d / 1_000_000, (d % 1_000_000) / 1_000)
}

impl TraceDiff {
    /// Render the Fig. 9-style wait-delta table as ASCII.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace diff: A = {} (wall {} ms), B = {} (wall {} ms)",
            self.labels[0],
            ms(self.wall[0]),
            self.labels[1],
            ms(self.wall[1]),
        );
        if self.only_a + self.only_b > 0 {
            let _ = writeln!(
                out,
                "unaligned attempts: {} only in A, {} only in B",
                self.only_a, self.only_b
            );
        }
        let header = [
            "round",
            "lane",
            "att_a",
            "att_b",
            "busy_a_ms",
            "busy_b_ms",
            "wait_a_ms",
            "wait_b_ms",
            "wait_delta_ms",
        ];
        let mut cells: Vec<[String; 9]> = vec![header.map(str::to_string)];
        for r in &self.rows {
            cells.push([
                r.round.to_string(),
                r.lane.clone(),
                r.attempts[0].to_string(),
                r.attempts[1].to_string(),
                ms(r.busy[0]),
                ms(r.busy[1]),
                ms(r.wait[0]),
                ms(r.wait[1]),
                ms_signed(r.wait_delta()),
            ]);
        }
        let widths: Vec<usize> = (0..9)
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(0))
            .collect();
        for row in &cells {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = widths[c]);
            }
            out.push('\n');
        }
        out
    }

    /// Emit the diff as deterministic JSON, including the per-kind wait
    /// breakdown the ASCII table folds into one column.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        };
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"a\":\"{}\",\"b\":\"{}\",\"wallA\":{},\"wallB\":{},\
             \"onlyA\":{},\"onlyB\":{},\"rows\":[",
            esc(&self.labels[0]),
            esc(&self.labels[1]),
            self.wall[0],
            self.wall[1],
            self.only_a,
            self.only_b
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"lane\":\"{}\",\"attemptsA\":{},\"attemptsB\":{},\
                 \"busyA\":{},\"busyB\":{},\"waitA\":{},\"waitB\":{},\"waitDelta\":{},\
                 \"waitByKind\":{{",
                r.round,
                esc(&r.lane),
                r.attempts[0],
                r.attempts[1],
                r.busy[0],
                r.busy[1],
                r.wait[0],
                r.wait[1],
                r.wait_delta()
            );
            for (j, (kind, [wa, wb])) in r.wait_by_kind.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":[{wa},{wb}]", esc(kind));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Op;
    use crate::trace::{IdleKind, Span, TaskLane, TraceEntry};

    fn entry(round: usize, kind: TaskKind, task: usize, lanes: Vec<TaskLane>) -> TraceEntry {
        let (start, end) = lanes
            .first()
            .and_then(|l| Some((l.spans.first()?.start, l.spans.last()?.end)))
            .unwrap_or((0, 0));
        TraceEntry {
            kind,
            job: 0,
            round,
            task,
            attempt: 0,
            backup: false,
            node: 0,
            slot: 0,
            factor: 1,
            start,
            end,
            detail: EntryDetail::Lanes(lanes),
        }
    }

    fn lane(role: LaneRole, spans: &[(VNanos, VNanos, SpanKind)]) -> TaskLane {
        TaskLane {
            role,
            spans: spans
                .iter()
                .map(|&(start, end, kind)| Span {
                    start,
                    end,
                    kind,
                    flow: None,
                })
                .collect(),
        }
    }

    fn two_lane_trace(map_wait: VNanos) -> JobTrace {
        JobTrace {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
            wall: 100,
            entries: vec![
                entry(
                    0,
                    TaskKind::Map,
                    0,
                    vec![
                        lane(
                            LaneRole::Map,
                            &[
                                (0, 60, SpanKind::Op(Op::Map)),
                                (60, 60 + map_wait, SpanKind::Op(Op::MapIdle)),
                            ],
                        ),
                        lane(
                            LaneRole::Support,
                            &[(0, 60 + map_wait, SpanKind::Op(Op::Sort))],
                        ),
                    ],
                ),
                entry(
                    0,
                    TaskKind::Reduce,
                    0,
                    vec![lane(
                        LaneRole::Reduce,
                        &[
                            (70, 90, SpanKind::Op(Op::Reduce)),
                            (90, 100, SpanKind::Idle(IdleKind::Barrier)),
                        ],
                    )],
                ),
            ],
            edges: Vec::new(),
        }
    }

    #[test]
    fn wait_deltas_align_by_round_and_lane() {
        let a = two_lane_trace(40);
        let b = two_lane_trace(10);
        let diff = diff_traces("base", &a, "opt", &b);
        assert_eq!(diff.only_a, 0);
        assert_eq!(diff.only_b, 0);
        let map = diff
            .rows
            .iter()
            .find(|r| r.lane == "map" && r.round == 0)
            .unwrap();
        assert_eq!(map.busy, [60, 60]);
        assert_eq!(map.wait, [40, 10]);
        assert_eq!(map.wait_delta(), -30);
        assert_eq!(map.attempts, [1, 1]);
        let reduce = diff.rows.iter().find(|r| r.lane == "reduce").unwrap();
        assert_eq!(reduce.wait, [10, 10]);
        assert_eq!(reduce.wait_by_kind["barrier"], [10, 10]);
        // Lane order mirrors Fig. 9: map, support, reduce.
        let lanes: Vec<&str> = diff.rows.iter().map(|r| r.lane.as_str()).collect();
        assert_eq!(lanes, ["map", "support", "reduce"]);
    }

    #[test]
    fn unaligned_attempts_are_counted() {
        let a = two_lane_trace(5);
        let mut b = two_lane_trace(5);
        b.entries.push(entry(
            1,
            TaskKind::Map,
            0,
            vec![lane(LaneRole::Map, &[(100, 110, SpanKind::Op(Op::Map))])],
        ));
        let diff = diff_traces("a", &a, "b", &b);
        assert_eq!(diff.only_a, 0);
        assert_eq!(diff.only_b, 1);
        // The extra round-1 attempt gets its own row.
        assert!(diff.rows.iter().any(|r| r.round == 1 && r.lane == "map"));
    }

    #[test]
    fn render_and_json_are_deterministic() {
        let a = two_lane_trace(40);
        let b = two_lane_trace(10);
        let diff = diff_traces("base", &a, "opt", &b);
        let text = diff.render_text();
        assert!(text.contains("trace diff: A = base"));
        assert!(text.contains("wait_delta_ms"));
        assert_eq!(text, diff_traces("base", &a, "opt", &b).render_text());
        let json = diff.to_json();
        assert!(json.starts_with("{\"a\":\"base\",\"b\":\"opt\""));
        assert!(json.contains("\"waitDelta\":-30"));
        assert!(json.contains("\"waitByKind\":{"));
        assert_eq!(json, diff_traces("base", &a, "opt", &b).to_json());
    }
}
