//! The MapReduce programming interface.
//!
//! Jobs are defined at the byte level, Hadoop-style: user code serializes
//! keys/values at `emit` time, and the framework sorts/merges raw bytes with
//! the job's key comparator. This makes serialization, comparison and
//! buffering costs *real* — they are the abstraction overhead the paper
//! measures and attacks.
//!
//! A job provides:
//! * [`Job::map`] — transform one input [`Record`] into `(key, value)`
//!   pairs via an [`Emit`] sink;
//! * [`Job::combine`] — optional local aggregation of a key's values
//!   (enabled iff [`Job::has_combiner`]);
//! * [`Job::reduce`] — final aggregation per key;
//! * [`Job::compare_keys`] / [`Job::partition`] — ordering and routing.

use crate::cluster::JobConfig;
use std::cmp::Ordering;
use std::sync::Arc;

/// One input record handed to `map()`. For line-oriented text inputs the
/// key is the big-endian byte offset and the value is the line (without the
/// trailing newline). `source` tags which logical input the record came
/// from (0 unless the job has multiple inputs, e.g. a join).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// Record key bytes (input-format defined).
    pub key: &'a [u8],
    /// Record value bytes.
    pub value: &'a [u8],
    /// Logical input source index.
    pub source: u8,
}

/// Sink for `(key, value)` pairs emitted by user code.
pub trait Emit {
    /// Emit one serialized pair.
    fn emit(&mut self, key: &[u8], value: &[u8]);
}

/// An [`Emit`] that collects into a `Vec`, for tests and small outputs.
#[derive(Debug, Default)]
pub struct VecEmit {
    /// Collected pairs.
    pub pairs: Vec<(Vec<u8>, Vec<u8>)>,
}

impl Emit for VecEmit {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        self.pairs.push((key.to_vec(), value.to_vec()));
    }
}

impl<F: FnMut(&[u8], &[u8])> Emit for F {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        self(key, value)
    }
}

/// Sink for `combine()` output values (the key is fixed: combine must not
/// change keys, which the type system enforces here).
pub trait ValueSink {
    /// Emit one combined value for the current key.
    fn push(&mut self, value: &[u8]);
}

impl ValueSink for Vec<Vec<u8>> {
    fn push(&mut self, value: &[u8]) {
        Vec::push(self, value.to_vec());
    }
}

/// Lending cursor over the serialized values of one key group. `next`
/// borrows from the cursor, so values can be decoded without copying.
pub trait ValueCursor {
    /// Advance to the next value; `None` at end of group.
    fn next(&mut self) -> Option<&[u8]>;
}

/// A [`ValueCursor`] over an in-memory slice of value slices.
pub struct SliceValues<'a> {
    values: &'a [&'a [u8]],
    idx: usize,
}

impl<'a> SliceValues<'a> {
    /// Cursor over `values`.
    pub fn new(values: &'a [&'a [u8]]) -> Self {
        SliceValues { values, idx: 0 }
    }
}

impl<'a> ValueCursor for SliceValues<'a> {
    fn next(&mut self) -> Option<&[u8]> {
        let v = self.values.get(self.idx)?;
        self.idx += 1;
        Some(v)
    }
}

/// A MapReduce job: user code plus ordering/routing policy.
///
/// Implementations must be `Send + Sync` because the framework invokes
/// `map`/`combine`/`reduce` from many tasks concurrently.
pub trait Job: Send + Sync {
    /// Short name used in profiles and bench output.
    fn name(&self) -> &str;

    /// The map function: called once per input record.
    fn map(&self, record: &Record<'_>, emit: &mut dyn Emit);

    /// Whether this job has a combiner. When `false`, [`Job::combine`] is
    /// never invoked and spills are written uncombined.
    fn has_combiner(&self) -> bool {
        false
    }

    /// The combine function: aggregate `values` (all sharing `key`) into
    /// one or more output values pushed to `out`. Must be associative and
    /// commutative across repeated application, as in Hadoop.
    ///
    /// The default implementation forwards values unchanged.
    fn combine(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        let _ = key;
        while let Some(v) = values.next() {
            out.push(v);
        }
    }

    /// The reduce function: called once per unique key with all its values.
    fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit);

    /// Key ordering used by sort/merge/group. Defaults to bytewise
    /// comparison, which matches order-preserving key encodings.
    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    /// Route a key to one of `num_partitions` reducers. Defaults to an
    /// FNV-1a hash. Must be deterministic.
    fn partition(&self, key: &[u8], num_partitions: usize) -> usize {
        (fnv1a(key) % num_partitions as u64) as usize
    }
}

/// Where one DAG stage draws its map input from.
#[derive(Clone)]
pub enum StageInput {
    /// Named DFS files with logical source tags, exactly like
    /// [`run_job`](crate::cluster::run_job)'s `inputs`.
    Dfs(Vec<(String, u8)>),
    /// A prior stage's reduce output, handed off as typed framed splits —
    /// no re-materialization through the text codec. Partition `p` of the
    /// producing stage becomes map split (and task) `p` of this stage,
    /// homed on the node that reduced it.
    Prior {
        /// Index of the producing stage; must precede this stage.
        stage: usize,
        /// Source tag attached to the handed-off records.
        source: u8,
    },
}

impl StageInput {
    /// Convenience: input from one DFS file with source tag 0.
    pub fn dfs(name: &str) -> StageInput {
        StageInput::Dfs(vec![(name.to_string(), 0)])
    }

    /// Convenience: the immediately preceding stage's output (source 0).
    /// Resolved by [`JobDag::then`]; panics if used before resolution.
    pub fn prior(stage: usize) -> StageInput {
        StageInput::Prior { stage, source: 0 }
    }
}

/// One stage of a multi-round DAG job: user code, its per-round policy,
/// and where its input comes from.
pub struct Stage {
    /// The stage's MapReduce job.
    pub job: Arc<dyn Job>,
    /// Per-stage policy (reducers, plug-ins, faults, tracing). All stages
    /// of one DAG must agree on `trace` and on straggler factors, since
    /// they share one scheduler.
    pub cfg: JobConfig,
    /// Where the stage's map input comes from.
    pub input: StageInput,
}

/// A round-generic DAG plan: an ordered list of [`Stage`]s whose `Prior`
/// input edges point strictly backwards. Stage `k` executes as round `k`
/// on one shared virtual-time scheduler (see
/// [`DagExecutor`](crate::dag::DagExecutor)); a single-stage plan is
/// exactly the legacy one-shot pipeline.
#[derive(Default)]
pub struct JobDag {
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl JobDag {
    /// An empty plan.
    pub fn new() -> JobDag {
        JobDag::default()
    }

    /// Append a stage with an explicit input.
    pub fn stage(mut self, job: Arc<dyn Job>, cfg: JobConfig, input: StageInput) -> JobDag {
        self.stages.push(Stage { job, cfg, input });
        self
    }

    /// Append a stage consuming the previous stage's output with source
    /// tag 0. Panics if the plan is still empty.
    pub fn then(self, job: Arc<dyn Job>, cfg: JobConfig) -> JobDag {
        assert!(!self.stages.is_empty(), "then() needs a preceding stage");
        let prior = self.stages.len() - 1;
        self.stage(job, cfg, StageInput::prior(prior))
    }

    /// Check the plan is executable: non-empty, every `Prior` edge points
    /// to an earlier stage, and every stage agrees with stage 0 on the
    /// `trace` flag (one scheduler, one trace).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("empty DAG".into());
        }
        let trace = self.stages[0].cfg.trace;
        for (i, s) in self.stages.iter().enumerate() {
            if let StageInput::Prior { stage, .. } = s.input {
                if stage >= i {
                    return Err(format!("stage {i} consumes non-prior stage {stage}"));
                }
            }
            if s.cfg.trace != trace {
                return Err(format!("stage {i} disagrees with stage 0 on tracing"));
            }
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash (the engine's default partitioner and the hash used
/// by in-memory key tables; fast on short text keys per the perf guide).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Streaming form of [`fnv1a`]: fold more bytes into a running hash, so
/// callers can digest disk-backed data one chunk at a time. Seed with the
/// FNV offset basis (what [`fnv1a`] does) and chain:
/// `fnv1a(ab) == fnv1a_update(fnv1a(a), b)`.
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Run `combine` over an owned value list, returning the combined values.
/// Convenience used by both the spill path and the frequency buffer.
pub fn combine_values(job: &dyn Job, key: &[u8], values: &[&[u8]]) -> Vec<Vec<u8>> {
    let mut cursor = SliceValues::new(values);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(1);
    job.combine(key, &mut cursor, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_u64, encode_u64};

    /// Toy word-sum job used across engine unit tests.
    pub(crate) struct SumJob;

    impl Job for SumJob {
        fn name(&self) -> &str {
            "sum"
        }

        fn map(&self, record: &Record<'_>, emit: &mut dyn Emit) {
            for w in record.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit.emit(w, &encode_u64(1));
            }
        }

        fn has_combiner(&self) -> bool {
            true
        }

        fn combine(&self, _key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut sum = 0u64;
            while let Some(v) = values.next() {
                sum += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(sum));
        }

        fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut sum = 0u64;
            while let Some(v) = values.next() {
                sum += decode_u64(v).unwrap();
            }
            out.emit(key, &encode_u64(sum));
        }
    }

    #[test]
    fn map_emits_words() {
        let job = SumJob;
        let mut sink = VecEmit::default();
        job.map(
            &Record {
                key: b"",
                value: b"a b a",
                source: 0,
            },
            &mut sink,
        );
        assert_eq!(sink.pairs.len(), 3);
        assert_eq!(sink.pairs[0].0, b"a");
    }

    #[test]
    fn combine_aggregates() {
        let job = SumJob;
        let one = encode_u64(1);
        let vals: Vec<&[u8]> = vec![&one, &one, &one];
        let out = combine_values(&job, b"a", &vals);
        assert_eq!(out.len(), 1);
        assert_eq!(decode_u64(&out[0]), Some(3));
    }

    #[test]
    fn default_combine_is_identity() {
        struct NoCombine;
        impl Job for NoCombine {
            fn name(&self) -> &str {
                "nc"
            }
            fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
            fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
        }
        let vals: Vec<&[u8]> = vec![b"x", b"y"];
        let out = combine_values(&NoCombine, b"k", &vals);
        assert_eq!(out, vec![b"x".to_vec(), b"y".to_vec()]);
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        let job = SumJob;
        for key in [&b"alpha"[..], b"beta", b""] {
            let p = job.partition(key, 7);
            assert!(p < 7);
            assert_eq!(p, job.partition(key, 7));
        }
    }

    #[test]
    fn fnv_distinguishes_keys() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn closure_emit_works() {
        let job = SumJob;
        let mut count = 0usize;
        let mut emit = |_k: &[u8], _v: &[u8]| count += 1;
        job.map(
            &Record {
                key: b"",
                value: b"x y",
                source: 0,
            },
            &mut emit,
        );
        assert_eq!(count, 2);
    }
}
